//! `warehouse-2vnl` — a from-scratch Rust reproduction of
//! *On-Line Warehouse View Maintenance* (Quass & Widom, SIGMOD 1997).
//!
//! The paper's contribution is **2VNL** (two-version no-locking), a
//! multi-version concurrency-control algorithm that lets a data warehouse's
//! batch *maintenance transaction* run concurrently with long-running
//! *reader sessions*: readers always see a consistent database version,
//! nobody blocks, and neither side places locks. The generalization **nVNL**
//! lets a reader session survive `n − 1` overlapping maintenance
//! transactions.
//!
//! This root crate re-exports the whole workspace:
//!
//! * [`types`] — values, schemas, rows, fixed-width codec.
//! * [`storage`] — latched, page-structured heap storage with in-place
//!   updates and logical-I/O accounting (the "conventional DBMS" substrate
//!   the paper assumes).
//! * [`index`] — hash and ordered secondary indexes, unique-key enforcement.
//! * [`sql`] — the SQL subset (SELECT/INSERT/UPDATE/DELETE, GROUP BY,
//!   aggregates, CASE) and its executor; the paper's query-rewrite strategy
//!   targets this layer.
//! * [`cc`] — baseline concurrency control: strict 2PL, 2V2PL, and MV2PL,
//!   used for the §6 comparisons.
//! * [`vnl`] — ★ the 2VNL/nVNL algorithm itself: schema extension, version
//!   state, reader sessions, maintenance decision tables, query rewrite,
//!   garbage collection, and log-free rollback.
//! * [`view`] — incremental maintenance of summary tables (net-effect delta
//!   batching feeding maintenance transactions).
//! * [`obs`] — the unified observability layer: lock-free counters, gauges,
//!   log-scale histograms, and a span ring behind one process-global
//!   registry; every crate above reports into it, and disabling the `obs`
//!   feature compiles all instrumentation to no-ops.
//! * [`workload`] — synthetic warehouse workloads and the discrete-event
//!   timeline simulator behind the Figure 1/2 experiments.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete warehouse session; the short
//! version:
//!
//! ```
//! use warehouse_2vnl::vnl::{VnlTable, ReadOutcome};
//! use warehouse_2vnl::types::{schema::daily_sales_schema, Value, Date};
//!
//! // A 2VNL-extended DailySales table (Figure 3's schema extension).
//! let table = VnlTable::create(daily_sales_schema(), 2).unwrap();
//!
//! // Maintenance transaction 2 loads a day of sales.
//! let txn = table.begin_maintenance().unwrap();
//! txn.insert(vec![
//!     Value::from("San Jose"), Value::from("CA"), Value::from("golf equip"),
//!     Value::from(Date::ymd(1996, 10, 14)), Value::from(10_000),
//! ]).unwrap();
//! txn.commit().unwrap();
//!
//! // A reader session sees the committed version, consistently.
//! let session = table.begin_session();
//! let rows = session.scan().unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0][4], Value::from(10_000));
//! assert!(matches!(session.status(), ReadOutcome::Live));
//! ```

pub use wh_bench as bench;
pub use wh_cc as cc;
pub use wh_index as index;
pub use wh_obs as obs;
pub use wh_sql as sql;
pub use wh_storage as storage;
pub use wh_types as types;
pub use wh_view as view;
pub use wh_vnl as vnl;
pub use wh_workload as workload;
