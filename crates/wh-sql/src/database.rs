//! A catalog of tables plus a statement-level entry point.
//!
//! [`Database`] is the "conventional relational DBMS" role in the paper's
//! architecture: it parses and executes SQL against heap tables, enforces
//! unique keys through a [`KeyDirectory`], and exposes cursors. It knows
//! nothing about versions — the `wh-vnl` crate layers 2VNL *on top of* this,
//! exactly as §4 prescribes.

use crate::ast::{DeleteStmt, InsertStmt, SelectStmt, Statement, UpdateStmt};
use crate::cursor::Cursor;
use crate::error::{SqlError, SqlResult};
use crate::eval::{EvalContext, Params};
use crate::exec::{execute_select, QueryResult};
use crate::parser::parse_statement;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;
use wh_index::KeyDirectory;
use wh_storage::{IoStats, Rid, Table};
use wh_types::{Row, Schema, Value};

/// A table plus its unique-key directory (when the schema declares a key).
pub struct TableEntry {
    table: Table,
    key_dir: Option<KeyDirectory>,
}

impl TableEntry {
    /// The underlying storage table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The unique-key directory, if the schema has a key.
    pub fn key_dir(&self) -> Option<&KeyDirectory> {
        self.key_dir.as_ref()
    }

    /// Insert a row, enforcing the unique key.
    pub fn insert(&self, row: &[Value]) -> SqlResult<Rid> {
        if let Some(dir) = &self.key_dir {
            if dir.find(row).is_some() {
                return Err(SqlError::KeyConflict(format!(
                    "{:?}",
                    self.table.schema().key_of(row)
                )));
            }
        }
        let rid = self.table.insert(row)?;
        if let Some(dir) = &self.key_dir {
            dir.register(row, rid)
                .expect("key checked free immediately above"); // lint: allow(no-panic) — invariant documented in the expect message
        }
        Ok(rid)
    }

    /// Update the row at `rid` to `new_row`, keeping the key directory
    /// consistent. A key-changing update that collides fails without
    /// modifying the table.
    pub fn update(&self, rid: Rid, new_row: &[Value]) -> SqlResult<()> {
        let old_row = self.table.read(rid)?;
        if let Some(dir) = &self.key_dir {
            let schema = self.table.schema();
            if schema.key_of(&old_row) != schema.key_of(new_row) {
                if let Some(existing) = dir.find(new_row) {
                    if existing != rid {
                        return Err(SqlError::KeyConflict(format!(
                            "{:?}",
                            schema.key_of(new_row)
                        )));
                    }
                }
                dir.unregister(&old_row, rid)
                    .expect("old row was registered"); // lint: allow(no-panic) — invariant documented in the expect message
                dir.register(new_row, rid).expect("checked free above"); // lint: allow(no-panic) — invariant documented in the expect message
            }
        }
        self.table.update(rid, new_row)?;
        Ok(())
    }

    /// Delete the row at `rid`.
    pub fn delete(&self, rid: Rid) -> SqlResult<()> {
        let old_row = self.table.read(rid)?;
        self.table.delete(rid)?;
        if let Some(dir) = &self.key_dir {
            dir.unregister(&old_row, rid)
                .expect("deleted row was registered"); // lint: allow(no-panic) — invariant documented in the expect message
        }
        Ok(())
    }
}

/// An in-memory multi-table database.
pub struct Database {
    tables: RwLock<HashMap<String, Arc<TableEntry>>>,
    stats: Arc<IoStats>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database with fresh I/O counters.
    pub fn new() -> Self {
        Database {
            tables: RwLock::new(HashMap::new()),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The I/O counters shared by all tables in this database.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> SqlResult<Arc<TableEntry>> {
        let mut tables = self
            .tables
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if tables.contains_key(name) {
            return Err(SqlError::TableExists(name.into()));
        }
        let table = Table::create(name, schema.clone(), Arc::clone(&self.stats))?;
        let key_dir = KeyDirectory::for_schema(&schema);
        let entry = Arc::new(TableEntry { table, key_dir });
        tables.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Drop a table. Returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(name)
            .is_some()
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> SqlResult<Arc<TableEntry>> {
        self.tables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| SqlError::NoSuchTable(name.into()))
    }

    /// Parse and execute one statement with no parameters.
    pub fn run(&self, sql: &str) -> SqlResult<QueryResult> {
        self.run_with_params(sql, &Params::new())
    }

    /// Parse and execute one statement with `params` bound.
    ///
    /// DML statements return an empty-column result whose single row/cell
    /// count is the number of affected rows.
    pub fn run_with_params(&self, sql: &str, params: &Params) -> SqlResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute(&stmt, params)
    }

    /// Execute a pre-parsed statement.
    pub fn execute(&self, stmt: &Statement, params: &Params) -> SqlResult<QueryResult> {
        match stmt {
            Statement::Select(s) => self.execute_select(s, params),
            Statement::Insert(s) => self.execute_insert(s, params),
            Statement::Update(s) => self.execute_update(s, params),
            Statement::Delete(s) => self.execute_delete(s, params),
            Statement::CreateTable(s) => {
                let columns: Vec<wh_types::Column> = s
                    .columns
                    .iter()
                    .map(|c| wh_types::Column {
                        name: c.name.clone(),
                        ty: c.ty,
                        updatable: c.updatable,
                    })
                    .collect();
                let key_refs: Vec<&str> = s.key.iter().map(String::as_str).collect();
                let schema = Schema::with_key_names(columns, &key_refs)?;
                self.create_table(&s.name, schema)?;
                Ok(dml_result(0))
            }
            Statement::DropTable(s) => {
                if !self.drop_table(&s.name) {
                    return Err(SqlError::NoSuchTable(s.name.clone()));
                }
                Ok(dml_result(0))
            }
        }
    }

    fn execute_select(&self, stmt: &SelectStmt, params: &Params) -> SqlResult<QueryResult> {
        let entry = self.table(&stmt.from)?;
        execute_select(entry.table(), stmt, params)
    }

    fn execute_insert(&self, stmt: &InsertStmt, params: &Params) -> SqlResult<QueryResult> {
        let entry = self.table(&stmt.table)?;
        let schema = entry.table().schema().clone();
        // VALUES expressions may not reference columns; evaluate against an
        // empty row with an empty schema so column references fail cleanly.
        let empty_schema = Schema::new(vec![]).expect("empty schema"); // lint: allow(no-panic) — static schema literal, valid by construction
        let ctx = EvalContext::new(&empty_schema, params);
        let mut affected = 0i64;
        for row_exprs in &stmt.rows {
            let values: Vec<Value> = row_exprs
                .iter()
                .map(|e| ctx.eval(e, &[]))
                .collect::<SqlResult<_>>()?;
            let row = if stmt.columns.is_empty() {
                values
            } else {
                if stmt.columns.len() != values.len() {
                    return Err(SqlError::Parse {
                        message: "column list and VALUES arity differ".into(),
                        offset: 0,
                    });
                }
                let mut row = vec![Value::Null; schema.arity()];
                for (name, v) in stmt.columns.iter().zip(values) {
                    let idx = schema
                        .column_index(name)
                        .map_err(|_| SqlError::NoSuchColumn(name.clone()))?;
                    row[idx] = v;
                }
                row
            };
            entry.insert(&row)?;
            affected += 1;
        }
        Ok(dml_result(affected))
    }

    fn execute_update(&self, stmt: &UpdateStmt, params: &Params) -> SqlResult<QueryResult> {
        let entry = self.table(&stmt.table)?;
        let schema = entry.table().schema().clone();
        let ctx = EvalContext::new(&schema, params);
        // Resolve assignment targets once.
        let mut targets = Vec::with_capacity(stmt.assignments.len());
        for (name, _) in &stmt.assignments {
            targets.push(
                schema
                    .column_index(name)
                    .map_err(|_| SqlError::NoSuchColumn(name.clone()))?,
            );
        }
        let mut cursor = Cursor::open(entry.table(), stmt.where_clause.as_ref(), params)?;
        let mut affected = 0i64;
        while let Some((rid, row)) = cursor.next_row()? {
            let mut new_row: Row = row.clone();
            for (idx, (_, expr)) in targets.iter().zip(&stmt.assignments) {
                new_row[*idx] = ctx.eval(expr, &row)?;
            }
            entry.update(rid, &new_row)?;
            affected += 1;
        }
        Ok(dml_result(affected))
    }

    fn execute_delete(&self, stmt: &DeleteStmt, params: &Params) -> SqlResult<QueryResult> {
        let entry = self.table(&stmt.table)?;
        let mut cursor = Cursor::open(entry.table(), stmt.where_clause.as_ref(), params)?;
        let mut affected = 0i64;
        while let Some((rid, _)) = cursor.next_row()? {
            entry.delete(rid)?;
            affected += 1;
        }
        Ok(dml_result(affected))
    }
}

fn dml_result(affected: i64) -> QueryResult {
    QueryResult {
        columns: vec!["affected".into()],
        rows: vec![vec![Value::Int(affected)]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;
    use wh_types::{Column, DataType, Date};

    fn db_with_sales() -> Database {
        let db = Database::new();
        db.create_table("DailySales", daily_sales_schema()).unwrap();
        db.run(
            "INSERT INTO DailySales VALUES \
             ('San Jose', 'CA', 'golf equip', DATE '1996-10-14', 10000), \
             ('Berkeley', 'CA', 'racquetball', DATE '1996-10-14', 12000), \
             ('Novato', 'CA', 'rollerblades', DATE '1996-10-13', 8000)",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = db_with_sales();
        let r = db
            .run("SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state ORDER BY city")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[2][2], Value::from(10_000));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int32),
                Column::new("b", DataType::Int32),
            ])
            .unwrap(),
        )
        .unwrap();
        db.run("INSERT INTO t (b) VALUES (7)").unwrap();
        let r = db.run("SELECT * FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Null, Value::from(7)]]);
    }

    #[test]
    fn update_statement_paper_example() {
        // Example 4.3's logical statement, against the plain (unrewritten) DB.
        let db = db_with_sales();
        db.run(
            "UPDATE DailySales SET total_sales = total_sales + 1000 \
             WHERE city = 'San Jose' AND date = DATE '1996-10-14'",
        )
        .unwrap();
        let r = db
            .run("SELECT total_sales FROM DailySales WHERE city = 'San Jose'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from(11_000)]]);
    }

    #[test]
    fn delete_statement() {
        let db = db_with_sales();
        let r = db
            .run("DELETE FROM DailySales WHERE city = 'Novato'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
        let r = db.run("SELECT COUNT(*) FROM DailySales").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn unique_key_enforced() {
        let db = db_with_sales();
        let err = db
            .run(
                "INSERT INTO DailySales VALUES \
                 ('San Jose', 'CA', 'golf equip', DATE '1996-10-14', 999)",
            )
            .unwrap_err();
        assert!(matches!(err, SqlError::KeyConflict(_)));
    }

    #[test]
    fn key_directory_follows_updates_and_deletes() {
        let db = db_with_sales();
        // Move a key; the old key becomes free, the new key conflicts.
        db.run("UPDATE DailySales SET city = 'Oakland' WHERE city = 'Novato'")
            .unwrap();
        db.run(
            "INSERT INTO DailySales VALUES \
             ('Novato', 'CA', 'rollerblades', DATE '1996-10-13', 1)",
        )
        .unwrap();
        let err = db
            .run(
                "INSERT INTO DailySales VALUES \
                 ('Oakland', 'CA', 'rollerblades', DATE '1996-10-13', 1)",
            )
            .unwrap_err();
        assert!(matches!(err, SqlError::KeyConflict(_)));
        db.run("DELETE FROM DailySales WHERE city = 'Oakland'")
            .unwrap();
        db.run(
            "INSERT INTO DailySales VALUES \
             ('Oakland', 'CA', 'rollerblades', DATE '1996-10-13', 2)",
        )
        .unwrap();
    }

    #[test]
    fn key_changing_update_conflict_leaves_row_untouched() {
        let db = db_with_sales();
        db.run(
            "INSERT INTO DailySales VALUES \
             ('Novato', 'CA', 'racquetball', DATE '1996-10-14', 5)",
        )
        .unwrap();
        let err = db
            .run("UPDATE DailySales SET city = 'Berkeley' WHERE city = 'Novato' AND product_line = 'racquetball'")
            .unwrap_err();
        assert!(matches!(err, SqlError::KeyConflict(_)));
        // Original row still present and unchanged.
        let r = db
            .run("SELECT COUNT(*) FROM DailySales WHERE city = 'Novato'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn missing_table_and_duplicate_create() {
        let db = Database::new();
        assert!(matches!(
            db.run("SELECT * FROM nope"),
            Err(SqlError::NoSuchTable(_))
        ));
        db.create_table(
            "t",
            Schema::new(vec![Column::new("a", DataType::Int32)]).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            db.create_table(
                "t",
                Schema::new(vec![Column::new("a", DataType::Int32)]).unwrap()
            ),
            Err(SqlError::TableExists(_))
        ));
        assert!(db.drop_table("t"));
        assert!(!db.drop_table("t"));
    }

    #[test]
    fn create_table_via_sql() {
        let db = Database::new();
        db.run(
            "CREATE TABLE DailySales (\
               city CHAR(20), state CHAR(2), product_line CHAR(12), date DATE, \
               total_sales INT UPDATABLE, \
               PRIMARY KEY (city, state, product_line, date))",
        )
        .unwrap();
        let entry = db.table("DailySales").unwrap();
        // The schema matches the paper's running example exactly.
        assert_eq!(entry.table().schema(), &daily_sales_schema());
        db.run(
            "INSERT INTO DailySales VALUES ('San Jose', 'CA', 'golf equip', DATE '1996-10-14', 10000)",
        )
        .unwrap();
        let r = db.run("SELECT total_sales FROM DailySales").unwrap();
        assert_eq!(r.rows[0][0], Value::from(10_000));
        // Duplicate CREATE fails; DROP then recreate succeeds.
        assert!(matches!(
            db.run("CREATE TABLE DailySales (x INT)"),
            Err(SqlError::TableExists(_))
        ));
        db.run("DROP TABLE DailySales").unwrap();
        assert!(matches!(
            db.run("DROP TABLE DailySales"),
            Err(SqlError::NoSuchTable(_))
        ));
        db.run("CREATE TABLE DailySales (x INT)").unwrap();
    }

    #[test]
    fn create_table_rejects_bad_definitions() {
        let db = Database::new();
        assert!(db.run("CREATE TABLE t ()").is_err());
        assert!(db.run("CREATE TABLE t (a WIBBLE)").is_err());
        assert!(db.run("CREATE TABLE t (a CHAR(0))").is_err());
        // Unknown key column surfaces as a type error.
        assert!(db.run("CREATE TABLE t (a INT, PRIMARY KEY (zzz))").is_err());
    }

    #[test]
    fn create_table_statement_round_trips() {
        let sql = "CREATE TABLE t (a INT, b CHAR(8) UPDATABLE, c DATE, PRIMARY KEY (a, c))";
        let stmt = parse_statement(sql).unwrap();
        assert_eq!(parse_statement(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn params_flow_through_run() {
        let db = db_with_sales();
        let mut params = Params::new();
        params.insert("c".into(), Value::from("Berkeley"));
        let r = db
            .run_with_params(
                "SELECT total_sales FROM DailySales WHERE city = :c",
                &params,
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from(12_000)]]);
    }

    #[test]
    fn insert_values_may_not_reference_columns() {
        let db = db_with_sales();
        let err = db
            .run("INSERT INTO DailySales VALUES (city, 'CA', 'x', DATE '1996-01-01', 1)")
            .unwrap_err();
        assert!(matches!(err, SqlError::NoSuchColumn(_)));
    }

    #[test]
    fn update_sees_pre_update_values_on_rhs() {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int32),
                Column::new("b", DataType::Int32),
            ])
            .unwrap(),
        )
        .unwrap();
        db.run("INSERT INTO t VALUES (1, 2)").unwrap();
        // Simultaneous swap semantics: both RHS evaluate against the old row.
        db.run("UPDATE t SET a = b, b = a").unwrap();
        let r = db.run("SELECT * FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::from(2), Value::from(1)]]);
    }

    #[test]
    fn date_parsing_in_dates() {
        let db = db_with_sales();
        let r = db
            .run("SELECT city FROM DailySales WHERE date = DATE '1996-10-13'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("Novato")]]);
        // Date ordering works in predicates.
        let r = db
            .run("SELECT COUNT(*) FROM DailySales WHERE date > DATE '1996-10-13'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        let _ = Date::ymd(1996, 10, 13);
    }
}
