//! Recursive-descent parser for the supported SQL subset.

use crate::ast::{
    AggFunc, BinOp, DeleteStmt, Expr, InsertStmt, OrderKey, SelectItem, SelectStmt, Statement,
    UpdateStmt,
};
use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Token, TokenKind};
use wh_types::{Date, Value};

/// Parse a full SQL statement (optionally `;`-terminated).
pub fn parse_statement(input: &str) -> SqlResult<Statement> {
    let _ts = wh_obs::trace_span!("sql.parse");
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.eat_punct(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a standalone expression (useful in tests and the rewriter).
pub fn parse_expression(input: &str) -> SqlResult<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> SqlResult<Self> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}")))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> SqlResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{p}'")))
        }
    }

    fn expect_eof(&mut self) -> SqlResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> SqlResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            // Allow aggregate-named and date-named columns in non-call position?
            // Keep strict: keywords are not identifiers.
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> SqlResult<Statement> {
        match self.peek().clone() {
            TokenKind::Keyword(k) if k == "SELECT" => Ok(Statement::Select(self.select()?)),
            TokenKind::Keyword(k) if k == "INSERT" => Ok(Statement::Insert(self.insert()?)),
            TokenKind::Keyword(k) if k == "UPDATE" => Ok(Statement::Update(self.update()?)),
            TokenKind::Keyword(k) if k == "DELETE" => Ok(Statement::Delete(self.delete()?)),
            TokenKind::Keyword(k) if k == "CREATE" => {
                Ok(Statement::CreateTable(self.create_table()?))
            }
            TokenKind::Keyword(k) if k == "DROP" => {
                self.advance();
                self.expect_keyword("TABLE")?;
                Ok(Statement::DropTable(crate::ast::DropTableStmt {
                    name: self.ident()?,
                }))
            }
            other => Err(self.error(format!("expected a statement, found {other:?}"))),
        }
    }

    fn data_type(&mut self) -> SqlResult<wh_types::DataType> {
        // Type names are soft keywords: plain identifiers matched here.
        let name = self.ident()?;
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "TINYINT" => Ok(wh_types::DataType::UInt8),
            "INT" | "INTEGER" => Ok(wh_types::DataType::Int32),
            "BIGINT" => Ok(wh_types::DataType::Int64),
            "DOUBLE" | "FLOAT" => Ok(wh_types::DataType::Float64),
            "DATE" => Ok(wh_types::DataType::Date),
            "CHAR" => {
                self.expect_punct("(")?;
                let n = match self.advance() {
                    TokenKind::Int(n) if n > 0 => n as usize,
                    other => {
                        return Err(
                            self.error(format!("CHAR expects a positive width, found {other:?}"))
                        )
                    }
                };
                self.expect_punct(")")?;
                Ok(wh_types::DataType::Char(n))
            }
            _ => Err(self.error(format!("unknown type {name}"))),
        }
    }

    fn create_table(&mut self) -> SqlResult<crate::ast::CreateTableStmt> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        let mut key = Vec::new();
        loop {
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                self.expect_punct("(")?;
                loop {
                    key.push(self.ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            } else {
                let col = self.ident()?;
                let ty = self.data_type()?;
                let updatable = self.eat_keyword("UPDATABLE");
                columns.push(crate::ast::ColumnDef {
                    name: col,
                    ty,
                    updatable,
                });
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        if columns.is_empty() {
            return Err(self.error("CREATE TABLE requires at least one column"));
        }
        Ok(crate::ast::CreateTableStmt { name, columns, key })
    }

    fn select(&mut self) -> SqlResult<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        if self.eat_punct("*") {
            // SELECT * — empty projection list.
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem { expr, alias });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderKey { expr, asc });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(self.error(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn insert(&mut self) -> SqlResult<InsertStmt> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_punct("(") {
            loop {
                columns.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            rows.push(row);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(InsertStmt {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> SqlResult<UpdateStmt> {
        self.expect_keyword("UPDATE")?;
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_punct("=")?;
            let e = self.expr()?;
            assignments.push((col, e));
            if !self.eat_punct(",") {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(UpdateStmt {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> SqlResult<DeleteStmt> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(DeleteStmt {
            table,
            where_clause,
        })
    }

    /// Pratt-style expression parser over [`BinOp::precedence`].
    fn expr(&mut self) -> SqlResult<Expr> {
        self.expr_bp(0)
    }

    fn expr_bp(&mut self, min_bp: u8) -> SqlResult<Expr> {
        let mut lhs = self.prefix()?;
        loop {
            // Postfix predicates (IS NULL / BETWEEN / IN) bind at comparison
            // level; only consume them when this level may.
            if min_bp <= BinOp::Eq.precedence() {
                if matches!(self.peek(), TokenKind::Keyword(k) if k == "IS") {
                    self.advance();
                    let negated = self.eat_keyword("NOT");
                    self.expect_keyword("NULL")?;
                    lhs = Expr::IsNull {
                        expr: Box::new(lhs),
                        negated,
                    };
                    continue;
                }
                // [NOT] BETWEEN / [NOT] IN — peek past an optional NOT.
                let next_kind = self.tokens.get(self.pos + 1).map(|t| &t.kind);
                let (negated, postfix_kw) = match (self.peek(), next_kind) {
                    (TokenKind::Keyword(k), Some(TokenKind::Keyword(k2)))
                        if k == "NOT" && (k2 == "BETWEEN" || k2 == "IN") =>
                    {
                        (true, Some(k2.clone()))
                    }
                    (TokenKind::Keyword(k), _) if k == "BETWEEN" || k == "IN" => {
                        (false, Some(k.clone()))
                    }
                    _ => (false, None),
                };
                match postfix_kw.as_deref() {
                    Some("BETWEEN") => {
                        if negated {
                            self.advance();
                        }
                        self.advance();
                        // Bounds parse above AND so the separator survives.
                        let low = self.expr_bp(BinOp::Add.precedence())?;
                        self.expect_keyword("AND")?;
                        let high = self.expr_bp(BinOp::Add.precedence())?;
                        lhs = Expr::Between {
                            expr: Box::new(lhs),
                            low: Box::new(low),
                            high: Box::new(high),
                            negated,
                        };
                        continue;
                    }
                    Some("IN") => {
                        if negated {
                            self.advance();
                        }
                        self.advance();
                        self.expect_punct("(")?;
                        let mut list = Vec::new();
                        loop {
                            list.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                        lhs = Expr::InList {
                            expr: Box::new(lhs),
                            list,
                            negated,
                        };
                        continue;
                    }
                    _ => {}
                }
            }
            let op = match self.peek() {
                TokenKind::Punct("+") => BinOp::Add,
                TokenKind::Punct("-") => BinOp::Sub,
                TokenKind::Punct("*") => BinOp::Mul,
                TokenKind::Punct("/") => BinOp::Div,
                TokenKind::Punct("=") => BinOp::Eq,
                TokenKind::Punct("<>") => BinOp::NotEq,
                TokenKind::Punct("<") => BinOp::Lt,
                TokenKind::Punct("<=") => BinOp::LtEq,
                TokenKind::Punct(">") => BinOp::Gt,
                TokenKind::Punct(">=") => BinOp::GtEq,
                TokenKind::Keyword(k) if k == "AND" => BinOp::And,
                TokenKind::Keyword(k) if k == "OR" => BinOp::Or,
                _ => break,
            };
            let bp = op.precedence();
            if bp < min_bp {
                break;
            }
            self.advance();
            let rhs = self.expr_bp(bp + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> SqlResult<Expr> {
        match self.peek().clone() {
            TokenKind::Keyword(k) if k == "NOT" => {
                self.advance();
                // NOT binds looser than comparisons: parse at AND level.
                let inner = self.expr_bp(BinOp::And.precedence() + 1)?;
                Ok(Expr::Not(Box::new(inner)))
            }
            TokenKind::Punct("-") => {
                self.advance();
                // A numeric literal directly after the sign is a negative
                // literal — consumed here so postfix operators (IS NULL)
                // attach to the literal, not to a Neg wrapper.
                match self.peek().clone() {
                    TokenKind::Int(i) => {
                        self.advance();
                        return Ok(Expr::lit(-i));
                    }
                    TokenKind::Float(x) => {
                        self.advance();
                        return Ok(Expr::lit(-x));
                    }
                    _ => {}
                }
                let inner = self.expr_bp(BinOp::Mul.precedence() + 1)?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            TokenKind::Punct("(") => {
                self.advance();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::lit(i))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::lit(x))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::lit(s))
            }
            TokenKind::Param(name) => {
                self.advance();
                Ok(Expr::param(name))
            }
            TokenKind::Keyword(k) if k == "NULL" => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            // DATE is a soft keyword: `DATE '<string>'` is a date literal,
            // while a bare `date` identifier stays a column reference (the
            // paper's DailySales relation has a `date` column).
            TokenKind::Ident(name)
                if name.eq_ignore_ascii_case("DATE")
                    && matches!(self.tokens[self.pos + 1].kind, TokenKind::Str(_)) =>
            {
                self.advance();
                match self.advance() {
                    TokenKind::Str(s) => {
                        let d = Date::parse(&s)
                            .ok_or_else(|| self.error(format!("invalid date literal '{s}'")))?;
                        Ok(Expr::lit(d))
                    }
                    _ => unreachable!("peeked a string"), // lint: allow(no-panic) — unreachable by construction (see message)
                }
            }
            TokenKind::Keyword(k) if k == "CASE" => {
                self.advance();
                let mut branches = Vec::new();
                while self.eat_keyword("WHEN") {
                    let cond = self.expr()?;
                    self.expect_keyword("THEN")?;
                    let val = self.expr()?;
                    branches.push((cond, val));
                }
                if branches.is_empty() {
                    return Err(self.error("CASE requires at least one WHEN branch"));
                }
                let else_expr = if self.eat_keyword("ELSE") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_keyword("END")?;
                Ok(Expr::Case {
                    branches,
                    else_expr,
                })
            }
            TokenKind::Keyword(k)
                if matches!(k.as_str(), "SUM" | "COUNT" | "AVG" | "MIN" | "MAX") =>
            {
                self.advance();
                let func = match k.as_str() {
                    "SUM" => AggFunc::Sum,
                    "COUNT" => AggFunc::Count,
                    "AVG" => AggFunc::Avg,
                    "MIN" => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                self.expect_punct("(")?;
                let arg = if self.eat_punct("*") {
                    if func != AggFunc::Count {
                        return Err(self.error("only COUNT may take *"));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect_punct(")")?;
                Ok(Expr::Aggregate { func, arg })
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::col(name))
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_rollup_query() {
        // Example 2.1, first analyst query.
        let stmt = parse_statement(
            "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state",
        )
        .unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert_eq!(s.from, "DailySales");
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.group_by.len(), 2);
        assert!(s.items[2].expr.contains_aggregate());
    }

    #[test]
    fn parses_paper_drilldown_query() {
        // Example 2.1, second analyst query.
        let stmt = parse_statement(
            "SELECT product_line, SUM(total_sales) FROM DailySales \
             WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line",
        )
        .unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        let w = s.where_clause.unwrap();
        assert_eq!(w.to_string(), "city = 'San Jose' AND state = 'CA'");
    }

    #[test]
    fn parses_rewritten_query_shape() {
        // The shape produced by the 2VNL rewrite in Example 4.1.
        let sql = "SELECT city, state, \
            SUM(CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE pre_total_sales END) \
            FROM DailySales \
            WHERE (:sessionVN >= tupleVN AND operation <> 'delete') \
               OR (:sessionVN < tupleVN AND operation <> 'insert') \
            GROUP BY city, state";
        let stmt = parse_statement(sql).unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert!(s.items[2].expr.contains_aggregate());
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn round_trips_via_display() {
        let inputs = [
            "SELECT city, SUM(total_sales) AS s FROM DailySales WHERE state = 'CA' GROUP BY city ORDER BY city",
            "SELECT * FROM t",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
            "UPDATE DailySales SET total_sales = total_sales + 1000 WHERE city = 'San Jose' AND date = DATE '1996-10-13'",
            "DELETE FROM DailySales WHERE city = 'San Jose'",
            "SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL",
            "SELECT COUNT(*) FROM t",
            "SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END FROM t",
            "SELECT city, SUM(s) FROM t GROUP BY city HAVING SUM(s) > 10 ORDER BY city LIMIT 5",
            "SELECT a FROM t LIMIT 3",
            "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN 2 AND 3",
            "SELECT a FROM t WHERE city IN ('SJ', 'SF') OR a NOT IN (1, 2, 3)",
            "SELECT a FROM t WHERE a + 1 BETWEEN b - 1 AND b + 1",
        ];
        for sql in inputs {
            let once = parse_statement(sql).unwrap();
            let rendered = once.to_string();
            let twice = parse_statement(&rendered).unwrap();
            assert_eq!(once, twice, "round trip failed for {sql}");
        }
    }

    #[test]
    fn precedence_and_parens() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
        let e = parse_expression("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e = parse_expression("a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter than OR.
        assert_eq!(e, parse_expression("a = 1 OR (b = 2 AND c = 3)").unwrap());
    }

    #[test]
    fn not_and_negation() {
        let e = parse_expression("NOT a = 1").unwrap();
        assert_eq!(e, Expr::Not(Box::new(parse_expression("a = 1").unwrap())));
        let e = parse_expression("-5").unwrap();
        assert_eq!(e, Expr::lit(-5));
        let e = parse_expression("-x").unwrap();
        assert!(matches!(e, Expr::Neg(_)));
    }

    #[test]
    fn date_literals() {
        let e = parse_expression("DATE '1996-10-14'").unwrap();
        assert_eq!(e, Expr::lit(Date::ymd(1996, 10, 14)));
        assert!(parse_expression("DATE '99-99-99'").is_err());
    }

    #[test]
    fn count_star_only() {
        assert!(parse_expression("COUNT(*)").is_ok());
        assert!(parse_expression("SUM(*)").is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse_statement("SELECT a FROM t WHERE").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse_statement("SELECT a FROM t extra garbage").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn case_without_when_rejected() {
        assert!(parse_expression("CASE ELSE 1 END").is_err());
    }

    #[test]
    fn between_binds_below_arithmetic_above_and() {
        let e = parse_expression("a + 1 BETWEEN 2 AND 3 AND b = 1").unwrap();
        // Parses as (a+1 BETWEEN 2 AND 3) AND (b = 1).
        let Expr::Binary {
            op: BinOp::And,
            left,
            ..
        } = e
        else {
            panic!("AND should be outermost: {e:?}")
        };
        assert!(matches!(*left, Expr::Between { .. }));
        let Expr::Between { expr, .. } = *left else {
            unreachable!()
        };
        assert!(matches!(*expr, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn in_list_requires_parens_and_items() {
        assert!(parse_expression("a IN ()").is_err());
        assert!(parse_expression("a IN 1, 2").is_err());
        let e = parse_expression("a IN (1)").unwrap();
        assert!(matches!(e, Expr::InList { ref list, .. } if list.len() == 1));
    }
}
