//! Scalar expression evaluation with SQL three-valued logic.

use crate::ast::{BinOp, Expr};
use crate::error::{SqlError, SqlResult};
use std::cmp::Ordering;
use std::collections::HashMap;
use wh_types::{Schema, Value};

/// Named parameter bindings (`:sessionVN` → value). The paper's rewrites
/// leave `:sessionVN` / `:maintenanceVN` placeholders in the SQL; execution
/// supplies them here.
pub type Params = HashMap<String, Value>;

/// Evaluation context: resolves column names against a schema and parameters
/// against a binding map.
pub struct EvalContext<'a> {
    /// Column-name → index, built once per statement. The executor calls
    /// `eval` per row, and `Schema::column_index` is a linear scan with
    /// string compares over the (extended, in 2VNL) column list — hot
    /// enough to show up in scan profiles. The map borrows the names from
    /// the schema, so building it allocates nothing per column.
    cols: HashMap<&'a str, usize>,
    params: &'a Params,
}

impl<'a> EvalContext<'a> {
    /// Build a context for `schema` with `params` bound.
    pub fn new(schema: &'a Schema, params: &'a Params) -> Self {
        let cols = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();
        EvalContext { cols, params }
    }

    /// Evaluate `expr` against `row`. Aggregates are not allowed here — the
    /// executor evaluates them over groups; encountering one is
    /// [`SqlError::MisplacedAggregate`].
    pub fn eval(&self, expr: &Expr, row: &[Value]) -> SqlResult<Value> {
        match expr {
            Expr::Column(name) => {
                let idx = *self
                    .cols
                    .get(name.as_str())
                    .ok_or_else(|| SqlError::NoSuchColumn(name.clone()))?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(name) => self
                .params
                .get(name)
                .cloned()
                .ok_or_else(|| SqlError::UnboundParam(name.clone())),
            Expr::Binary { op, left, right } => {
                let l = self.eval(left, row)?;
                // Short-circuit AND/OR with three-valued logic.
                match op {
                    BinOp::And => {
                        return self.eval_and(&l, right, row);
                    }
                    BinOp::Or => {
                        return self.eval_or(&l, right, row);
                    }
                    _ => {}
                }
                let r = self.eval(right, row)?;
                self.apply_binop(*op, &l, &r)
            }
            Expr::Not(e) => match self.eval(e, row)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(SqlError::Type(wh_types::TypeError::Mismatch {
                    op: "NOT",
                    left: other.type_name().into(),
                    right: "BOOL".into(),
                })),
            },
            Expr::Neg(e) => match self.eval(e, row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(x) => Ok(Value::Float(-x)),
                other => Err(SqlError::Type(wh_types::TypeError::Mismatch {
                    op: "negate",
                    left: other.type_name().into(),
                    right: "numeric".into(),
                })),
            },
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let lo = self.eval(low, row)?;
                let hi = self.eval(high, row)?;
                let ge_lo = v.sql_cmp(&lo)?.map(|o| o != Ordering::Less);
                let le_hi = v.sql_cmp(&hi)?.map(|o| o != Ordering::Greater);
                Ok(match (ge_lo, le_hi) {
                    // Three-valued AND over the two bound checks.
                    (Some(false), _) | (_, Some(false)) => Value::Bool(*negated),
                    (Some(true), Some(true)) => Value::Bool(!*negated),
                    _ => Value::Null,
                })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let mut saw_unknown = false;
                for candidate in list {
                    let c = self.eval(candidate, row)?;
                    match v.sql_cmp(&c)? {
                        Some(Ordering::Equal) => return Ok(Value::Bool(!*negated)),
                        None => saw_unknown = true,
                        _ => {}
                    }
                }
                Ok(if saw_unknown {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                })
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (cond, val) in branches {
                    if self.eval(cond, row)? == Value::Bool(true) {
                        return self.eval(val, row);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Aggregate { .. } => Err(SqlError::MisplacedAggregate),
        }
    }

    fn eval_and(&self, left: &Value, right: &Expr, row: &[Value]) -> SqlResult<Value> {
        // FALSE AND x = FALSE without evaluating x (short circuit).
        if *left == Value::Bool(false) {
            return Ok(Value::Bool(false));
        }
        let r = self.eval(right, row)?;
        match (truth(left)?, truth(&r)?) {
            (Some(true), Some(true)) => Ok(Value::Bool(true)),
            (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
            _ => Ok(Value::Null),
        }
    }

    fn eval_or(&self, left: &Value, right: &Expr, row: &[Value]) -> SqlResult<Value> {
        if *left == Value::Bool(true) {
            return Ok(Value::Bool(true));
        }
        let r = self.eval(right, row)?;
        match (truth(left)?, truth(&r)?) {
            (Some(false), Some(false)) => Ok(Value::Bool(false)),
            (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
            _ => Ok(Value::Null),
        }
    }

    fn apply_binop(&self, op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
        match op {
            BinOp::Add => Ok(l.add(r)?),
            BinOp::Sub => Ok(l.sub(r)?),
            BinOp::Mul => Ok(l.mul(r)?),
            BinOp::Div => Ok(l.div(r)?),
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let cmp = l.sql_cmp(r)?;
                Ok(match cmp {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::NotEq => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::LtEq => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::GtEq => ord != Ordering::Less,
                        _ => unreachable!(), // lint: allow(no-panic) — unreachable by construction (see message)
                    }),
                })
            }
            BinOp::And | BinOp::Or => unreachable!("handled by short-circuit paths"), // lint: allow(no-panic) — unreachable by construction (see message)
        }
    }

    /// Evaluate a predicate: true only when the expression is exactly TRUE
    /// (NULL/unknown filters the row out, per SQL semantics).
    pub fn eval_predicate(&self, expr: &Expr, row: &[Value]) -> SqlResult<bool> {
        Ok(self.eval(expr, row)? == Value::Bool(true))
    }
}

fn truth(v: &Value) -> SqlResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(SqlError::Type(wh_types::TypeError::Mismatch {
            op: "boolean",
            left: other.type_name().into(),
            right: "BOOL".into(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use wh_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::new("b", DataType::Int64),
            Column::new("s", DataType::Char(8)),
        ])
        .unwrap()
    }

    fn eval(expr: &str, row: &[Value]) -> SqlResult<Value> {
        let schema = schema();
        let params = Params::new();
        let ctx = EvalContext::new(&schema, &params);
        ctx.eval(&parse_expression(expr).unwrap(), row)
    }

    fn row(a: i64, b: i64, s: &str) -> Vec<Value> {
        vec![Value::from(a), Value::from(b), Value::from(s)]
    }

    #[test]
    fn arithmetic_and_comparison() {
        let r = row(2, 3, "x");
        assert_eq!(eval("a + b * 2", &r).unwrap(), Value::Int(8));
        assert_eq!(eval("a < b", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("a = 2 AND b = 3", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("a = 9 OR b = 3", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("NOT a = 9", &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        let r = vec![Value::Null, Value::Int(3), Value::from("x")];
        // NULL comparisons are unknown.
        assert_eq!(eval("a = 1", &r).unwrap(), Value::Null);
        // unknown AND false = false; unknown AND true = unknown.
        assert_eq!(eval("a = 1 AND b = 9", &r).unwrap(), Value::Bool(false));
        assert_eq!(eval("a = 1 AND b = 3", &r).unwrap(), Value::Null);
        // unknown OR true = true; unknown OR false = unknown.
        assert_eq!(eval("a = 1 OR b = 3", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("a = 1 OR b = 9", &r).unwrap(), Value::Null);
        // NOT unknown = unknown.
        assert_eq!(eval("NOT a = 1", &r).unwrap(), Value::Null);
        // IS NULL is never unknown.
        assert_eq!(eval("a IS NULL", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("a IS NOT NULL", &r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn case_expression() {
        let r = row(2, 0, "x");
        assert_eq!(
            eval("CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' END", &r).unwrap(),
            Value::from("two")
        );
        assert_eq!(
            eval("CASE WHEN a = 9 THEN 'nine' END", &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval("CASE WHEN a = 9 THEN 'nine' ELSE 'other' END", &r).unwrap(),
            Value::from("other")
        );
    }

    #[test]
    fn between_three_valued() {
        let r = row(5, 3, "x");
        assert_eq!(eval("a BETWEEN 1 AND 10", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("a BETWEEN 6 AND 10", &r).unwrap(), Value::Bool(false));
        assert_eq!(
            eval("a NOT BETWEEN 6 AND 10", &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval("a BETWEEN b AND b + 4", &r).unwrap(),
            Value::Bool(true)
        );
        // NULL operand -> unknown, unless a bound already disproves it.
        let null_row = vec![Value::Null, Value::Int(3), Value::from("x")];
        assert_eq!(eval("a BETWEEN 1 AND 10", &null_row).unwrap(), Value::Null);
        assert_eq!(
            eval("5 BETWEEN a AND 4", &null_row).unwrap(),
            Value::Bool(false)
        );
        // Arithmetic binds tighter than BETWEEN.
        assert_eq!(
            eval("a + 1 BETWEEN 6 AND 6", &r).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_list_three_valued() {
        let r = row(5, 3, "x");
        assert_eq!(eval("a IN (1, 5, 9)", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("a IN (1, 2)", &r).unwrap(), Value::Bool(false));
        assert_eq!(eval("a NOT IN (1, 2)", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("s IN ('x', 'y')", &r).unwrap(), Value::Bool(true));
        // NULL in the list: match still wins; otherwise unknown.
        assert_eq!(eval("a IN (5, NULL)", &r).unwrap(), Value::Bool(true));
        assert_eq!(eval("a IN (1, NULL)", &r).unwrap(), Value::Null);
        assert_eq!(eval("a NOT IN (1, NULL)", &r).unwrap(), Value::Null);
        // Type mismatches error rather than silently failing.
        assert!(eval("a IN ('x')", &r).is_err());
    }

    #[test]
    fn params_resolve() {
        let schema = schema();
        let mut params = Params::new();
        params.insert("sessionVN".into(), Value::Int(3));
        let ctx = EvalContext::new(&schema, &params);
        let e = parse_expression(":sessionVN >= a").unwrap();
        assert_eq!(ctx.eval(&e, &row(2, 0, "x")).unwrap(), Value::Bool(true));
        let unbound = parse_expression(":nope").unwrap();
        assert_eq!(
            ctx.eval(&unbound, &row(2, 0, "x")),
            Err(SqlError::UnboundParam("nope".into()))
        );
    }

    #[test]
    fn unknown_column_errors() {
        assert_eq!(
            eval("zzz", &row(1, 2, "x")),
            Err(SqlError::NoSuchColumn("zzz".into()))
        );
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        assert_eq!(
            eval("SUM(a)", &row(1, 2, "x")),
            Err(SqlError::MisplacedAggregate)
        );
    }

    #[test]
    fn predicate_null_is_false() {
        let schema = schema();
        let params = Params::new();
        let ctx = EvalContext::new(&schema, &params);
        let e = parse_expression("a = 1").unwrap();
        let r = vec![Value::Null, Value::Int(0), Value::from("")];
        assert!(!ctx.eval_predicate(&e, &r).unwrap());
    }
}
