//! Per-group patching of GROUP BY aggregate state from net-effect deltas.
//!
//! The 2VNL session-repair path (`wh-vnl`'s `RepairEngine`) fixes up an
//! expired reader from the maintenance transaction's net effect instead of
//! restarting it. For aggregate queries that means the repaired artifact is
//! not a row set but a **partial-aggregate map**: one accumulator per
//! aggregate call site per group, the same state the streaming executor
//! folds ([`crate::exec`]). [`AggPatcher`] holds that state in a form that
//! can be *patched*: each delta `(pre, post)` retracts the pre-image from
//! its group and folds the post-image into its — possibly different — group.
//!
//! Retraction is exact for the invertible aggregates — SUM, COUNT, and AVG
//! subtract in place — while MIN/MAX are not invertible (retracting the
//! current extremum loses the runner-up), so retracting a row that *could*
//! carry a group's extremum marks the group **dirty**. Dirty groups are
//! rebuilt from the repaired base rows ([`AggPatcher::rescan_dirty`]) —
//! the per-affected-group rescan fallback — and [`AggPatcher::finish`]
//! refuses to produce a result while any group is still dirty, so an
//! un-rescanned patch can never leak a wrong extremum.
//!
//! Only shapes whose patch semantics are exactly the executor's are
//! accepted ([`AggPatcher::new`] returns `Unsupported` otherwise); callers
//! treat that as "fall back to restart-and-rescan", never as an answer.

use crate::ast::{AggFunc, BinOp, Expr, SelectItem, SelectStmt};
use crate::error::{SqlError, SqlResult};
use crate::eval::{EvalContext, Params};
use crate::exec::{
    collect_aggregates, eval_computed, is_aggregate_query, sort_and_limit, validate_grouping,
    AggAcc, AggSpec, QueryResult,
};
use std::collections::HashMap;
use wh_index::IndexKey;
use wh_types::{Row, Schema, Value};

/// One aggregate call site's accumulator plus the non-null input count that
/// lets retraction restore the "no inputs yet" state exactly.
#[derive(Debug, Clone)]
struct SiteAcc {
    acc: AggAcc,
    nonnull: i64,
}

/// Patchable per-group aggregate state.
#[derive(Debug, Clone)]
struct GroupState {
    key: Vec<Value>,
    /// A representative row for bare grouped-column references; any member
    /// row works because [`validate_grouping`] restricts bare references to
    /// grouping columns, on which all member rows agree.
    rep: Option<Row>,
    sites: Vec<SiteAcc>,
    /// Rows folded minus rows retracted; 0 ⇒ the group vanishes.
    rows: i64,
    /// A MIN/MAX retraction could not be answered in place; the group must
    /// be rebuilt from base rows before `finish`.
    dirty: bool,
}

/// Streaming GROUP BY aggregate state that accepts net-effect patches.
///
/// Build with [`AggPatcher::new`], fold the base rows of the stale snapshot
/// with [`AggPatcher::fold`], patch each delta with [`AggPatcher::apply`],
/// rebuild any dirty groups with [`AggPatcher::rescan_dirty`], and read the
/// final [`QueryResult`] — HAVING, projection, ORDER BY, LIMIT included —
/// with [`AggPatcher::finish`].
pub struct AggPatcher<'q> {
    schema: &'q Schema,
    stmt: &'q SelectStmt,
    params: &'q Params,
    specs: Vec<AggSpec>,
    /// Dead (emptied) groups become `None`; indices stay stable for `lookup`.
    groups: Vec<Option<GroupState>>,
    lookup: HashMap<IndexKey, usize>,
    patched: u64,
    rescanned: u64,
}

impl<'q> AggPatcher<'q> {
    /// Plan patchable aggregate state for `stmt` over `schema` rows.
    ///
    /// `Err(SqlError::Unsupported)` marks a statement whose patch semantics
    /// would not exactly match the executor (not an aggregate query, or a
    /// GROUP BY expression that is not a plain column); the caller must
    /// fall back to re-executing the statement.
    pub fn new(schema: &'q Schema, stmt: &'q SelectStmt, params: &'q Params) -> SqlResult<Self> {
        if !is_aggregate_query(stmt) {
            return Err(SqlError::Unsupported(
                "aggregate patching serves aggregate queries only".into(),
            ));
        }
        if let Some(w) = &stmt.where_clause {
            if w.contains_aggregate() {
                return Err(SqlError::MisplacedAggregate);
            }
        }
        validate_grouping(schema, stmt)?;
        // Non-column GROUP BY keys defeat `validate_grouping`'s bare-column
        // check, so a retracted representative row could change the group's
        // projected scalars — refuse rather than risk divergence.
        if !stmt.group_by.iter().all(|e| matches!(e, Expr::Column(_))) {
            return Err(SqlError::Unsupported(
                "aggregate patching requires plain-column GROUP BY keys".into(),
            ));
        }
        let mut specs: Vec<AggSpec> = Vec::new();
        for it in &stmt.items {
            collect_aggregates(&it.expr, &mut specs);
        }
        if let Some(h) = &stmt.having {
            collect_aggregates(h, &mut specs);
        }
        for k in &stmt.order_by {
            collect_aggregates(&k.expr, &mut specs);
        }
        Ok(AggPatcher {
            schema,
            stmt,
            params,
            specs,
            groups: Vec::new(),
            lookup: HashMap::new(),
            patched: 0,
            rescanned: 0,
        })
    }

    fn ctx(&self) -> EvalContext<'q> {
        EvalContext::new(self.schema, self.params)
    }

    fn group_key(&self, ctx: &EvalContext<'_>, row: &Row) -> SqlResult<Vec<Value>> {
        self.stmt
            .group_by
            .iter()
            .map(|e| ctx.eval(e, row))
            .collect()
    }

    fn passes_where(&self, ctx: &EvalContext<'_>, row: &Row) -> SqlResult<bool> {
        match &self.stmt.where_clause {
            Some(pred) => ctx.eval_predicate(pred, row),
            None => Ok(true),
        }
    }

    /// Evaluate every aggregate argument against `row` (`None` = COUNT(*)).
    fn inputs(&self, ctx: &EvalContext<'_>, row: &Row) -> SqlResult<Vec<Option<Value>>> {
        self.specs
            .iter()
            .map(|(_, arg)| match arg {
                Some(e) => ctx.eval(e, row).map(Some),
                None => Ok(None),
            })
            .collect()
    }

    /// Fold one base row of the snapshot being repaired (WHERE applies; a
    /// filtered-out row is a no-op).
    pub fn fold(&mut self, row: &Row) -> SqlResult<()> {
        let ctx = self.ctx();
        if !self.passes_where(&ctx, row)? {
            return Ok(());
        }
        let key = self.group_key(&ctx, row)?;
        let inputs = self.inputs(&ctx, row)?;
        let idx_key = IndexKey(key.clone());
        let i = match self.lookup.get(&idx_key) {
            Some(&i) => i,
            None => {
                let i = self.groups.len();
                self.lookup.insert(idx_key, i);
                self.groups.push(Some(GroupState {
                    key,
                    rep: Some(row.clone()),
                    sites: self
                        .specs
                        .iter()
                        .map(|(f, _)| SiteAcc {
                            acc: AggAcc::new(*f),
                            nonnull: 0,
                        })
                        .collect(),
                    rows: 0,
                    dirty: false,
                }));
                i
            }
        };
        let group = self.groups[i].as_mut().ok_or_else(dead_group)?;
        group.rows += 1;
        if group.rep.is_none() {
            group.rep = Some(row.clone());
        }
        for (site, ((func, _), input)) in group.sites.iter_mut().zip(self.specs.iter().zip(inputs))
        {
            if input.as_ref().is_none_or(|v| !v.is_null()) {
                site.nonnull += 1;
            }
            site.acc.fold(*func, input)?;
        }
        Ok(())
    }

    /// Retract one previously-folded row. `Err` means the state cannot be
    /// proven consistent (retraction from a group never folded) — the
    /// caller must fall back to a full re-execution.
    fn retract(&mut self, row: &Row) -> SqlResult<()> {
        let ctx = self.ctx();
        if !self.passes_where(&ctx, row)? {
            return Ok(());
        }
        let key = self.group_key(&ctx, row)?;
        let inputs = self.inputs(&ctx, row)?;
        let idx_key = IndexKey(key);
        let &i = self.lookup.get(&idx_key).ok_or_else(unseen_group)?;
        let group = self.groups[i].as_mut().ok_or_else(unseen_group)?;
        if group.rows == 0 {
            return Err(unseen_group());
        }
        group.rows -= 1;
        for (site, ((func, _), input)) in group.sites.iter_mut().zip(self.specs.iter().zip(inputs))
        {
            retract_site(site, *func, input, &ctx, &mut group.dirty)?;
        }
        // An emptied group vanishes from the result — except the global
        // group of an ungrouped aggregate, which the executor keeps (its
        // COUNT is 0 and the other aggregates go NULL, which the retracted
        // accumulators now encode).
        if group.rows == 0 && !self.stmt.group_by.is_empty() {
            self.groups[i] = None;
            self.lookup.remove(&idx_key);
        }
        Ok(())
    }

    /// Patch one net-effect delta: retract the pre-image, fold the
    /// post-image. Either side may be absent (pure insert / pure delete).
    pub fn apply(&mut self, pre: Option<&Row>, post: Option<&Row>) -> SqlResult<()> {
        if let Some(p) = pre {
            self.retract(p)?;
        }
        if let Some(p) = post {
            self.fold(p)?;
        }
        self.patched += 1;
        Ok(())
    }

    /// Whether any group still needs a [`AggPatcher::rescan_dirty`] pass.
    pub fn has_dirty(&self) -> bool {
        self.groups.iter().flatten().any(|g| g.dirty)
    }

    /// Rebuild every dirty group from `rows` — the repaired base relation
    /// at the target version. Rows of clean groups are skipped without
    /// touching their accumulators. Returns the number of groups rebuilt.
    pub fn rescan_dirty<I>(&mut self, rows: I) -> SqlResult<u64>
    where
        I: IntoIterator,
        I::Item: AsRef<Row>,
    {
        let dirty_keys: Vec<IndexKey> = self
            .groups
            .iter()
            .flatten()
            .filter(|g| g.dirty)
            .map(|g| IndexKey(g.key.clone()))
            .collect();
        if dirty_keys.is_empty() {
            return Ok(0);
        }
        // Reset dirty groups to empty, then refold only their rows.
        for key in &dirty_keys {
            let &i = self.lookup.get(key).ok_or_else(dead_group)?;
            let group = self.groups[i].as_mut().ok_or_else(dead_group)?;
            group.rep = None;
            group.rows = 0;
            group.dirty = false;
            for (site, (f, _)) in group.sites.iter_mut().zip(&self.specs) {
                *site = SiteAcc {
                    acc: AggAcc::new(*f),
                    nonnull: 0,
                };
            }
        }
        let ctx = self.ctx();
        for row in rows {
            let row = row.as_ref();
            if !self.passes_where(&ctx, row)? {
                continue;
            }
            let key = IndexKey(self.group_key(&ctx, row)?);
            if !dirty_keys.contains(&key) {
                continue;
            }
            self.fold(row)?;
        }
        // A dirty group with no surviving rows vanishes like any other.
        for key in &dirty_keys {
            if let Some(&i) = self.lookup.get(key) {
                let empty = self.groups[i].as_ref().is_some_and(|g| g.rows == 0);
                if empty && !self.stmt.group_by.is_empty() {
                    self.groups[i] = None;
                    self.lookup.remove(key);
                }
            }
        }
        self.rescanned += dirty_keys.len() as u64;
        Ok(dirty_keys.len() as u64)
    }

    /// Deltas applied so far.
    pub fn patched(&self) -> u64 {
        self.patched
    }

    /// Groups rebuilt by the MIN/MAX rescan fallback so far.
    pub fn rescanned(&self) -> u64 {
        self.rescanned
    }

    /// Produce the final query result: HAVING, projection, ORDER BY, and
    /// LIMIT applied exactly as the executor would. Refuses while any group
    /// is still dirty.
    pub fn finish(&self) -> SqlResult<QueryResult> {
        if self.has_dirty() {
            return Err(SqlError::Unsupported(
                "dirty MIN/MAX groups must be rescanned before finish".into(),
            ));
        }
        let ctx = self.ctx();
        let specs = &self.specs;
        let mut live: Vec<&GroupState> = self.groups.iter().flatten().collect();
        // The executor synthesizes one empty global group for ungrouped
        // aggregates over an empty input.
        let empty_global = GroupState {
            key: Vec::new(),
            rep: None,
            sites: specs
                .iter()
                .map(|(f, _)| SiteAcc {
                    acc: AggAcc::new(*f),
                    nonnull: 0,
                })
                .collect(),
            rows: 0,
            dirty: false,
        };
        if live.is_empty() && self.stmt.group_by.is_empty() {
            live.push(&empty_global);
        }
        let columns: Vec<String> = self.stmt.items.iter().map(SelectItem::label).collect();
        let mut out_rows = Vec::with_capacity(live.len());
        let mut order_keys = Vec::new();
        for group in live {
            let rep = group.rep.as_ref();
            let values = group
                .sites
                .iter()
                .zip(specs)
                .map(|(s, (f, _))| s.acc.clone().finish(*f))
                .collect::<SqlResult<Vec<_>>>()?;
            if let Some(h) = &self.stmt.having {
                if eval_computed(&ctx, h, rep, specs, &values)? != Value::Bool(true) {
                    continue;
                }
            }
            let projected = self
                .stmt
                .items
                .iter()
                .map(|it| eval_computed(&ctx, &it.expr, rep, specs, &values))
                .collect::<SqlResult<Vec<_>>>()?;
            if !self.stmt.order_by.is_empty() {
                order_keys.push(
                    self.stmt
                        .order_by
                        .iter()
                        .map(|k| eval_computed(&ctx, &k.expr, rep, specs, &values))
                        .collect::<SqlResult<Vec<_>>>()?,
                );
            }
            out_rows.push(projected);
        }
        Ok(sort_and_limit(self.stmt, columns, out_rows, order_keys))
    }
}

fn unseen_group() -> SqlError {
    SqlError::Unsupported("retraction from a group the snapshot never produced".into())
}

fn dead_group() -> SqlError {
    SqlError::Unsupported("patch state lost a group it still references".into())
}

/// Retract one input from one call site's accumulator; sets `dirty` when
/// the site cannot answer the retraction in place (MIN/MAX extremum).
fn retract_site(
    site: &mut SiteAcc,
    func: AggFunc,
    input: Option<Value>,
    ctx: &EvalContext<'_>,
    dirty: &mut bool,
) -> SqlResult<()> {
    let nonnull = input.as_ref().is_none_or(|v| !v.is_null());
    if nonnull {
        site.nonnull -= 1;
    }
    match (&mut site.acc, func) {
        (AggAcc::Count(n), _) => {
            if nonnull {
                *n -= 1;
            }
        }
        (AggAcc::Value(slot), AggFunc::Sum) => {
            let v = input.ok_or(SqlError::MisplacedAggregate)?;
            if v.is_null() {
                return Ok(());
            }
            let prev = slot.take().ok_or_else(unseen_group)?;
            *slot = if site.nonnull == 0 {
                None
            } else {
                Some(subtract(ctx, prev, v)?)
            };
        }
        (AggAcc::Value(slot), AggFunc::Min | AggFunc::Max) => {
            let v = input.ok_or(SqlError::MisplacedAggregate)?;
            if v.is_null() {
                return Ok(());
            }
            let Some(prev) = slot.as_ref() else {
                return Err(unseen_group());
            };
            // Safe in place only when the retracted value is strictly on
            // the losing side of the extremum; ties (duplicates) and the
            // extremum itself need the rescan fallback.
            let safe = match v.sql_cmp(prev)? {
                Some(std::cmp::Ordering::Greater) => func == AggFunc::Min,
                Some(std::cmp::Ordering::Less) => func == AggFunc::Max,
                _ => false,
            };
            if !safe {
                *dirty = true;
            } else if site.nonnull == 0 {
                *slot = None;
            }
        }
        (AggAcc::Avg { acc, n }, _) => {
            let v = input.ok_or(SqlError::MisplacedAggregate)?;
            if v.is_null() {
                return Ok(());
            }
            *n -= 1;
            let prev = acc.take().ok_or_else(unseen_group)?;
            *acc = if *n == 0 {
                None
            } else {
                Some(subtract(ctx, prev, v)?)
            };
        }
        _ => {
            return Err(SqlError::Unsupported(
                "mismatched accumulator shape under retraction".into(),
            ))
        }
    }
    Ok(())
}

/// `a − b` under the executor's own arithmetic (types, NULLs, overflow all
/// behave exactly as a SQL `a - b` would).
fn subtract(ctx: &EvalContext<'_>, a: Value, b: Value) -> SqlResult<Value> {
    ctx.eval(
        &Expr::binary(BinOp::Sub, Expr::Literal(a), Expr::Literal(b)),
        &[],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::exec::{execute_select, RowSource};
    use crate::parser::parse_statement;
    use wh_types::{Column, DataType, Schema};

    struct MemSource<'a> {
        schema: &'a Schema,
        rows: &'a [Row],
    }

    impl RowSource for MemSource<'_> {
        fn schema(&self) -> &Schema {
            self.schema
        }

        fn for_each(&self, visit: &mut dyn FnMut(Row) -> SqlResult<()>) -> SqlResult<()> {
            for row in self.rows {
                visit(row.clone())?;
            }
            Ok(())
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("city", DataType::Char(8)),
            Column::updatable("sales", DataType::Int64),
        ])
        .unwrap()
    }

    fn select(sql: &str) -> SelectStmt {
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!("expected SELECT: {sql}")
        };
        s
    }

    fn row(city: &str, sales: i64) -> Row {
        vec![Value::from(city), Value::from(sales)]
    }

    /// Reference: execute the statement over `rows` directly.
    fn rescan(schema: &Schema, stmt: &SelectStmt, rows: &[Row]) -> QueryResult {
        execute_select(&MemSource { schema, rows }, stmt, &Params::new()).unwrap()
    }

    fn sorted(mut r: QueryResult) -> QueryResult {
        r.rows.sort_by_key(|a| IndexKey(a.clone()));
        r
    }

    /// Build state from `base`, apply `deltas`, rescan dirty groups against
    /// `target`, and assert the finished result equals a fresh execution
    /// over `target`.
    fn check(sql: &str, base: &[Row], deltas: &[(Option<Row>, Option<Row>)], target: &[Row]) {
        let schema = schema();
        let stmt = select(sql);
        let params = Params::new();
        let mut patcher = AggPatcher::new(&schema, &stmt, &params).unwrap();
        for r in base {
            patcher.fold(r).unwrap();
        }
        for (pre, post) in deltas {
            patcher.apply(pre.as_ref(), post.as_ref()).unwrap();
        }
        if patcher.has_dirty() {
            patcher.rescan_dirty(target.iter()).unwrap();
        }
        assert_eq!(
            sorted(patcher.finish().unwrap()),
            sorted(rescan(&schema, &stmt, target)),
            "patched result diverged from rescan for {sql}"
        );
    }

    #[test]
    fn sum_count_avg_patch_in_place() {
        let base = vec![row("SJ", 10), row("SJ", 20), row("SF", 5)];
        let target = vec![row("SJ", 10), row("SJ", 25), row("SF", 5), row("LA", 7)];
        let deltas = vec![
            (Some(row("SJ", 20)), Some(row("SJ", 25))), // update
            (None, Some(row("LA", 7))),                 // insert
        ];
        for sql in [
            "SELECT city, SUM(sales) FROM t GROUP BY city",
            "SELECT city, COUNT(*) FROM t GROUP BY city",
            "SELECT city, AVG(sales) FROM t GROUP BY city",
            "SELECT city, SUM(sales) + COUNT(*) FROM t GROUP BY city",
        ] {
            let schema = schema();
            let stmt = select(sql);
            let params = Params::new();
            let mut p = AggPatcher::new(&schema, &stmt, &params).unwrap();
            for r in &base {
                p.fold(r).unwrap();
            }
            for (pre, post) in &deltas {
                p.apply(pre.as_ref(), post.as_ref()).unwrap();
            }
            assert!(!p.has_dirty(), "{sql} should patch in place");
            assert_eq!(
                sorted(p.finish().unwrap()),
                sorted(rescan(&schema, &stmt, &target))
            );
        }
    }

    #[test]
    fn min_max_retraction_of_extremum_goes_dirty_and_rescans() {
        let base = vec![row("SJ", 10), row("SJ", 20)];
        // Retract the MAX; the in-place path cannot know the runner-up.
        let target = vec![row("SJ", 10), row("SJ", 15)];
        check(
            "SELECT city, MAX(sales) FROM t GROUP BY city",
            &base,
            &[(Some(row("SJ", 20)), Some(row("SJ", 15)))],
            &target,
        );
        check(
            "SELECT city, MIN(sales) FROM t GROUP BY city",
            &base,
            &[(Some(row("SJ", 10)), Some(row("SJ", 15)))],
            &target,
        );
    }

    #[test]
    fn min_max_safe_retraction_stays_clean() {
        let schema = schema();
        let stmt = select("SELECT city, MAX(sales) FROM t GROUP BY city");
        let params = Params::new();
        let mut p = AggPatcher::new(&schema, &stmt, &params).unwrap();
        for r in [row("SJ", 10), row("SJ", 20)] {
            p.fold(&r).unwrap();
        }
        // Retracting a non-extremum is answerable in place.
        p.apply(Some(&row("SJ", 10)), None).unwrap();
        assert!(!p.has_dirty());
        assert_eq!(
            p.finish().unwrap().rows,
            vec![vec![Value::from("SJ"), Value::from(20)]]
        );
    }

    #[test]
    fn group_deletion_and_creation() {
        let base = vec![row("SJ", 10), row("SF", 5)];
        let target = vec![row("SF", 5), row("LA", 3)];
        check(
            "SELECT city, SUM(sales) FROM t GROUP BY city",
            &base,
            &[
                (Some(row("SJ", 10)), None), // SJ group vanishes
                (None, Some(row("LA", 3))),  // LA group appears
            ],
            &target,
        );
    }

    #[test]
    fn where_having_order_limit_survive_patching() {
        let base = vec![row("SJ", 10), row("SJ", 2), row("SF", 50), row("LA", 9)];
        let target = vec![row("SJ", 10), row("SJ", 40), row("SF", 50), row("LA", 9)];
        check(
            "SELECT city, SUM(sales) FROM t WHERE sales > 5 \
             GROUP BY city HAVING SUM(sales) > 9 \
             ORDER BY SUM(sales) DESC LIMIT 2",
            &base,
            &[(Some(row("SJ", 2)), Some(row("SJ", 40)))],
            &target,
        );
    }

    #[test]
    fn ungrouped_aggregate_keeps_global_group_when_emptied() {
        let base = vec![row("SJ", 10)];
        let target: Vec<Row> = vec![];
        check(
            "SELECT COUNT(*), SUM(sales) FROM t",
            &base,
            &[(Some(row("SJ", 10)), None)],
            &target,
        );
    }

    #[test]
    fn retraction_from_unseen_group_is_refused() {
        let schema = schema();
        let stmt = select("SELECT city, SUM(sales) FROM t GROUP BY city");
        let params = Params::new();
        let mut p = AggPatcher::new(&schema, &stmt, &params).unwrap();
        p.fold(&row("SJ", 10)).unwrap();
        assert!(p.apply(Some(&row("LA", 1)), None).is_err());
    }

    #[test]
    fn unpatchable_shapes_are_refused_up_front() {
        let schema = schema();
        let params = Params::new();
        let plain = select("SELECT city FROM t");
        assert!(AggPatcher::new(&schema, &plain, &params).is_err());
        let exprs = select("SELECT SUM(sales) FROM t GROUP BY sales + 1");
        assert!(AggPatcher::new(&schema, &exprs, &params).is_err());
    }
}
