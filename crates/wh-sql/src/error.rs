//! SQL-layer errors.

use std::fmt;
use wh_storage::StorageError;
use wh_types::TypeError;

/// Errors raised while parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical or syntactic error, with a byte offset into the input.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset where the problem was noticed.
        offset: usize,
    },
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced table already exists (CREATE).
    TableExists(String),
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// A `:name` parameter had no binding at execution time.
    UnboundParam(String),
    /// Aggregates used where they are not allowed (e.g. in WHERE).
    MisplacedAggregate,
    /// Non-aggregated, non-grouped column in an aggregate query.
    NotGrouped(String),
    /// A unique-key violation on INSERT.
    KeyConflict(String),
    /// Feature outside the supported subset.
    Unsupported(String),
    /// Type-system error from expression evaluation.
    Type(TypeError),
    /// Storage error.
    Storage(StorageError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::UnboundParam(p) => write!(f, "unbound parameter: :{p}"),
            SqlError::MisplacedAggregate => write!(f, "aggregate not allowed here"),
            SqlError::NotGrouped(c) => {
                write!(f, "column {c} must appear in GROUP BY or an aggregate")
            }
            SqlError::KeyConflict(k) => write!(f, "unique key conflict on {k}"),
            SqlError::Unsupported(what) => write!(f, "unsupported SQL feature: {what}"),
            SqlError::Type(e) => write!(f, "{e}"),
            SqlError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<TypeError> for SqlError {
    fn from(e: TypeError) -> Self {
        SqlError::Type(e)
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;
