//! Abstract syntax tree for the supported SQL subset, with SQL-text
//! rendering.
//!
//! Rendering matters as much as parsing here: the 2VNL rewriter (`wh-vnl`)
//! transforms reader queries by *injecting* CASE expressions and WHERE
//! guards (paper §4.1), and the reproduction of Example 4.1 compares the
//! rendered text of the rewritten AST against the paper's published SQL.

use std::fmt;
use wh_types::Value;

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Parser precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// Scalar and aggregate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Named placeholder, written `:name`. The paper's rewrites use
    /// `:sessionVN` and `:maintenanceVN` placeholders (§4.1–4.2).
    Param(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation: `NOT e`.
    Not(Box<Expr>),
    /// Arithmetic negation: `-e`.
    Neg(Box<Expr>),
    /// `e IS NULL` / `e IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `e [NOT] BETWEEN lo AND hi` (inclusive bounds).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `e [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// Searched CASE: `CASE WHEN c THEN v [WHEN ...] [ELSE e] END`.
    Case {
        /// `(condition, result)` pairs in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result (NULL when absent).
        else_expr: Option<Box<Expr>>,
    },
    /// Aggregate call. `arg = None` encodes `COUNT(*)`.
    Aggregate {
        /// The function.
        func: AggFunc,
        /// Argument expression; `None` only for `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience: named parameter.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// Convenience: binary operation.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, other)
    }

    /// Whether this expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
        }
    }

    /// Collect the names of all referenced columns (outside aggregates too).
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.referenced_columns(out),
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.referenced_columns(out);
                    v.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// Apply `f` to every node bottom-up, replacing the tree. Used by the
    /// 2VNL rewriter to swap updatable-column references for CASE
    /// expressions.
    pub fn transform(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.transform(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.transform(f)),
                low: Box::new(low.transform(f)),
                high: Box::new(high.transform(f)),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.into_iter().map(|e| e.transform(f)).collect(),
                negated,
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, v)| (c.transform(f), v.transform(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.transform(f))),
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func,
                arg: arg.map(|a| Box::new(a.transform(f))),
            },
            leaf => leaf,
        };
        f(rebuilt)
    }
}

fn fmt_operand(e: &Expr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let needs_parens = match e {
        Expr::Binary { op, .. } => op.precedence() < parent,
        // BETWEEN/IN/IS NULL parse at comparison level.
        Expr::Between { .. } | Expr::InList { .. } | Expr::IsNull { .. } => {
            BinOp::Eq.precedence() < parent
        }
        // NOT binds looser than any binary operator; inside one it must be
        // parenthesized or re-parsing would swallow the binary's operand.
        Expr::Not(_) => true,
        _ => false,
    };
    if needs_parens {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Value::Date(d)) => write!(f, "DATE '{d}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Param(name) => write!(f, ":{name}"),
            Expr::Binary { op, left, right } => {
                fmt_operand(left, op.precedence(), f)?;
                write!(f, " {op} ")?;
                // Right operand parenthesized at equal precedence too, to
                // preserve left associativity on round trips.
                let needs = match right.as_ref() {
                    Expr::Binary { op: r, .. } => r.precedence() <= op.precedence(),
                    Expr::Between { .. } | Expr::InList { .. } | Expr::IsNull { .. } => {
                        BinOp::Eq.precedence() <= op.precedence()
                    }
                    Expr::Not(_) => true,
                    _ => false,
                };
                if needs {
                    write!(f, "({right})")
                } else {
                    write!(f, "{right}")
                }
            }
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::IsNull { expr, negated } => {
                // IS NULL binds tighter than every binary operator and NOT;
                // such operands must be parenthesized to re-parse correctly.
                let neg = if *negated { "NOT " } else { "" };
                match expr.as_ref() {
                    Expr::Binary { .. } | Expr::Not(_) => {
                        write!(f, "({expr}) IS {neg}NULL")
                    }
                    _ => write!(f, "{expr} IS {neg}NULL"),
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // BETWEEN's operands re-parse at arithmetic level;
                // parenthesize anything that binds looser.
                let wrap = |e: &Expr, f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    match e {
                        Expr::Binary { op, .. } if op.precedence() < BinOp::Add.precedence() => {
                            write!(f, "({e})")
                        }
                        Expr::Not(_)
                        | Expr::IsNull { .. }
                        | Expr::Between { .. }
                        | Expr::InList { .. } => write!(f, "({e})"),
                        _ => write!(f, "{e}"),
                    }
                };
                wrap(expr, f)?;
                write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
                wrap(low, f)?;
                write!(f, " AND ")?;
                wrap(high, f)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                match expr.as_ref() {
                    Expr::Binary { .. } | Expr::Not(_) => write!(f, "({expr})")?,
                    _ => write!(f, "{expr}")?,
                }
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => write!(f, "{func}({a})"),
                None => write!(f, "{func}(*)"),
            },
        }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

impl SelectItem {
    /// Item without an alias.
    pub fn new(expr: Expr) -> Self {
        SelectItem { expr, alias: None }
    }

    /// Output column label: the alias if present, else the rendered
    /// expression.
    pub fn label(&self) -> String {
        self.alias.clone().unwrap_or_else(|| self.expr.to_string())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.expr),
            None => write!(f, "{}", self.expr),
        }
    }
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (`true`) or descending.
    pub asc: bool,
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list; empty means `SELECT *`.
    pub items: Vec<SelectItem>,
    /// Source table.
    pub from: String,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// Optional HAVING predicate (may contain aggregates).
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// Optional LIMIT row count.
    pub limit: Option<u64>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.items.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, item) in self.items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", k.expr, if k.asc { "" } else { " DESC" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

/// `INSERT` statement (literal VALUES rows).
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Vec<String>,
    /// One expression list per row.
    pub rows: Vec<Vec<Expr>>,
}

impl fmt::Display for InsertStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, e) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET column = expr` assignments, in order.
    pub assignments: Vec<(String, Expr)>,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
}

impl fmt::Display for UpdateStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (col, e)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{col} = {e}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
}

impl fmt::Display for DeleteStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

/// One column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: wh_types::DataType,
    /// Our extension flag: whether maintenance transactions may UPDATE this
    /// column (drives the 2VNL schema extension's pre-update copies).
    pub updatable: bool,
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStmt {
    /// Table name.
    pub name: String,
    /// Column definitions, in order.
    pub columns: Vec<ColumnDef>,
    /// PRIMARY KEY column names (empty = no unique key).
    pub key: Vec<String>,
}

impl fmt::Display for CreateTableStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if c.updatable {
                write!(f, " UPDATABLE")?;
            }
        }
        if !self.key.is_empty() {
            write!(f, ", PRIMARY KEY ({})", self.key.join(", "))?;
        }
        write!(f, ")")
    }
}

/// `DROP TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DropTableStmt {
    /// Table name.
    pub name: String,
}

impl fmt::Display for DropTableStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DROP TABLE {}", self.name)
    }
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT.
    Select(SelectStmt),
    /// INSERT.
    Insert(InsertStmt),
    /// UPDATE.
    Update(UpdateStmt),
    /// DELETE.
    Delete(DeleteStmt),
    /// CREATE TABLE.
    CreateTable(CreateTableStmt),
    /// DROP TABLE.
    DropTable(DropTableStmt),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert(s) => write!(f, "{s}"),
            Statement::Update(s) => write!(f, "{s}"),
            Statement::Delete(s) => write!(f, "{s}"),
            Statement::CreateTable(s) => write!(f, "{s}"),
            Statement::DropTable(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_precedence() {
        // (a + b) * c must keep its parentheses.
        let e = Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::col("a"), Expr::col("b")),
            Expr::col("c"),
        );
        assert_eq!(e.to_string(), "(a + b) * c");
        // a + b * c must not gain parentheses.
        let e = Expr::binary(
            BinOp::Add,
            Expr::col("a"),
            Expr::binary(BinOp::Mul, Expr::col("b"), Expr::col("c")),
        );
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn case_display() {
        let e = Expr::Case {
            branches: vec![(
                Expr::binary(BinOp::GtEq, Expr::param("sessionVN"), Expr::col("tupleVN")),
                Expr::col("total_sales"),
            )],
            else_expr: Some(Box::new(Expr::col("pre_total_sales"))),
        };
        assert_eq!(
            e.to_string(),
            "CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE pre_total_sales END"
        );
    }

    #[test]
    fn string_literal_escaped() {
        assert_eq!(Expr::lit("O'Brien").to_string(), "'O''Brien'");
    }

    #[test]
    fn contains_aggregate() {
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::col("x"))),
        };
        assert!(agg.contains_aggregate());
        assert!(Expr::binary(BinOp::Add, agg.clone(), Expr::lit(1)).contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::col("a"),
            Expr::binary(BinOp::Add, Expr::col("a"), Expr::col("b")),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn transform_replaces_columns() {
        let e = Expr::binary(BinOp::Add, Expr::col("a"), Expr::col("b"));
        let out = e.transform(&mut |node| match node {
            Expr::Column(c) if c == "a" => Expr::lit(1),
            other => other,
        });
        assert_eq!(out.to_string(), "1 + b");
    }

    #[test]
    fn select_display_full() {
        let s = SelectStmt {
            items: vec![
                SelectItem::new(Expr::col("city")),
                SelectItem::new(Expr::Aggregate {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(Expr::col("total_sales"))),
                }),
            ],
            from: "DailySales".into(),
            where_clause: Some(Expr::binary(BinOp::Eq, Expr::col("state"), Expr::lit("CA"))),
            group_by: vec![Expr::col("city")],
            having: None,
            order_by: vec![OrderKey {
                expr: Expr::col("city"),
                asc: false,
            }],
            limit: None,
        };
        assert_eq!(
            s.to_string(),
            "SELECT city, SUM(total_sales) FROM DailySales WHERE state = 'CA' \
             GROUP BY city ORDER BY city DESC"
        );
    }

    #[test]
    fn dml_display() {
        let ins = InsertStmt {
            table: "t".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![Expr::lit(1), Expr::lit("x")]],
        };
        assert_eq!(ins.to_string(), "INSERT INTO t (a, b) VALUES (1, 'x')");
        let upd = UpdateStmt {
            table: "t".into(),
            assignments: vec![(
                "a".into(),
                Expr::binary(BinOp::Add, Expr::col("a"), Expr::lit(1)),
            )],
            where_clause: Some(Expr::binary(BinOp::Eq, Expr::col("b"), Expr::lit("x"))),
        };
        assert_eq!(upd.to_string(), "UPDATE t SET a = a + 1 WHERE b = 'x'");
        let del = DeleteStmt {
            table: "t".into(),
            where_clause: None,
        };
        assert_eq!(del.to_string(), "DELETE FROM t");
    }
}
