//! Hand-written SQL lexer.

use crate::error::{SqlError, SqlResult};

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively and normalized to
/// upper case; identifiers keep their original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (upper-cased).
    Keyword(String),
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// Named parameter `:name`.
    Param(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "ORDER",
    "ASC",
    "DESC",
    "AS",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "IS",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "SUM",
    "COUNT",
    "AVG",
    "MIN",
    "MAX",
    "TRUE",
    "FALSE",
    "HAVING",
    "LIMIT",
    "BETWEEN",
    "IN",
    "CREATE",
    "TABLE",
    "PRIMARY",
    "KEY",
    "UPDATABLE",
    "DROP",
];

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Parse {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            ':' => {
                i += 1;
                let name_start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == name_start {
                    return Err(SqlError::Parse {
                        message: "expected parameter name after ':'".into(),
                        offset: start,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Param(input[name_start..i].to_string()),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| SqlError::Parse {
                        message: format!("bad float literal {text}"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SqlError::Parse {
                        message: format!("bad integer literal {text}"),
                        offset: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &input[i..i + 2]
                } else {
                    ""
                };
                let punct: &'static str = match two {
                    "<>" => "<>",
                    "<=" => "<=",
                    ">=" => ">=",
                    "!=" => "<>",
                    _ => match c {
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        '*' => "*",
                        '+' => "+",
                        '-' => "-",
                        '/' => "/",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        ';' => ";",
                        '.' => ".",
                        other => {
                            return Err(SqlError::Parse {
                                message: format!("unexpected character {other:?}"),
                                offset: start,
                            })
                        }
                    },
                };
                i += punct.len();
                tokens.push(Token {
                    kind: TokenKind::Punct(punct),
                    offset: start,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select Select SELECT"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            kinds("DailySales tupleVN"),
            vec![
                TokenKind::Ident("DailySales".into()),
                TokenKind::Ident("tupleVN".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5"),
            vec![TokenKind::Int(42), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'San Jose' 'O''Brien'"),
            vec![
                TokenKind::Str("San Jose".into()),
                TokenKind::Str("O'Brien".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn params() {
        assert_eq!(
            kinds(":sessionVN"),
            vec![TokenKind::Param("sessionVN".into()), TokenKind::Eof]
        );
        assert!(tokenize(": x").is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <> b <= c >= d != e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<>"),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("c".into()),
                TokenKind::Punct(">="),
                TokenKind::Ident("d".into()),
                TokenKind::Punct("<>"),
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT @").is_err());
    }
}
