//! Query execution: scan → filter → group/aggregate → project → sort.
//!
//! Scans are **streaming**: the executor pulls rows through
//! [`RowSource::for_each`] and applies the WHERE predicate inside the
//! visitor, so rows that don't survive the filter are never buffered. A
//! [`ParallelRowSource`] additionally supports partitioned scans;
//! [`execute_select_parallel`] uses them to evaluate filters and projections
//! on worker threads and to compute GROUP BY aggregates as per-worker
//! partial maps merged at the end.

use crate::ast::{AggFunc, Expr, SelectItem, SelectStmt};
use crate::error::{SqlError, SqlResult};
use crate::eval::{EvalContext, Params};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use wh_index::IndexKey;
use wh_storage::{StorageError, Table};
use wh_types::{Row, Schema, Value};

/// Acquire a worker-state mutex, recovering from poison: these mutexes only
/// guard per-worker accumulation buffers, and a panicking worker (e.g. an
/// injected `Panic` fault below the scan) aborts the whole query anyway, so
/// surviving workers must not turn one panic into a cascade of them.
fn lock_state<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `into_inner` twin of [`lock_state`].
fn unwrap_state<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Anything that can supply a schema and a row scan. Implemented by storage
/// tables; the 2VNL layer implements it for version-filtered views.
pub trait RowSource {
    /// Schema of produced rows.
    fn schema(&self) -> &Schema;

    /// Visit every row in turn. Sources should stream — produce each row
    /// and hand it to `visit` without materializing the whole relation.
    fn for_each(&self, visit: &mut dyn FnMut(Row) -> SqlResult<()>) -> SqlResult<()>;

    /// Materialize all rows (convenience over [`RowSource::for_each`]).
    fn scan_rows(&self) -> SqlResult<Vec<Row>> {
        let mut out = Vec::new();
        self.for_each(&mut |row| {
            out.push(row);
            Ok(())
        })?;
        Ok(out)
    }
}

/// A [`RowSource`] that can also scan with multiple worker threads over
/// disjoint partitions. `visit(worker, row)` runs on worker threads; row
/// order within and across workers is source-defined.
pub trait ParallelRowSource: RowSource + Sync {
    /// Visit every row using up to `threads` workers.
    fn for_each_parallel(
        &self,
        threads: usize,
        visit: &(dyn Fn(usize, Row) -> SqlResult<()> + Sync),
    ) -> SqlResult<()>;
}

/// Run `scan` (which smuggles visitor failures out as
/// [`StorageError::ScanAborted`] after stashing the real [`SqlError`]) and
/// settle the result: the stashed error wins, genuine storage errors pass
/// through.
fn settle_scan(res: Result<(), StorageError>, stash: Option<SqlError>) -> SqlResult<()> {
    match (res, stash) {
        (_, Some(e)) => Err(e),
        (Err(e), None) => Err(e.into()),
        (Ok(()), None) => Ok(()),
    }
}

impl RowSource for Table {
    fn schema(&self) -> &Schema {
        Table::schema(self)
    }

    fn for_each(&self, visit: &mut dyn FnMut(Row) -> SqlResult<()>) -> SqlResult<()> {
        let mut stash: Option<SqlError> = None;
        // lint: allow(epoch-discipline) — scan latches each page internally and the visitor receives owned row copies; no RID or page memory outlives the latch
        let res = self.scan(|_, row| match visit(row) {
            Ok(()) => Ok(()),
            Err(e) => {
                stash = Some(e);
                Err(StorageError::ScanAborted)
            }
        });
        settle_scan(res, stash)
    }
}

impl ParallelRowSource for Table {
    fn for_each_parallel(
        &self,
        threads: usize,
        visit: &(dyn Fn(usize, Row) -> SqlResult<()> + Sync),
    ) -> SqlResult<()> {
        let stash: Mutex<Option<SqlError>> = Mutex::new(None);
        let failed = AtomicBool::new(false);
        let res = self.scan_parallel(threads, |worker, _, row| {
            if let Err(e) = visit(worker, row) {
                let mut slot = lock_state(&stash);
                if slot.is_none() {
                    *slot = Some(e);
                }
                failed.store(true, Ordering::Release); // ordering: scan-abort Release — publishes the stashed error before the flag its reader Acquires
            }
            // ordering: scan-abort Acquire — pairs with the workers' Release store publishing the stashed error
            if failed.load(Ordering::Acquire) {
                Err(StorageError::ScanAborted)
            } else {
                Ok(())
            }
        });
        settle_scan(res, unwrap_state(stash))
    }
}

/// Result of a SELECT: labeled columns and materialized rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Render as an aligned text table (for examples and reports).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(std::string::String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(std::string::ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Execute a SELECT against `source` with `params` bound.
pub fn execute_select(
    source: &dyn RowSource,
    stmt: &SelectStmt,
    params: &Params,
) -> SqlResult<QueryResult> {
    let schema = source.schema();
    let ctx = EvalContext::new(schema, params);

    if let Some(w) = &stmt.where_clause {
        if w.contains_aggregate() {
            return Err(SqlError::MisplacedAggregate);
        }
    }

    // Streaming scan with WHERE pushdown: filtered-out rows never buffer.
    let _scan_span = wh_obs::trace_span!("sql.exec.scan_filter");
    let scan_timer = wh_obs::Timer::start();
    let mut scanned: u64 = 0;
    let mut rows = Vec::new();
    source.for_each(&mut |row| {
        scanned += 1;
        let keep = match &stmt.where_clause {
            Some(pred) => ctx.eval_predicate(pred, &row)?,
            None => true,
        };
        if keep {
            rows.push(row);
        }
        Ok(())
    })?;
    wh_obs::histogram!("sql.exec.scan_filter_ns").record(scan_timer.elapsed_ns());
    wh_obs::counter!("sql.exec.scan.rows_in").add(scanned);
    wh_obs::counter!("sql.exec.filter.rows_out").add(rows.len() as u64);

    drop(_scan_span);
    let _stage_span = wh_obs::trace_span!("sql.exec.stage");
    let stage_timer = wh_obs::Timer::start();
    let aggregate = is_aggregate_query(stmt);
    let (columns, out_rows, order_keys) = if aggregate {
        execute_grouped(schema, &ctx, stmt, rows)?
    } else {
        execute_plain(schema, &ctx, stmt, rows)?
    };
    if aggregate {
        wh_obs::histogram!("sql.exec.aggregate_ns").record(stage_timer.elapsed_ns());
    } else {
        wh_obs::histogram!("sql.exec.project_ns").record(stage_timer.elapsed_ns());
    }

    let sort_timer = wh_obs::Timer::start();
    let result = sort_and_limit(stmt, columns, out_rows, order_keys);
    wh_obs::histogram!("sql.exec.sort_limit_ns").record(sort_timer.elapsed_ns());
    wh_obs::counter!("sql.exec.rows_out").add(result.rows.len() as u64);
    Ok(result)
}

pub(crate) fn is_aggregate_query(stmt: &SelectStmt) -> bool {
    !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || stmt.items.iter().any(|it| it.expr.contains_aggregate())
}

/// The shared tail of SELECT execution: ORDER BY on precomputed keys, LIMIT.
pub(crate) fn sort_and_limit(
    stmt: &SelectStmt,
    columns: Vec<String>,
    mut out_rows: Vec<Row>,
    order_keys: Vec<Vec<Value>>,
) -> QueryResult {
    if !stmt.order_by.is_empty() {
        let mut indexed: Vec<(Vec<Value>, Row)> = order_keys.into_iter().zip(out_rows).collect();
        indexed.sort_by(|(ka, _), (kb, _)| {
            for (ok, (a, b)) in stmt.order_by.iter().zip(ka.iter().zip(kb.iter())) {
                let ord = a.grouping_cmp(b);
                let ord = if ok.asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = indexed.into_iter().map(|(_, r)| r).collect();
    }

    if let Some(limit) = stmt.limit {
        out_rows.truncate(limit as usize);
    }

    QueryResult {
        columns,
        rows: out_rows,
    }
}

type ProjectedRows = (Vec<String>, Vec<Row>, Vec<Vec<Value>>);

fn execute_plain(
    schema: &Schema,
    ctx: &EvalContext<'_>,
    stmt: &SelectStmt,
    rows: Vec<Row>,
) -> SqlResult<ProjectedRows> {
    let columns: Vec<String> = if stmt.items.is_empty() {
        schema.columns().iter().map(|c| c.name.clone()).collect()
    } else {
        stmt.items.iter().map(SelectItem::label).collect()
    };
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut order_keys = Vec::new();
    for row in rows {
        let projected = if stmt.items.is_empty() {
            row.clone()
        } else {
            stmt.items
                .iter()
                .map(|it| ctx.eval(&it.expr, &row))
                .collect::<SqlResult<Vec<_>>>()?
        };
        if !stmt.order_by.is_empty() {
            order_keys.push(
                stmt.order_by
                    .iter()
                    .map(|k| ctx.eval(&k.expr, &row))
                    .collect::<SqlResult<Vec<_>>>()?,
            );
        }
        out_rows.push(projected);
    }
    Ok((columns, out_rows, order_keys))
}

fn execute_grouped(
    schema: &Schema,
    ctx: &EvalContext<'_>,
    stmt: &SelectStmt,
    rows: Vec<Row>,
) -> SqlResult<ProjectedRows> {
    validate_grouping(schema, stmt)?;

    // Bucket rows by group key (whole-input single group when GROUP BY absent).
    let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
    let mut lookup: HashMap<IndexKey, usize> = HashMap::new();
    if stmt.group_by.is_empty() {
        groups.push((Vec::new(), rows));
    } else {
        for row in rows {
            let key: Vec<Value> = stmt
                .group_by
                .iter()
                .map(|e| ctx.eval(e, &row))
                .collect::<SqlResult<Vec<_>>>()?;
            let idx_key = IndexKey(key.clone());
            match lookup.get(&idx_key) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    lookup.insert(idx_key, groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
    }

    let columns: Vec<String> = stmt.items.iter().map(SelectItem::label).collect();
    let mut out_rows = Vec::with_capacity(groups.len());
    let mut order_keys = Vec::new();
    for (_, group_rows) in &groups {
        // HAVING: filter whole groups (aggregates allowed).
        if let Some(h) = &stmt.having {
            if eval_aggregate_expr(ctx, h, group_rows)? != Value::Bool(true) {
                continue;
            }
        }
        let projected = stmt
            .items
            .iter()
            .map(|it| eval_aggregate_expr(ctx, &it.expr, group_rows))
            .collect::<SqlResult<Vec<_>>>()?;
        if !stmt.order_by.is_empty() {
            order_keys.push(
                stmt.order_by
                    .iter()
                    .map(|k| eval_aggregate_expr(ctx, &k.expr, group_rows))
                    .collect::<SqlResult<Vec<_>>>()?,
            );
        }
        out_rows.push(projected);
    }
    Ok((columns, out_rows, order_keys))
}

/// Execute a SELECT against a partitionable source with up to `threads`
/// workers.
///
/// Plain queries evaluate WHERE + projection on worker threads and
/// concatenate per-worker buffers in worker order; since partitions are
/// contiguous ranges in scan order, the result row order equals the serial
/// order. Aggregate queries fold rows into per-worker partial aggregate
/// maps (one accumulator per aggregate call site per group) that are merged
/// at the end, so no worker ever materializes its partition. Group output
/// order equals serial first-seen order for the same reason. Results are
/// identical to [`execute_select`] except that floating-point SUM/AVG may
/// differ in the last bits (addition is reassociated across partitions).
pub fn execute_select_parallel(
    source: &dyn ParallelRowSource,
    stmt: &SelectStmt,
    params: &Params,
    threads: usize,
) -> SqlResult<QueryResult> {
    if threads <= 1 {
        return execute_select(source, stmt, params);
    }
    let schema = source.schema();
    let ctx = EvalContext::new(schema, params);

    if let Some(w) = &stmt.where_clause {
        if w.contains_aggregate() {
            return Err(SqlError::MisplacedAggregate);
        }
    }

    let _ts = wh_obs::trace_span!("sql.exec.parallel_select");
    let timer = wh_obs::Timer::start();
    let result = if is_aggregate_query(stmt) {
        execute_grouped_parallel(source, schema, &ctx, stmt, threads)
    } else {
        execute_plain_parallel(source, &ctx, stmt, threads)
    };
    wh_obs::histogram!("sql.exec.parallel_select_ns").record(timer.elapsed_ns());
    if let Ok(r) = &result {
        wh_obs::counter!("sql.exec.rows_out").add(r.rows.len() as u64);
    }
    result
}

fn execute_plain_parallel(
    source: &dyn ParallelRowSource,
    ctx: &EvalContext<'_>,
    stmt: &SelectStmt,
    threads: usize,
) -> SqlResult<QueryResult> {
    #[derive(Default)]
    struct Worker {
        out_rows: Vec<Row>,
        order_keys: Vec<Vec<Value>>,
    }
    let workers: Vec<Mutex<Worker>> = (0..threads.max(1))
        .map(|_| Mutex::new(Worker::default()))
        .collect();
    source.for_each_parallel(threads, &|w, row| {
        let keep = match &stmt.where_clause {
            Some(pred) => ctx.eval_predicate(pred, &row)?,
            None => true,
        };
        if !keep {
            return Ok(());
        }
        let projected = if stmt.items.is_empty() {
            row.clone()
        } else {
            stmt.items
                .iter()
                .map(|it| ctx.eval(&it.expr, &row))
                .collect::<SqlResult<Vec<_>>>()?
        };
        let mut state = lock_state(&workers[w]);
        if !stmt.order_by.is_empty() {
            state.order_keys.push(
                stmt.order_by
                    .iter()
                    .map(|k| ctx.eval(&k.expr, &row))
                    .collect::<SqlResult<Vec<_>>>()?,
            );
        }
        state.out_rows.push(projected);
        Ok(())
    })?;

    let columns: Vec<String> = if stmt.items.is_empty() {
        source
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect()
    } else {
        stmt.items.iter().map(SelectItem::label).collect()
    };
    let mut out_rows = Vec::new();
    let mut order_keys = Vec::new();
    for state in workers {
        let state = unwrap_state(state);
        out_rows.extend(state.out_rows);
        order_keys.extend(state.order_keys);
    }
    Ok(sort_and_limit(stmt, columns, out_rows, order_keys))
}

/// One aggregate call site: function and argument expression.
pub(crate) type AggSpec = (AggFunc, Option<Expr>);

/// Collect the distinct aggregate call sites of `expr` into `out`.
pub(crate) fn collect_aggregates(expr: &Expr, out: &mut Vec<AggSpec>) {
    match expr {
        Expr::Aggregate { func, arg } => {
            let spec = (*func, arg.as_deref().cloned());
            if !out.contains(&spec) {
                out.push(spec);
            }
        }
        Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Not(e) | Expr::Neg(e) => collect_aggregates(e, out),
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_aggregates(c, out);
                collect_aggregates(v, out);
            }
            if let Some(e) = else_expr {
                collect_aggregates(e, out);
            }
        }
    }
}

/// A mergeable partial state for one aggregate call site over one group.
#[derive(Debug, Clone)]
pub(crate) enum AggAcc {
    /// COUNT: rows (or non-null argument evaluations) seen.
    Count(i64),
    /// SUM / MIN / MAX: the running value, `None` until a non-null input.
    Value(Option<Value>),
    /// AVG: running sum and non-null count.
    Avg { acc: Option<Value>, n: i64 },
}

impl AggAcc {
    pub(crate) fn new(func: AggFunc) -> AggAcc {
        match func {
            AggFunc::Count => AggAcc::Count(0),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => AggAcc::Value(None),
            AggFunc::Avg => AggAcc::Avg { acc: None, n: 0 },
        }
    }

    /// Fold one input value (`None` = COUNT(*), which counts every row).
    pub(crate) fn fold(&mut self, func: AggFunc, value: Option<Value>) -> SqlResult<()> {
        match self {
            AggAcc::Count(n) => {
                if value.as_ref().is_none_or(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            AggAcc::Value(slot) => {
                let v = value.ok_or(SqlError::MisplacedAggregate)?;
                if v.is_null() {
                    return Ok(());
                }
                *slot = Some(match slot.take() {
                    None => v,
                    Some(prev) => combine(func, prev, v)?,
                });
            }
            AggAcc::Avg { acc, n } => {
                let v = value.ok_or(SqlError::MisplacedAggregate)?;
                if v.is_null() {
                    return Ok(());
                }
                *n += 1;
                *acc = Some(match acc.take() {
                    None => v,
                    Some(prev) => prev.add(&v)?,
                });
            }
        }
        Ok(())
    }

    /// Merge another partial state for the same call site into this one.
    fn merge(&mut self, func: AggFunc, other: AggAcc) -> SqlResult<()> {
        match (self, other) {
            (AggAcc::Count(a), AggAcc::Count(b)) => *a += b,
            (AggAcc::Value(a), AggAcc::Value(b)) => {
                if let Some(v) = b {
                    *a = Some(match a.take() {
                        None => v,
                        Some(prev) => combine(func, prev, v)?,
                    });
                }
            }
            (AggAcc::Avg { acc, n }, AggAcc::Avg { acc: b_acc, n: b_n }) => {
                *n += b_n;
                if let Some(v) = b_acc {
                    *acc = Some(match acc.take() {
                        None => v,
                        Some(prev) => prev.add(&v)?,
                    });
                }
            }
            _ => {
                return Err(SqlError::Unsupported(
                    "mismatched accumulator shapes for one aggregate call site".into(),
                ))
            }
        }
        Ok(())
    }

    /// The final aggregate value (empty-input semantics match the serial
    /// executor: COUNT → 0, everything else → NULL).
    pub(crate) fn finish(self, _func: AggFunc) -> SqlResult<Value> {
        match self {
            AggAcc::Count(n) => Ok(Value::Int(n)),
            AggAcc::Value(v) => Ok(v.unwrap_or(Value::Null)),
            AggAcc::Avg { acc: None, .. } => Ok(Value::Null),
            AggAcc::Avg {
                acc: Some(total),
                n,
            } => {
                let t = total
                    .as_f64()
                    .ok_or(SqlError::Type(wh_types::TypeError::Mismatch {
                        op: "AVG",
                        left: "non-numeric".into(),
                        right: "numeric".into(),
                    }))?;
                Ok(Value::Float(t / n as f64))
            }
        }
    }
}

/// SUM/MIN/MAX two-value combiner.
fn combine(func: AggFunc, prev: Value, next: Value) -> SqlResult<Value> {
    match func {
        AggFunc::Sum => Ok(prev.add(&next)?),
        AggFunc::Min | AggFunc::Max => {
            let keep_next = match next.sql_cmp(&prev)? {
                Some(ord) => {
                    (func == AggFunc::Min && ord == std::cmp::Ordering::Less)
                        || (func == AggFunc::Max && ord == std::cmp::Ordering::Greater)
                }
                None => false,
            };
            Ok(if keep_next { next } else { prev })
        }
        _ => Err(SqlError::Unsupported(
            "combine only serves SUM/MIN/MAX".into(),
        )),
    }
}

/// Partial aggregation state for one group.
struct GroupAcc {
    key: Vec<Value>,
    /// First row of the group, in scan order: the row bare (grouped) column
    /// references evaluate against, exactly as in the serial executor.
    rep: Option<Row>,
    accs: Vec<AggAcc>,
}

#[derive(Default)]
struct GroupWorker {
    groups: Vec<GroupAcc>,
    lookup: HashMap<IndexKey, usize>,
}

/// Evaluate an expression over a finished group: aggregate call sites take
/// their merged value, everything else evaluates against the group's
/// representative row (NULL when the group is empty — same as the serial
/// executor's empty-group behavior).
pub(crate) fn eval_computed(
    ctx: &EvalContext<'_>,
    expr: &Expr,
    rep: Option<&Row>,
    specs: &[AggSpec],
    values: &[Value],
) -> SqlResult<Value> {
    match expr {
        Expr::Aggregate { func, arg } => {
            let i = specs
                .iter()
                .position(|(f, a)| f == func && a.as_ref() == arg.as_deref())
                .ok_or(SqlError::MisplacedAggregate)?;
            Ok(values[i].clone())
        }
        Expr::Binary { op, left, right } => {
            let l = eval_computed(ctx, left, rep, specs, values)?;
            let r = eval_computed(ctx, right, rep, specs, values)?;
            let rebuilt = Expr::binary(*op, Expr::Literal(l), Expr::Literal(r));
            ctx.eval(&rebuilt, &[])
        }
        Expr::Not(e) => {
            let v = eval_computed(ctx, e, rep, specs, values)?;
            ctx.eval(&Expr::Not(Box::new(Expr::Literal(v))), &[])
        }
        Expr::Neg(e) => {
            let v = eval_computed(ctx, e, rep, specs, values)?;
            ctx.eval(&Expr::Neg(Box::new(Expr::Literal(v))), &[])
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_computed(ctx, expr, rep, specs, values)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_computed(ctx, expr, rep, specs, values)?;
            let lo = eval_computed(ctx, low, rep, specs, values)?;
            let hi = eval_computed(ctx, high, rep, specs, values)?;
            let rebuilt = Expr::Between {
                expr: Box::new(Expr::Literal(v)),
                low: Box::new(Expr::Literal(lo)),
                high: Box::new(Expr::Literal(hi)),
                negated: *negated,
            };
            ctx.eval(&rebuilt, &[])
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_computed(ctx, expr, rep, specs, values)?;
            let lits = list
                .iter()
                .map(|e| eval_computed(ctx, e, rep, specs, values).map(Expr::Literal))
                .collect::<SqlResult<Vec<_>>>()?;
            let rebuilt = Expr::InList {
                expr: Box::new(Expr::Literal(v)),
                list: lits,
                negated: *negated,
            };
            ctx.eval(&rebuilt, &[])
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, val) in branches {
                if eval_computed(ctx, cond, rep, specs, values)? == Value::Bool(true) {
                    return eval_computed(ctx, val, rep, specs, values);
                }
            }
            match else_expr {
                Some(e) => eval_computed(ctx, e, rep, specs, values),
                None => Ok(Value::Null),
            }
        }
        scalar => match rep {
            Some(row) => ctx.eval(scalar, row),
            None => Ok(Value::Null),
        },
    }
}

fn execute_grouped_parallel(
    source: &dyn ParallelRowSource,
    schema: &Schema,
    ctx: &EvalContext<'_>,
    stmt: &SelectStmt,
    threads: usize,
) -> SqlResult<QueryResult> {
    validate_grouping(schema, stmt)?;

    // Every aggregate call site across projections, HAVING, and ORDER BY
    // gets one accumulator slot per group.
    let mut specs: Vec<AggSpec> = Vec::new();
    for it in &stmt.items {
        collect_aggregates(&it.expr, &mut specs);
    }
    if let Some(h) = &stmt.having {
        collect_aggregates(h, &mut specs);
    }
    for k in &stmt.order_by {
        collect_aggregates(&k.expr, &mut specs);
    }
    let specs = &specs;

    let workers: Vec<Mutex<GroupWorker>> = (0..threads.max(1))
        .map(|_| Mutex::new(GroupWorker::default()))
        .collect();
    source.for_each_parallel(threads, &|w, row| {
        let keep = match &stmt.where_clause {
            Some(pred) => ctx.eval_predicate(pred, &row)?,
            None => true,
        };
        if !keep {
            return Ok(());
        }
        let key: Vec<Value> = stmt
            .group_by
            .iter()
            .map(|e| ctx.eval(e, &row))
            .collect::<SqlResult<Vec<_>>>()?;
        // Evaluate aggregate arguments outside the worker-state lock.
        let mut inputs = Vec::with_capacity(specs.len());
        for (_, arg) in specs {
            inputs.push(match arg {
                Some(e) => Some(ctx.eval(e, &row)?),
                None => None,
            });
        }
        let mut state = lock_state(&workers[w]);
        let idx_key = IndexKey(key.clone());
        let i = match state.lookup.get(&idx_key) {
            Some(&i) => i,
            None => {
                let i = state.groups.len();
                state.lookup.insert(idx_key, i);
                state.groups.push(GroupAcc {
                    key,
                    rep: Some(row.clone()),
                    accs: specs.iter().map(|(f, _)| AggAcc::new(*f)).collect(),
                });
                i
            }
        };
        let group = &mut state.groups[i];
        for (slot, ((func, _), input)) in group.accs.iter_mut().zip(specs.iter().zip(inputs)) {
            slot.fold(*func, input)?;
        }
        Ok(())
    })?;

    // Merge per-worker partials in worker order; partitions are contiguous
    // scan ranges, so first-seen group order equals the serial executor's.
    let mut groups: Vec<GroupAcc> = Vec::new();
    let mut lookup: HashMap<IndexKey, usize> = HashMap::new();
    for state in workers {
        let state = unwrap_state(state);
        for group in state.groups {
            let idx_key = IndexKey(group.key.clone());
            match lookup.get(&idx_key) {
                Some(&i) => {
                    for (slot, ((func, _), part)) in
                        groups[i].accs.iter_mut().zip(specs.iter().zip(group.accs))
                    {
                        slot.merge(*func, part)?;
                    }
                }
                None => {
                    lookup.insert(idx_key, groups.len());
                    groups.push(group);
                }
            }
        }
    }
    // A query with no GROUP BY aggregates the whole input as one group,
    // even when the input is empty.
    if groups.is_empty() && stmt.group_by.is_empty() {
        groups.push(GroupAcc {
            key: Vec::new(),
            rep: None,
            accs: specs.iter().map(|(f, _)| AggAcc::new(*f)).collect(),
        });
    }

    let columns: Vec<String> = stmt.items.iter().map(SelectItem::label).collect();
    let mut out_rows = Vec::with_capacity(groups.len());
    let mut order_keys = Vec::new();
    for group in groups {
        let rep = group.rep.as_ref();
        let values = group
            .accs
            .clone()
            .into_iter()
            .zip(specs)
            .map(|(acc, (f, _))| acc.finish(*f))
            .collect::<SqlResult<Vec<_>>>()?;
        if let Some(h) = &stmt.having {
            if eval_computed(ctx, h, rep, specs, &values)? != Value::Bool(true) {
                continue;
            }
        }
        let projected = stmt
            .items
            .iter()
            .map(|it| eval_computed(ctx, &it.expr, rep, specs, &values))
            .collect::<SqlResult<Vec<_>>>()?;
        if !stmt.order_by.is_empty() {
            order_keys.push(
                stmt.order_by
                    .iter()
                    .map(|k| eval_computed(ctx, &k.expr, rep, specs, &values))
                    .collect::<SqlResult<Vec<_>>>()?,
            );
        }
        out_rows.push(projected);
    }
    Ok(sort_and_limit(stmt, columns, out_rows, order_keys))
}

/// Reject non-grouped bare column references in projections of aggregate
/// queries (only plain-column GROUP BY expressions are recognized as
/// grouping columns, which covers the paper's queries).
pub(crate) fn validate_grouping(schema: &Schema, stmt: &SelectStmt) -> SqlResult<()> {
    let grouped: Vec<&str> = stmt
        .group_by
        .iter()
        .filter_map(|e| match e {
            Expr::Column(c) => Some(c.as_str()),
            _ => None,
        })
        .collect();
    // Only enforceable when every GROUP BY expr is a plain column.
    if grouped.len() != stmt.group_by.len() {
        return Ok(());
    }
    let mut checked: Vec<&Expr> = stmt.items.iter().map(|it| &it.expr).collect();
    if let Some(h) = &stmt.having {
        checked.push(h);
    }
    for expr in checked {
        let mut cols = Vec::new();
        collect_columns_outside_aggregates(expr, &mut cols);
        for c in cols {
            if !grouped.contains(&c.as_str()) {
                // Unknown columns surface as NoSuchColumn during eval;
                // only flag real, ungrouped columns here.
                if schema.column_index(&c).is_ok() {
                    return Err(SqlError::NotGrouped(c));
                }
            }
        }
    }
    Ok(())
}

fn collect_columns_outside_aggregates(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Column(c) => {
            if !out.contains(c) {
                out.push(c.clone());
            }
        }
        Expr::Aggregate { .. } => {} // inside an aggregate is fine
        Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_columns_outside_aggregates(left, out);
            collect_columns_outside_aggregates(right, out);
        }
        Expr::Not(e) | Expr::Neg(e) => collect_columns_outside_aggregates(e, out),
        Expr::IsNull { expr, .. } => collect_columns_outside_aggregates(expr, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_columns_outside_aggregates(expr, out);
            collect_columns_outside_aggregates(low, out);
            collect_columns_outside_aggregates(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_columns_outside_aggregates(expr, out);
            for e in list {
                collect_columns_outside_aggregates(e, out);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_columns_outside_aggregates(c, out);
                collect_columns_outside_aggregates(v, out);
            }
            if let Some(e) = else_expr {
                collect_columns_outside_aggregates(e, out);
            }
        }
    }
}

/// Evaluate an expression that may contain aggregates over a group of rows:
/// aggregates are computed over the group, everything else over the group's
/// first row (validated to be a grouping column).
fn eval_aggregate_expr(ctx: &EvalContext<'_>, expr: &Expr, group: &[Row]) -> SqlResult<Value> {
    match expr {
        Expr::Aggregate { func, arg } => compute_aggregate(ctx, *func, arg.as_deref(), group),
        Expr::Binary { op, left, right } => {
            let l = eval_aggregate_expr(ctx, left, group)?;
            let r = eval_aggregate_expr(ctx, right, group)?;
            // Reuse scalar machinery by substituting the computed operands.
            let rebuilt = Expr::binary(*op, Expr::Literal(l), Expr::Literal(r));
            ctx.eval(&rebuilt, &[])
        }
        Expr::Not(e) => {
            let v = eval_aggregate_expr(ctx, e, group)?;
            ctx.eval(&Expr::Not(Box::new(Expr::Literal(v))), &[])
        }
        Expr::Neg(e) => {
            let v = eval_aggregate_expr(ctx, e, group)?;
            ctx.eval(&Expr::Neg(Box::new(Expr::Literal(v))), &[])
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_aggregate_expr(ctx, expr, group)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_aggregate_expr(ctx, expr, group)?;
            let lo = eval_aggregate_expr(ctx, low, group)?;
            let hi = eval_aggregate_expr(ctx, high, group)?;
            let rebuilt = Expr::Between {
                expr: Box::new(Expr::Literal(v)),
                low: Box::new(Expr::Literal(lo)),
                high: Box::new(Expr::Literal(hi)),
                negated: *negated,
            };
            ctx.eval(&rebuilt, &[])
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_aggregate_expr(ctx, expr, group)?;
            let lits = list
                .iter()
                .map(|e| eval_aggregate_expr(ctx, e, group).map(Expr::Literal))
                .collect::<SqlResult<Vec<_>>>()?;
            let rebuilt = Expr::InList {
                expr: Box::new(Expr::Literal(v)),
                list: lits,
                negated: *negated,
            };
            ctx.eval(&rebuilt, &[])
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, val) in branches {
                if eval_aggregate_expr(ctx, cond, group)? == Value::Bool(true) {
                    return eval_aggregate_expr(ctx, val, group);
                }
            }
            match else_expr {
                Some(e) => eval_aggregate_expr(ctx, e, group),
                None => Ok(Value::Null),
            }
        }
        scalar => match group.first() {
            Some(row) => ctx.eval(scalar, row),
            None => Ok(Value::Null),
        },
    }
}

fn compute_aggregate(
    ctx: &EvalContext<'_>,
    func: AggFunc,
    arg: Option<&Expr>,
    group: &[Row],
) -> SqlResult<Value> {
    match func {
        AggFunc::Count => {
            let n = match arg {
                None => group.len() as i64,
                Some(e) => {
                    let mut n = 0i64;
                    for row in group {
                        if !ctx.eval(e, row)?.is_null() {
                            n += 1;
                        }
                    }
                    n
                }
            };
            Ok(Value::Int(n))
        }
        AggFunc::Sum | AggFunc::Avg => {
            let e = arg.ok_or(SqlError::MisplacedAggregate)?;
            let mut acc: Option<Value> = None;
            let mut n = 0i64;
            for row in group {
                let v = ctx.eval(e, row)?;
                if v.is_null() {
                    continue;
                }
                n += 1;
                acc = Some(match acc {
                    None => v,
                    Some(prev) => prev.add(&v)?,
                });
            }
            match (func, acc) {
                (_, None) => Ok(Value::Null),
                (AggFunc::Sum, Some(total)) => Ok(total),
                (AggFunc::Avg, Some(total)) => {
                    let t =
                        total
                            .as_f64()
                            .ok_or(SqlError::Type(wh_types::TypeError::Mismatch {
                                op: "AVG",
                                left: "non-numeric".into(),
                                right: "numeric".into(),
                            }))?;
                    Ok(Value::Float(t / n as f64))
                }
                _ => Err(SqlError::Unsupported(
                    "aggregate dispatch reached a foreign function arm".into(),
                )),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let e = arg.ok_or(SqlError::MisplacedAggregate)?;
            let mut best: Option<Value> = None;
            for row in group {
                let v = ctx.eval(e, row)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(prev) => {
                        let keep_new = match v.sql_cmp(&prev)? {
                            Some(ord) => {
                                (func == AggFunc::Min && ord == std::cmp::Ordering::Less)
                                    || (func == AggFunc::Max && ord == std::cmp::Ordering::Greater)
                            }
                            None => false,
                        };
                        if keep_new {
                            v
                        } else {
                            prev
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Statement;
    use std::sync::Arc;
    use wh_storage::IoStats;
    use wh_types::schema::daily_sales_schema;
    use wh_types::Date;

    fn sales_table() -> Table {
        let t =
            Table::create("DailySales", daily_sales_schema(), Arc::new(IoStats::new())).unwrap();
        type SaleSpec = (&'static str, &'static str, &'static str, (u16, u8, u8), i64);
        let rows: Vec<SaleSpec> = vec![
            ("San Jose", "CA", "golf equip", (1996, 10, 14), 10_000),
            ("San Jose", "CA", "golf equip", (1996, 10, 15), 1_500),
            ("San Jose", "CA", "racquetball", (1996, 10, 14), 2_000),
            ("Berkeley", "CA", "racquetball", (1996, 10, 14), 12_000),
            ("Novato", "CA", "rollerblades", (1996, 10, 13), 8_000),
        ];
        for (city, state, pl, (y, m, d), sales) in rows {
            t.insert(&[
                Value::from(city),
                Value::from(state),
                Value::from(pl),
                Value::from(Date::ymd(y, m, d)),
                Value::from(sales),
            ])
            .unwrap();
        }
        t
    }

    fn select(table: &Table, sql: &str) -> QueryResult {
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        execute_select(table, &s, &Params::new()).unwrap()
    }

    #[test]
    fn select_star() {
        let t = sales_table();
        let r = select(&t, "SELECT * FROM DailySales");
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.columns[0], "city");
    }

    #[test]
    fn filter_and_project() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT product_line, total_sales FROM DailySales WHERE city = 'San Jose' ORDER BY total_sales DESC",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::from("golf equip"), Value::from(10_000)],
                vec![Value::from("racquetball"), Value::from(2_000)],
                vec![Value::from("golf equip"), Value::from(1_500)],
            ]
        );
    }

    #[test]
    fn paper_rollup_query() {
        // Example 2.1: total sales by city.
        let t = sales_table();
        let r = select(
            &t,
            "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state ORDER BY city",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![
                    Value::from("Berkeley"),
                    Value::from("CA"),
                    Value::from(12_000)
                ],
                vec![Value::from("Novato"), Value::from("CA"), Value::from(8_000)],
                vec![
                    Value::from("San Jose"),
                    Value::from("CA"),
                    Value::from(13_500)
                ],
            ]
        );
    }

    #[test]
    fn paper_drilldown_query() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT product_line, SUM(total_sales) FROM DailySales \
             WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line ORDER BY product_line",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::from("golf equip"), Value::from(11_500)],
                vec![Value::from("racquetball"), Value::from(2_000)],
            ]
        );
    }

    #[test]
    fn aggregates_without_group_by() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT COUNT(*), SUM(total_sales), MIN(total_sales), MAX(total_sales), AVG(total_sales) FROM DailySales",
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(5));
        assert_eq!(r.rows[0][1], Value::Int(33_500));
        assert_eq!(r.rows[0][2], Value::Int(1_500));
        assert_eq!(r.rows[0][3], Value::Int(12_000));
        assert_eq!(r.rows[0][4], Value::Float(6_700.0));
    }

    #[test]
    fn sum_skips_nulls_and_empty_is_null() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT SUM(total_sales) FROM DailySales WHERE city = 'Nowhere'",
        );
        assert_eq!(r.rows[0][0], Value::Null);
        let r = select(&t, "SELECT COUNT(*) FROM DailySales WHERE city = 'Nowhere'");
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn ungrouped_column_rejected() {
        let t = sales_table();
        let Statement::Select(s) =
            parse_statement("SELECT city, SUM(total_sales) FROM DailySales GROUP BY state")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(
            execute_select(&t, &s, &Params::new()),
            Err(SqlError::NotGrouped("city".into()))
        );
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let t = sales_table();
        let Statement::Select(s) =
            parse_statement("SELECT city FROM DailySales WHERE SUM(total_sales) > 1").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            execute_select(&t, &s, &Params::new()),
            Err(SqlError::MisplacedAggregate)
        );
    }

    #[test]
    fn arithmetic_over_aggregates() {
        let t = sales_table();
        let r = select(&t, "SELECT SUM(total_sales) / COUNT(*) FROM DailySales");
        assert_eq!(r.rows[0][0], Value::Int(6_700));
    }

    #[test]
    fn case_inside_aggregate() {
        // The exact shape the 2VNL rewrite produces (Example 4.1).
        let t = sales_table();
        let Statement::Select(s) = parse_statement(
            "SELECT city, SUM(CASE WHEN :flag >= 1 THEN total_sales ELSE 0 END) \
             FROM DailySales GROUP BY city ORDER BY city",
        )
        .unwrap() else {
            panic!()
        };
        let mut params = Params::new();
        params.insert("flag".into(), Value::Int(1));
        let r = execute_select(&t, &s, &params).unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::from("Berkeley"), Value::from(12_000)]
        );
    }

    #[test]
    fn order_by_date_ascending() {
        let t = sales_table();
        let r = select(&t, "SELECT date FROM DailySales ORDER BY date");
        let dates: Vec<&Value> = r.rows.iter().map(|r| &r[0]).collect();
        assert_eq!(*dates[0], Value::from(Date::ymd(1996, 10, 13)));
        assert_eq!(*dates[4], Value::from(Date::ymd(1996, 10, 15)));
    }

    #[test]
    fn having_filters_groups() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city \
             HAVING SUM(total_sales) > 10000 ORDER BY city",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::from("Berkeley"), Value::from(12_000)],
                vec![Value::from("San Jose"), Value::from(13_500)],
            ]
        );
    }

    #[test]
    fn having_may_reference_group_columns() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT city, COUNT(*) FROM DailySales GROUP BY city \
             HAVING city <> 'Novato' AND COUNT(*) >= 1 ORDER BY city",
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn having_without_group_by_is_whole_table_filter() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT SUM(total_sales) FROM DailySales HAVING COUNT(*) > 100",
        );
        assert!(r.rows.is_empty());
        let r = select(
            &t,
            "SELECT SUM(total_sales) FROM DailySales HAVING COUNT(*) = 5",
        );
        assert_eq!(r.rows, vec![vec![Value::from(33_500)]]);
    }

    #[test]
    fn having_with_ungrouped_column_rejected() {
        let t = sales_table();
        let Statement::Select(s) = parse_statement(
            "SELECT state, SUM(total_sales) FROM DailySales GROUP BY state HAVING city = 'x'",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(
            execute_select(&t, &s, &Params::new()),
            Err(SqlError::NotGrouped("city".into()))
        );
    }

    #[test]
    fn limit_truncates_after_sort() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT total_sales FROM DailySales ORDER BY total_sales DESC LIMIT 2",
        );
        assert_eq!(
            r.rows,
            vec![vec![Value::from(12_000)], vec![Value::from(10_000)]]
        );
        let r = select(&t, "SELECT city FROM DailySales LIMIT 0");
        assert!(r.rows.is_empty());
        // LIMIT larger than the result is harmless.
        let r = select(&t, "SELECT city FROM DailySales LIMIT 99");
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn limit_applies_to_grouped_queries() {
        let t = sales_table();
        let r = select(
            &t,
            "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY SUM(total_sales) DESC LIMIT 1",
        );
        assert_eq!(
            r.rows,
            vec![vec![Value::from("San Jose"), Value::from(13_500)]]
        );
    }

    #[test]
    fn to_table_string_renders() {
        let t = sales_table();
        let r = select(&t, "SELECT city FROM DailySales WHERE city = 'Novato'");
        let s = r.to_table_string();
        assert!(s.contains("city"));
        assert!(s.contains("Novato"));
    }

    /// A table big enough that a parallel scan actually spans pages.
    fn big_table(rows: i64) -> Table {
        let t =
            Table::create("DailySales", daily_sales_schema(), Arc::new(IoStats::new())).unwrap();
        let cities = ["San Jose", "Berkeley", "Novato", "Palo Alto"];
        let lines = ["golf equip", "racquetball", "rollerblades"];
        for i in 0..rows {
            t.insert(&[
                Value::from(cities[(i % 4) as usize]),
                Value::from("CA"),
                Value::from(lines[(i % 3) as usize]),
                Value::from(Date::ymd(1996, 10, (1 + i % 28) as u8)),
                Value::from(i),
            ])
            .unwrap();
        }
        t
    }

    fn select_both_ways(table: &Table, sql: &str, threads: usize) -> (QueryResult, QueryResult) {
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        let serial = execute_select(table, &s, &Params::new()).unwrap();
        let parallel = execute_select_parallel(table, &s, &Params::new(), threads).unwrap();
        (serial, parallel)
    }

    #[test]
    fn parallel_plain_select_matches_serial() {
        let t = big_table(500);
        for threads in [1, 2, 4, 7] {
            for sql in [
                "SELECT * FROM DailySales",
                "SELECT city, total_sales FROM DailySales WHERE total_sales >= 250",
                "SELECT city FROM DailySales WHERE city = 'Novato' ORDER BY total_sales DESC LIMIT 10",
            ] {
                let (serial, parallel) = select_both_ways(&t, sql, threads);
                assert_eq!(serial, parallel, "{sql} with {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_grouped_select_matches_serial() {
        let t = big_table(500);
        for threads in [2, 4, 7] {
            for sql in [
                "SELECT COUNT(*), SUM(total_sales), MIN(total_sales), MAX(total_sales) FROM DailySales",
                "SELECT product_line, SUM(total_sales) FROM DailySales GROUP BY product_line",
                "SELECT city, COUNT(*), SUM(total_sales) FROM DailySales \
                 WHERE total_sales >= 100 GROUP BY city \
                 HAVING SUM(total_sales) > 1000 ORDER BY SUM(total_sales) DESC",
                "SELECT city, SUM(total_sales) * 2 + COUNT(*) FROM DailySales GROUP BY city LIMIT 2",
            ] {
                let (serial, parallel) = select_both_ways(&t, sql, threads);
                assert_eq!(serial, parallel, "{sql} with {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_avg_matches_serial_on_ints() {
        let t = big_table(300);
        let (serial, parallel) = select_both_ways(
            &t,
            "SELECT city, AVG(total_sales) FROM DailySales GROUP BY city",
            4,
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_aggregate_over_empty_input_matches_serial() {
        let t =
            Table::create("DailySales", daily_sales_schema(), Arc::new(IoStats::new())).unwrap();
        let (serial, parallel) = select_both_ways(
            &t,
            "SELECT COUNT(*), SUM(total_sales), MIN(city) FROM DailySales",
            4,
        );
        assert_eq!(serial, parallel);
        assert_eq!(
            parallel.rows,
            vec![vec![Value::from(0), Value::Null, Value::Null]]
        );
        // Empty input with GROUP BY yields no groups at all.
        let (serial, parallel) =
            select_both_ways(&t, "SELECT city, COUNT(*) FROM DailySales GROUP BY city", 4);
        assert_eq!(serial, parallel);
        assert!(parallel.rows.is_empty());
    }

    #[test]
    fn parallel_visitor_error_propagates() {
        let t = big_table(100);
        let Statement::Select(s) = parse_statement("SELECT city + 1 FROM DailySales").unwrap()
        else {
            panic!("not a select")
        };
        let serial = execute_select(&t, &s, &Params::new());
        let parallel = execute_select_parallel(&t, &s, &Params::new(), 4);
        assert!(serial.is_err());
        assert!(parallel.is_err());
    }
}
