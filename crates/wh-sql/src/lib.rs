//! SQL subset for the `warehouse-2vnl` system.
//!
//! The paper's central implementation claim (§4) is that 2VNL "can be
//! implemented entirely outside of an existing DBMS by automatically
//! modifying the relation schema ... and rewriting the maintenance and query
//! operations". A rewrite approach needs something to rewrite: this crate is
//! the SQL surface — a hand-written lexer and recursive-descent parser for
//! the subset the paper uses (SELECT with WHERE / GROUP BY / ORDER BY,
//! aggregates, **CASE WHEN** expressions, named `:parameters`, INSERT /
//! UPDATE / DELETE), an AST that renders back to SQL text (the rewrite golden
//! tests in `wh-vnl` compare rendered SQL against the paper's Example 4.1),
//! and an executor that runs statements against `wh-storage` tables.
//!
//! ```
//! use wh_sql::{parse_statement, Database};
//! use wh_types::{Column, DataType, Schema, Value};
//!
//! let db = Database::new();
//! db.create_table(
//!     "t",
//!     Schema::new(vec![
//!         Column::new("city", DataType::Char(16)),
//!         Column::updatable("sales", DataType::Int32),
//!     ])
//!     .unwrap(),
//! )
//! .unwrap();
//! db.run("INSERT INTO t VALUES ('San Jose', 10)").unwrap();
//! db.run("INSERT INTO t VALUES ('San Jose', 5)").unwrap();
//! let result = db.run("SELECT city, SUM(sales) FROM t GROUP BY city").unwrap();
//! assert_eq!(result.rows, vec![vec![Value::from("San Jose"), Value::from(15)]]);
//! ```

pub mod ast;
pub mod cursor;
pub mod database;
pub mod error;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod patch;
pub mod pushdown;

pub use ast::{
    AggFunc, BinOp, ColumnDef, CreateTableStmt, DeleteStmt, DropTableStmt, Expr, InsertStmt,
    OrderKey, SelectItem, SelectStmt, Statement, UpdateStmt,
};
pub use cursor::Cursor;
pub use database::Database;
pub use error::{SqlError, SqlResult};
pub use eval::{EvalContext, Params};
pub use exec::{
    execute_select, execute_select_parallel, ParallelRowSource, QueryResult, RowSource,
};
pub use parser::{parse_expression, parse_statement};
pub use patch::AggPatcher;
pub use pushdown::{extract_scan_filters, FilterOp, ScanFilter};
