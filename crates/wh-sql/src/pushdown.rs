//! WHERE-clause pushdown analysis for batch scan kernels.
//!
//! The batched reader pipeline (see `wh_vnl::scan::BatchScanner`) classifies
//! whole pages over *gathered* `i64` column images before any row is
//! decoded. A WHERE conjunct of the shape `column <cmp> literal` over a
//! fixed-width integer-image column can be evaluated on those same gathered
//! images — rows that fail it are never decoded and never reach the
//! executor. This module is the planning half: split a predicate into the
//! pushable conjuncts and the residual expression the executor still has to
//! evaluate per row.
//!
//! Eligibility is deliberately narrow:
//!
//! * Only top-level `AND` conjuncts split — anything under `OR`/`NOT`
//!   stays residual.
//! * The column must be `UInt8`, `Int32`, or `Date`. All three gather into
//!   `i64` losslessly and order-preserving (`Date` packs as decimal
//!   `yyyymmdd`, which is monotone in the calendar order), and none of them
//!   can collide with the gather layer's `i64::MIN` NULL sentinel. `Int64`
//!   is excluded exactly because a stored `i64::MIN` would be
//!   indistinguishable from NULL in the gathered image.
//! * The other side must be a literal of matching type (`Int` for the
//!   integer columns, `Date` for date columns). Parameters are not pushable
//!   — they are bound after planning.
//!
//! Three-valued logic is preserved: a pushed conjunct keeps a row iff the
//! column is non-NULL and the comparison holds, which is exactly "the
//! conjunct evaluates to TRUE" — and an `AND` of conjuncts is TRUE iff
//! every conjunct is, so filtering on the pushed set and the residual
//! independently reproduces the original predicate's keep-set.

use crate::ast::{BinOp, Expr};
use wh_types::{DataType, Schema, Value};

/// Comparison operator of a pushable conjunct, in column-on-the-left form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    Lt,
    LtEq,
    Gt,
    GtEq,
    Eq,
    NotEq,
}

impl FilterOp {
    /// Evaluate `value <op> literal` on gathered images.
    pub fn eval(self, value: i64, literal: i64) -> bool {
        match self {
            FilterOp::Lt => value < literal,
            FilterOp::LtEq => value <= literal,
            FilterOp::Gt => value > literal,
            FilterOp::GtEq => value >= literal,
            FilterOp::Eq => value == literal,
            FilterOp::NotEq => value != literal,
        }
    }

    /// The operator with its operands swapped (`lit <op> col` →
    /// `col <mirror> lit`).
    fn mirrored(self) -> FilterOp {
        match self {
            FilterOp::Lt => FilterOp::Gt,
            FilterOp::LtEq => FilterOp::GtEq,
            FilterOp::Gt => FilterOp::Lt,
            FilterOp::GtEq => FilterOp::LtEq,
            FilterOp::Eq => FilterOp::Eq,
            FilterOp::NotEq => FilterOp::NotEq,
        }
    }
}

/// One pushable conjunct: `schema column <op> literal`, with the literal
/// already translated to the column's gathered `i64` image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanFilter {
    /// Base-schema column index.
    pub column: usize,
    pub op: FilterOp,
    /// Literal in the gathered `i64` domain (`Date` → packed `yyyymmdd`).
    pub literal: i64,
}

/// Split `pred` into pushable scan filters and the residual predicate the
/// executor must still evaluate (`None` when everything pushed). The row
/// set selected by "all filters TRUE ∧ residual TRUE" is identical to the
/// one selected by `pred` being TRUE.
pub fn extract_scan_filters(pred: &Expr, schema: &Schema) -> (Vec<ScanFilter>, Option<Expr>) {
    let mut filters = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    split(pred, schema, &mut filters, &mut residual);
    let residual = residual.into_iter().reduce(|acc, e| Expr::Binary {
        op: BinOp::And,
        left: Box::new(acc),
        right: Box::new(e),
    });
    (filters, residual)
}

fn split(e: &Expr, schema: &Schema, filters: &mut Vec<ScanFilter>, residual: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        split(left, schema, filters, residual);
        split(right, schema, filters, residual);
        return;
    }
    match as_filter(e, schema) {
        Some(f) => filters.push(f),
        None => residual.push(e.clone()),
    }
}

fn as_filter(e: &Expr, schema: &Schema) -> Option<ScanFilter> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    let op = match op {
        BinOp::Lt => FilterOp::Lt,
        BinOp::LtEq => FilterOp::LtEq,
        BinOp::Gt => FilterOp::Gt,
        BinOp::GtEq => FilterOp::GtEq,
        BinOp::Eq => FilterOp::Eq,
        BinOp::NotEq => FilterOp::NotEq,
        _ => return None,
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(name), Expr::Literal(lit)) => bind(name, op, lit, schema),
        (Expr::Literal(lit), Expr::Column(name)) => bind(name, op.mirrored(), lit, schema),
        _ => None,
    }
}

/// Resolve the column and translate the literal into the gathered domain;
/// `None` when the column/literal pair is not eligible.
fn bind(name: &str, op: FilterOp, lit: &Value, schema: &Schema) -> Option<ScanFilter> {
    let column = schema.column_index(name).ok()?;
    let literal = match (schema.columns()[column].ty, lit) {
        (DataType::UInt8 | DataType::Int32, Value::Int(v)) => *v,
        (DataType::Date, Value::Date(d)) => i64::from(d.to_packed()),
        _ => return None,
    };
    Some(ScanFilter {
        column,
        op,
        literal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use wh_types::{Column, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("city", DataType::Char(8)),
            Column::new("day", DataType::Date),
            Column::new("sales", DataType::Int32),
            Column::new("big", DataType::Int64),
        ])
        .unwrap()
    }

    fn extract(pred: &str) -> (Vec<ScanFilter>, Option<Expr>) {
        extract_scan_filters(&parse_expression(pred).unwrap(), &schema())
    }

    #[test]
    fn simple_comparison_pushes_fully() {
        let (filters, residual) = extract("sales >= 5000");
        assert_eq!(
            filters,
            vec![ScanFilter {
                column: 2,
                op: FilterOp::GtEq,
                literal: 5000
            }]
        );
        assert!(residual.is_none());
    }

    #[test]
    fn reversed_operands_mirror_the_operator() {
        let (filters, residual) = extract("5000 < sales");
        assert_eq!(
            filters,
            vec![ScanFilter {
                column: 2,
                op: FilterOp::Gt,
                literal: 5000
            }]
        );
        assert!(residual.is_none());
    }

    #[test]
    fn and_splits_mixed_conjuncts() {
        let (filters, residual) = extract("sales >= 5000 AND city = 'SF' AND sales < 9000");
        assert_eq!(filters.len(), 2);
        assert_eq!(filters[0].op, FilterOp::GtEq);
        assert_eq!(filters[1].op, FilterOp::Lt);
        // The Char conjunct stays residual.
        assert_eq!(residual, Some(parse_expression("city = 'SF'").unwrap()));
    }

    #[test]
    fn or_and_not_are_not_split() {
        let (filters, residual) = extract("sales >= 5000 OR sales < 100");
        assert!(filters.is_empty());
        assert!(residual.is_some());
        let (filters, _) = extract("NOT sales >= 5000");
        assert!(filters.is_empty());
    }

    #[test]
    fn int64_and_params_stay_residual() {
        // Int64 would collide with the gather NULL sentinel at i64::MIN.
        let (filters, residual) = extract("big = 7");
        assert!(filters.is_empty());
        assert!(residual.is_some());
        let (filters, _) = extract("sales >= :cutoff");
        assert!(filters.is_empty());
    }

    #[test]
    fn unknown_column_or_type_mismatch_stays_residual() {
        let (filters, residual) = extract("zzz = 1");
        assert!(filters.is_empty());
        assert!(residual.is_some());
        let (filters, _) = extract("city = 1");
        assert!(filters.is_empty());
    }

    #[test]
    fn residual_preserves_and_semantics() {
        let (filters, residual) = extract("city = 'SF' AND day IS NULL");
        assert!(filters.is_empty());
        assert_eq!(
            residual,
            Some(parse_expression("city = 'SF' AND day IS NULL").unwrap())
        );
    }
}
