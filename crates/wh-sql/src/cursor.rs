//! Tuple-at-a-time cursors over a predicate.
//!
//! §4.2 of the paper rewrites maintenance DML with a **cursor approach**:
//! "cursors can be used so that the decision of which physical operation to
//! perform can be made on a tuple by tuple basis". A [`Cursor`] materializes
//! the RIDs matching a predicate up front (so the iteration set is stable
//! even while the caller mutates the tuples it visits) and hands back
//! `(rid, row)` pairs one at a time.

use crate::ast::Expr;
use crate::error::SqlResult;
use crate::eval::{EvalContext, Params};
use wh_storage::{Rid, Table};
use wh_types::Row;

/// A stable, tuple-at-a-time cursor over the rows of `table` matching an
/// optional predicate.
pub struct Cursor<'t> {
    table: &'t Table,
    rids: std::vec::IntoIter<Rid>,
}

impl<'t> Cursor<'t> {
    /// Open a cursor over all rows matching `predicate` (all rows when
    /// `None`). The matching RID set is fixed at open time.
    pub fn open(table: &'t Table, predicate: Option<&Expr>, params: &Params) -> SqlResult<Self> {
        let ctx = EvalContext::new(table.schema(), params);
        let mut rids = Vec::new();
        // lint: allow(epoch-discipline) — the RID set is re-validated at fetch time: next_row re-reads under the page latch and skips NoSuchSlot (the documented staleness contract)
        table.scan(|rid, row| {
            let keep = match predicate {
                Some(p) => ctx.eval_predicate(p, &row).map_err(storage_eval_err)?,
                None => true,
            };
            if keep {
                rids.push(rid);
            }
            Ok(())
        })?;
        Ok(Cursor {
            table,
            rids: rids.into_iter(),
        })
    }

    /// Fetch the next `(rid, row)` pair, re-reading the row at fetch time.
    /// Rows physically deleted since open are skipped.
    pub fn next_row(&mut self) -> SqlResult<Option<(Rid, Row)>> {
        for rid in self.rids.by_ref() {
            match self.table.read(rid) {
                Ok(row) => return Ok(Some((rid, row))),
                Err(wh_storage::StorageError::NoSuchSlot { .. }) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(None)
    }

    /// Drain the cursor into a vector.
    pub fn collect_rows(mut self) -> SqlResult<Vec<(Rid, Row)>> {
        let mut out = Vec::new();
        while let Some(pair) = self.next_row()? {
            out.push(pair);
        }
        Ok(out)
    }
}

/// Smuggle an evaluation error through the storage scan callback, which
/// only speaks `StorageError`.
fn storage_eval_err(e: crate::error::SqlError) -> wh_storage::StorageError {
    wh_storage::StorageError::Type(wh_types::TypeError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use std::sync::Arc;
    use wh_storage::IoStats;
    use wh_types::{Column, DataType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::updatable("v", DataType::Int32),
        ])
        .unwrap();
        let t = Table::create("t", schema, Arc::new(IoStats::new())).unwrap();
        for i in 0..10 {
            t.insert(&[Value::from(i), Value::from(i * 10)]).unwrap();
        }
        t
    }

    #[test]
    fn cursor_filters() {
        let t = table();
        let pred = parse_expression("id >= 7").unwrap();
        let rows = Cursor::open(&t, Some(&pred), &Params::new())
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn cursor_without_predicate_sees_all() {
        let t = table();
        let rows = Cursor::open(&t, None, &Params::new())
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn mutating_visited_rows_does_not_disturb_iteration() {
        // The §4.2 pattern: decide-then-update per tuple, while iterating.
        let t = table();
        let pred = parse_expression("v >= 0").unwrap();
        let mut cur = Cursor::open(&t, Some(&pred), &Params::new()).unwrap();
        let mut visited = 0;
        while let Some((rid, mut row)) = cur.next_row().unwrap() {
            row[1] = row[1].add(&Value::from(1)).unwrap();
            t.update(rid, &row).unwrap();
            visited += 1;
        }
        assert_eq!(visited, 10);
        // Every row updated exactly once.
        let sum: i64 = t
            .scan_all()
            .unwrap()
            .iter()
            .map(|(_, r)| r[1].as_int().unwrap())
            .sum();
        assert_eq!(sum, (0..10).map(|i| i * 10 + 1).sum::<i64>());
    }

    #[test]
    fn rows_deleted_mid_iteration_are_skipped() {
        let t = table();
        let mut cur = Cursor::open(&t, None, &Params::new()).unwrap();
        // Delete everything before fetching.
        for (rid, _) in t.scan_all().unwrap() {
            t.delete(rid).unwrap();
        }
        assert!(cur.next_row().unwrap().is_none());
    }

    #[test]
    fn params_usable_in_cursor_predicates() {
        let t = table();
        let pred = parse_expression("id = :target").unwrap();
        let mut params = Params::new();
        params.insert("target".into(), Value::from(3));
        let rows = Cursor::open(&t, Some(&pred), &params)
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], Value::from(3));
    }
}
