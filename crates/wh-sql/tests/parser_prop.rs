//! Property: rendering any AST to SQL text and re-parsing yields the same
//! AST. The 2VNL rewriter depends on this — rewritten queries are rendered,
//! shipped to the "DBMS", and parsed again.

use proptest::prelude::*;
use wh_sql::{parse_expression, parse_statement, AggFunc, BinOp, Expr, SelectItem, SelectStmt,
    Statement};
use wh_types::{Date, Value};

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|i| Expr::lit(i as i64)),
        (-1000i64..1000).prop_map(|i| Expr::lit(i as f64 * 0.5)),
        "[a-zA-Z '_]{0,12}".prop_map(|s| Expr::lit(s.replace('\'', ""))),
        (1990u16..2030, 1u8..=12, 1u8..=28)
            .prop_map(|(y, m, d)| Expr::lit(Date::ymd(y, m, d))),
        Just(Expr::Literal(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
    ]
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_literal(),
        "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
            // Identifiers that collide with keywords would not round-trip.
            ![
                "select", "from", "where", "group", "by", "order", "asc", "desc", "as", "and",
                "or", "not", "null", "is", "case", "when", "then", "else", "end", "insert",
                "into", "values", "update", "set", "delete", "sum", "count", "avg", "min",
                "max", "true", "false", "having", "limit", "between", "in",
            ]
            .contains(&s.as_str())
        }).prop_map(Expr::col),
        "[a-zA-Z][a-zA-Z0-9_]{0,8}".prop_map(Expr::param),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = arb_leaf();
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Eq),
                    Just(BinOp::NotEq),
                    Just(BinOp::Lt),
                    Just(BinOp::LtEq),
                    Just(BinOp::Gt),
                    Just(BinOp::GtEq),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                prop::option::of(inner.clone())
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            (
                prop_oneof![
                    Just(AggFunc::Sum),
                    Just(AggFunc::Count),
                    Just(AggFunc::Avg),
                    Just(AggFunc::Min),
                    Just(AggFunc::Max),
                ],
                inner
            )
                .prop_map(|(func, arg)| Expr::Aggregate {
                    func,
                    arg: Some(Box::new(arg)),
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn expression_display_parse_round_trip(e in arb_expr()) {
        let text = e.to_string();
        let reparsed = parse_expression(&text)
            .unwrap_or_else(|err| panic!("failed to reparse {text:?}: {err}"));
        prop_assert_eq!(reparsed, e, "text was: {}", text);
    }

    #[test]
    fn select_display_parse_round_trip(
        exprs in prop::collection::vec(arb_expr(), 1..4),
        where_clause in prop::option::of(arb_expr()),
        limit in prop::option::of(0u64..100),
    ) {
        let stmt = SelectStmt {
            items: exprs.into_iter().map(SelectItem::new).collect(),
            from: "t".into(),
            where_clause,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit,
        };
        let text = Statement::Select(stmt.clone()).to_string();
        let reparsed = parse_statement(&text)
            .unwrap_or_else(|err| panic!("failed to reparse {text:?}: {err}"));
        prop_assert_eq!(reparsed, Statement::Select(stmt), "text was: {}", text);
    }
}
