//! Randomized test: rendering any AST to SQL text and re-parsing yields the
//! same AST. The 2VNL rewriter depends on this — rewritten queries are
//! rendered, shipped to the "DBMS", and parsed again.
//!
//! ASTs are generated with the deterministic [`SplitMix64`] generator, so
//! every run exercises the same cases.

use wh_sql::{
    parse_expression, parse_statement, AggFunc, BinOp, Expr, SelectItem, SelectStmt, Statement,
};
use wh_types::{Date, SplitMix64, Value};

const KEYWORDS: &[&str] = &[
    "select", "from", "where", "group", "by", "order", "asc", "desc", "as", "and", "or", "not",
    "null", "is", "case", "when", "then", "else", "end", "insert", "into", "values", "update",
    "set", "delete", "sum", "count", "avg", "min", "max", "true", "false", "having", "limit",
    "between", "in",
];

fn random_string(rng: &mut SplitMix64, charset: &[u8], len: usize) -> String {
    (0..len)
        .map(|_| charset[rng.index(charset.len())] as char)
        .collect()
}

fn random_literal(rng: &mut SplitMix64) -> Expr {
    match rng.next_below(6) {
        0 => Expr::lit(rng.range_i64(i32::MIN as i64, i32::MAX as i64 + 1)),
        1 => Expr::lit(rng.range_i64(-1000, 1000) as f64 * 0.5),
        2 => {
            let len = rng.index(13);
            Expr::lit(random_string(
                rng,
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ _",
                len,
            ))
        }
        3 => Expr::lit(Date::ymd(
            rng.range_i64(1990, 2030) as u16,
            rng.range_i64(1, 13) as u8,
            rng.range_i64(1, 29) as u8,
        )),
        4 => Expr::Literal(Value::Null),
        _ => Expr::Literal(Value::Bool(rng.chance(1, 2))),
    }
}

fn random_leaf(rng: &mut SplitMix64) -> Expr {
    match rng.next_below(3) {
        0 => random_literal(rng),
        1 => loop {
            // Identifiers that collide with keywords would not round-trip.
            let head = random_string(rng, b"abcdefghijklmnopqrstuvwxyz", 1);
            let tail_len = rng.index(9);
            let tail = random_string(rng, b"abcdefghijklmnopqrstuvwxyz0123456789_", tail_len);
            let name = format!("{head}{tail}");
            if !KEYWORDS.contains(&name.as_str()) {
                break Expr::col(name);
            }
        },
        _ => {
            let head = random_string(
                rng,
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
                1,
            );
            let tail_len = rng.index(9);
            let tail = random_string(
                rng,
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
                tail_len,
            );
            Expr::param(format!("{head}{tail}"))
        }
    }
}

const BIN_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Eq,
    BinOp::NotEq,
    BinOp::Lt,
    BinOp::LtEq,
    BinOp::Gt,
    BinOp::GtEq,
    BinOp::And,
    BinOp::Or,
];

const AGG_FUNCS: &[AggFunc] = &[
    AggFunc::Sum,
    AggFunc::Count,
    AggFunc::Avg,
    AggFunc::Min,
    AggFunc::Max,
];

fn random_expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.chance(1, 4) {
        return random_leaf(rng);
    }
    match rng.next_below(7) {
        0 => {
            let op = BIN_OPS[rng.index(BIN_OPS.len())];
            let l = random_expr(rng, depth - 1);
            let r = random_expr(rng, depth - 1);
            Expr::binary(op, l, r)
        }
        1 => Expr::Not(Box::new(random_expr(rng, depth - 1))),
        2 => Expr::IsNull {
            expr: Box::new(random_expr(rng, depth - 1)),
            negated: rng.chance(1, 2),
        },
        3 => Expr::Between {
            expr: Box::new(random_expr(rng, depth - 1)),
            low: Box::new(random_expr(rng, depth - 1)),
            high: Box::new(random_expr(rng, depth - 1)),
            negated: rng.chance(1, 2),
        },
        4 => {
            let list = (0..rng.range_inclusive_u64(1, 3))
                .map(|_| random_expr(rng, depth - 1))
                .collect();
            Expr::InList {
                expr: Box::new(random_expr(rng, depth - 1)),
                list,
                negated: rng.chance(1, 2),
            }
        }
        5 => {
            let branches = (0..rng.range_inclusive_u64(1, 2))
                .map(|_| (random_expr(rng, depth - 1), random_expr(rng, depth - 1)))
                .collect();
            let else_expr = if rng.chance(1, 2) {
                Some(Box::new(random_expr(rng, depth - 1)))
            } else {
                None
            };
            Expr::Case {
                branches,
                else_expr,
            }
        }
        _ => Expr::Aggregate {
            func: AGG_FUNCS[rng.index(AGG_FUNCS.len())],
            arg: Some(Box::new(random_expr(rng, depth - 1))),
        },
    }
}

#[test]
fn expression_display_parse_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x9A85_0001);
    for _ in 0..512 {
        let e = random_expr(&mut rng, 4);
        let text = e.to_string();
        let reparsed = parse_expression(&text)
            .unwrap_or_else(|err| panic!("failed to reparse {text:?}: {err}"));
        assert_eq!(reparsed, e, "text was: {text}");
    }
}

#[test]
fn select_display_parse_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x9A85_0002);
    for _ in 0..512 {
        let exprs: Vec<Expr> = (0..rng.range_inclusive_u64(1, 3))
            .map(|_| random_expr(&mut rng, 3))
            .collect();
        let where_clause = if rng.chance(1, 2) {
            Some(random_expr(&mut rng, 3))
        } else {
            None
        };
        let limit = if rng.chance(1, 2) {
            Some(rng.next_below(100))
        } else {
            None
        };
        let stmt = SelectStmt {
            items: exprs.into_iter().map(SelectItem::new).collect(),
            from: "t".into(),
            where_clause,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit,
        };
        let text = Statement::Select(stmt.clone()).to_string();
        let reparsed = parse_statement(&text)
            .unwrap_or_else(|err| panic!("failed to reparse {text:?}: {err}"));
        assert_eq!(reparsed, Statement::Select(stmt), "text was: {text}");
    }
}
