//! Model checks for the index structures: hash and ordered indexes must
//! agree with a reference map under arbitrary insert/remove interleavings,
//! and range scans must agree with a sorted reference. Interleavings are
//! generated with the deterministic [`SplitMix64`] generator.

use std::collections::{BTreeMap, HashMap};
use wh_index::{HashIndex, IndexKey, OrderedIndex};
use wh_storage::Rid;
use wh_types::{SplitMix64, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u32),
    Remove(usize),
    Lookup(i64),
}

fn random_ops(rng: &mut SplitMix64) -> Vec<Op> {
    let len = rng.range_inclusive_u64(1, 119) as usize;
    (0..len)
        .map(|_| match rng.next_below(3) {
            0 => Op::Insert(rng.range_i64(0, 20), rng.next_below(1000) as u32),
            1 => Op::Remove(rng.next_u64() as usize),
            _ => Op::Lookup(rng.range_i64(0, 20)),
        })
        .collect()
}

#[test]
fn ordered_index_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x1DE8_0001);
    for _ in 0..128 {
        let ops = random_ops(&mut rng);
        let idx = OrderedIndex::new(vec![0]);
        let mut model: BTreeMap<i64, Vec<Rid>> = BTreeMap::new();
        let mut entries: Vec<(i64, Rid)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(k, r) => {
                    let rid = Rid::new(r, 0);
                    idx.insert(&[Value::from(k)], rid);
                    model.entry(k).or_default().push(rid);
                    entries.push((k, rid));
                }
                Op::Remove(i) => {
                    if entries.is_empty() {
                        continue;
                    }
                    let (k, rid) = entries.swap_remove(i % entries.len());
                    idx.remove(&[Value::from(k)], rid).unwrap();
                    // Remove exactly one occurrence from the model.
                    let v = model.get_mut(&k).unwrap();
                    let pos = v.iter().position(|&r| r == rid).unwrap();
                    v.remove(pos);
                    if v.is_empty() {
                        model.remove(&k);
                    }
                }
                Op::Lookup(k) => {
                    let mut got = idx.lookup(&IndexKey(vec![Value::from(k)]));
                    got.sort();
                    let mut want = model.get(&k).cloned().unwrap_or_default();
                    want.sort();
                    assert_eq!(got, want);
                }
            }
        }
        // Full range agrees with the model.
        let mut got = idx.range(None, None);
        got.sort();
        let mut want: Vec<Rid> = model.values().flatten().copied().collect();
        want.sort();
        assert_eq!(got, want);
        // Sub-range agrees.
        let lo = IndexKey(vec![Value::from(5)]);
        let hi = IndexKey(vec![Value::from(12)]);
        let mut got = idx.range(Some(&lo), Some(&hi));
        got.sort();
        let mut want: Vec<Rid> = model
            .range(5..=12)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        want.sort();
        assert_eq!(got, want);
    }
}

#[test]
fn unique_hash_index_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x1DE8_0002);
    for _ in 0..128 {
        let len = rng.range_inclusive_u64(1, 79) as usize;
        let keys: Vec<(i64, u32)> = (0..len)
            .map(|_| (rng.range_i64(0, 30), rng.next_u64() as u32))
            .collect();
        let idx = HashIndex::unique(vec![0]);
        let mut model: HashMap<i64, Rid> = HashMap::new();
        for (k, r) in keys {
            let rid = Rid::new(r % 1000, 0);
            let row = [Value::from(k)];
            match idx.insert(&row, rid) {
                Ok(()) => {
                    assert!(!model.contains_key(&k), "accepted duplicate key {k}");
                    model.insert(k, rid);
                }
                Err(wh_index::IndexError::KeyConflict(existing)) => {
                    assert_eq!(Some(&existing), model.get(&k), "wrong incumbent");
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        for (k, rid) in &model {
            assert_eq!(idx.get(&IndexKey(vec![Value::from(*k)])), Some(*rid));
        }
    }
}
