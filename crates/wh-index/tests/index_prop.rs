//! Model checks for the index structures: hash and ordered indexes must
//! agree with a reference map under arbitrary insert/remove interleavings,
//! and range scans must agree with a sorted reference.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use wh_index::{HashIndex, IndexKey, OrderedIndex};
use wh_storage::Rid;
use wh_types::Value;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u32),
    Remove(usize),
    Lookup(i64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..20, any::<u32>()).prop_map(|(k, r)| Op::Insert(k, r % 1000)),
            any::<usize>().prop_map(Op::Remove),
            (0i64..20).prop_map(Op::Lookup),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ordered_index_matches_model(ops in arb_ops()) {
        let idx = OrderedIndex::new(vec![0]);
        let mut model: BTreeMap<i64, Vec<Rid>> = BTreeMap::new();
        let mut entries: Vec<(i64, Rid)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(k, r) => {
                    let rid = Rid::new(r, 0);
                    idx.insert(&[Value::from(k)], rid);
                    model.entry(k).or_default().push(rid);
                    entries.push((k, rid));
                }
                Op::Remove(i) => {
                    if entries.is_empty() { continue; }
                    let (k, rid) = entries.swap_remove(i % entries.len());
                    idx.remove(&[Value::from(k)], rid).unwrap();
                    // Remove exactly one occurrence from the model.
                    let v = model.get_mut(&k).unwrap();
                    let pos = v.iter().position(|&r| r == rid).unwrap();
                    v.remove(pos);
                    if v.is_empty() { model.remove(&k); }
                }
                Op::Lookup(k) => {
                    let mut got = idx.lookup(&IndexKey(vec![Value::from(k)]));
                    got.sort();
                    let mut want = model.get(&k).cloned().unwrap_or_default();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Full range agrees with the model.
        let mut got = idx.range(None, None);
        got.sort();
        let mut want: Vec<Rid> = model.values().flatten().copied().collect();
        want.sort();
        prop_assert_eq!(got, want);
        // Sub-range agrees.
        let lo = IndexKey(vec![Value::from(5)]);
        let hi = IndexKey(vec![Value::from(12)]);
        let mut got = idx.range(Some(&lo), Some(&hi));
        got.sort();
        let mut want: Vec<Rid> = model
            .range(5..=12)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn unique_hash_index_matches_model(keys in prop::collection::vec((0i64..30, any::<u32>()), 1..80)) {
        let idx = HashIndex::unique(vec![0]);
        let mut model: HashMap<i64, Rid> = HashMap::new();
        for (k, r) in keys {
            let rid = Rid::new(r % 1000, 0);
            let row = [Value::from(k)];
            match idx.insert(&row, rid) {
                Ok(()) => {
                    prop_assert!(!model.contains_key(&k), "accepted duplicate key {k}");
                    model.insert(k, rid);
                }
                Err(wh_index::IndexError::KeyConflict(existing)) => {
                    prop_assert_eq!(Some(&existing), model.get(&k), "wrong incumbent");
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            }
        }
        for (k, rid) in &model {
            prop_assert_eq!(idx.get(&IndexKey(vec![Value::from(*k)])), Some(*rid));
        }
    }
}
