//! Composite index keys with a total order.

use std::cmp::Ordering;
use wh_types::Value;

/// A composite key: the values of the indexed columns, in index-column order.
///
/// Ordering and equality come from [`Value::grouping_cmp`], which is total
/// (NULLs sort first, numeric types compare numerically), so keys are safe in
/// both hash maps and B-trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey(pub Vec<Value>);

impl IndexKey {
    /// Build a key by projecting `columns` out of `row`.
    pub fn project(row: &[Value], columns: &[usize]) -> Self {
        IndexKey(columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// The key's values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.grouping_cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl From<Vec<Value>> for IndexKey {
    fn from(v: Vec<Value>) -> Self {
        IndexKey(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_extracts_columns() {
        let row = vec![Value::from("a"), Value::from(1), Value::from("b")];
        let k = IndexKey::project(&row, &[2, 0]);
        assert_eq!(k.values(), &[Value::from("b"), Value::from("a")]);
    }

    #[test]
    fn lexicographic_order() {
        let a = IndexKey(vec![Value::from("CA"), Value::from(1)]);
        let b = IndexKey(vec![Value::from("CA"), Value::from(2)]);
        let c = IndexKey(vec![Value::from("NY"), Value::from(0)]);
        assert!(a < b && b < c);
    }

    #[test]
    fn shorter_prefix_sorts_first() {
        let a = IndexKey(vec![Value::from(1)]);
        let b = IndexKey(vec![Value::from(1), Value::from(1)]);
        assert!(a < b);
    }

    #[test]
    fn nulls_sort_first_and_equal() {
        let a = IndexKey(vec![Value::Null]);
        let b = IndexKey(vec![Value::from(0)]);
        assert!(a < b);
        assert_eq!(a, IndexKey(vec![Value::Null]));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(
            IndexKey(vec![Value::Int(2)]),
            IndexKey(vec![Value::Float(2.0)])
        );
    }
}
