//! Secondary indexes for the `warehouse-2vnl` system.
//!
//! §4.3 of the paper observes that under 2VNL, indexes on **non-updatable**
//! attributes are unaffected by versioning — and for warehouse summary tables
//! the key/group-by attributes are exactly the non-updatable ones. The
//! maintenance rewrite also needs a unique-key index to detect the "insert
//! failed due to a unique key conflict" case of Example 4.2 (Table 2 rows
//! 1–2). Both needs are served here:
//!
//! * [`HashIndex`] — equality lookups, optionally unique.
//! * [`OrderedIndex`] — equality plus range scans (BTree-backed).
//! * [`KeyDirectory`] — the unique-key directory a 2VNL table keeps over its
//!   key attributes.

pub mod directory;
pub mod hash;
pub mod key;
pub mod ordered;

pub use directory::KeyDirectory;
pub use hash::HashIndex;
pub use key::IndexKey;
pub use ordered::OrderedIndex;

use std::fmt;

/// Index-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A unique index rejected a duplicate key. Carries the conflicting
    /// entry's RID so the maintenance path can fall back to an update
    /// (Example 4.2).
    KeyConflict(wh_storage::Rid),
    /// An entry to remove was not present.
    MissingEntry,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::KeyConflict(rid) => write!(f, "unique key conflict with record {rid}"),
            IndexError::MissingEntry => write!(f, "index entry not found"),
        }
    }
}

impl std::error::Error for IndexError {}
