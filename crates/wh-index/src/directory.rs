//! Unique-key directory for a keyed relation.
//!
//! 2VNL maintenance translates logical inserts/updates/deletes into physical
//! operations by first asking "is there already a tuple with this key?"
//! (Tables 2–4, Example 4.2). A [`KeyDirectory`] answers that in O(1) and
//! enforces the physical-uniqueness invariant the paper's in-place-update
//! requirement exists to protect: at most one *physical record* per key.

use crate::hash::HashIndex;
use crate::key::IndexKey;
use crate::IndexError;
use wh_storage::Rid;
use wh_types::{Schema, Value};

/// Directory over a schema's declared unique key.
#[derive(Debug)]
pub struct KeyDirectory {
    index: HashIndex,
}

impl KeyDirectory {
    /// Build a directory for `schema`'s key columns. Returns `None` when the
    /// schema declares no unique key (the paper's "tuples without unique
    /// keys" case, where Table 2's third row is always followed).
    pub fn for_schema(schema: &Schema) -> Option<Self> {
        if !schema.has_key() {
            return None;
        }
        Some(KeyDirectory {
            index: HashIndex::unique(schema.key().to_vec()),
        })
    }

    /// Key columns covered by this directory.
    pub fn columns(&self) -> &[usize] {
        self.index.columns()
    }

    /// The RID physically holding `row`'s key, if any.
    pub fn find(&self, row: &[Value]) -> Option<Rid> {
        self.index
            .get(&IndexKey::project(row, self.index.columns()))
    }

    /// The RID holding exactly `key`, if any.
    pub fn find_key(&self, key: &IndexKey) -> Option<Rid> {
        self.index.get(key)
    }

    /// Register `row` at `rid`; fails with the incumbent's RID on conflict.
    pub fn register(&self, row: &[Value], rid: Rid) -> Result<(), IndexError> {
        self.index.insert(row, rid)
    }

    /// Unregister `row` at `rid` (on physical delete).
    pub fn unregister(&self, row: &[Value], rid: Rid) -> Result<(), IndexError> {
        self.index.remove(row, rid)
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.index.key_count()
    }

    /// Whether no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;
    use wh_types::{Column, DataType, Date, Schema};

    fn rid(n: u32) -> Rid {
        Rid::new(n, 0)
    }

    fn sales_row(city: &str) -> Vec<Value> {
        vec![
            Value::from(city),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(10_000),
        ]
    }

    #[test]
    fn keyless_schema_has_no_directory() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int32)]).unwrap();
        assert!(KeyDirectory::for_schema(&schema).is_none());
    }

    #[test]
    fn register_find_unregister() {
        let dir = KeyDirectory::for_schema(&daily_sales_schema()).unwrap();
        let row = sales_row("San Jose");
        assert_eq!(dir.find(&row), None);
        dir.register(&row, rid(7)).unwrap();
        assert_eq!(dir.find(&row), Some(rid(7)));
        // Key ignores the non-key total_sales column.
        let mut changed = row.clone();
        changed[4] = Value::from(99);
        assert_eq!(dir.find(&changed), Some(rid(7)));
        dir.unregister(&row, rid(7)).unwrap();
        assert!(dir.is_empty());
    }

    #[test]
    fn conflict_reports_incumbent() {
        let dir = KeyDirectory::for_schema(&daily_sales_schema()).unwrap();
        let row = sales_row("San Jose");
        dir.register(&row, rid(1)).unwrap();
        assert_eq!(
            dir.register(&row, rid(2)),
            Err(IndexError::KeyConflict(rid(1)))
        );
        // Different key registers fine.
        dir.register(&sales_row("Berkeley"), rid(2)).unwrap();
        assert_eq!(dir.len(), 2);
    }
}
