//! Ordered index: equality and range lookups over one or more columns.

use crate::key::IndexKey;
use crate::IndexError;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::RwLock;
use wh_storage::Rid;
use wh_types::Value;

/// A BTree-backed index mapping composite keys to RIDs, supporting range
/// scans. Warehouse readers typically filter on dimension attributes (city,
/// date ranges); those attributes are non-updatable, so — per §4.3 — this
/// index works unchanged under 2VNL.
#[derive(Debug)]
pub struct OrderedIndex {
    columns: Vec<usize>,
    map: RwLock<BTreeMap<IndexKey, Vec<Rid>>>,
}

impl OrderedIndex {
    /// An ordered (non-unique) index over the given column positions.
    pub fn new(columns: Vec<usize>) -> Self {
        OrderedIndex {
            columns,
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// The indexed column positions.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Index `row` (stored at `rid`).
    pub fn insert(&self, row: &[Value], rid: Rid) {
        let key = IndexKey::project(row, &self.columns);
        self.map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(key)
            .or_default()
            .push(rid);
        wh_obs::counter!("index.ordered.inserts").inc();
    }

    /// Remove the entry for (`row`, `rid`).
    pub fn remove(&self, row: &[Value], rid: Rid) -> Result<(), IndexError> {
        let key = IndexKey::project(row, &self.columns);
        let mut map = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(entry) = map.get_mut(&key) else {
            return Err(IndexError::MissingEntry);
        };
        let Some(pos) = entry.iter().position(|&r| r == rid) else {
            return Err(IndexError::MissingEntry);
        };
        entry.swap_remove(pos);
        if entry.is_empty() {
            map.remove(&key);
        }
        wh_obs::counter!("index.ordered.removes").inc();
        Ok(())
    }

    /// All RIDs under exactly `key`.
    pub fn lookup(&self, key: &IndexKey) -> Vec<Rid> {
        wh_obs::counter!("index.ordered.lookups").inc();
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// All RIDs with keys in `[lo, hi]` (inclusive bounds; pass `None` for
    /// unbounded ends), in key order.
    pub fn range(&self, lo: Option<&IndexKey>, hi: Option<&IndexKey>) -> Vec<Rid> {
        wh_obs::counter!("index.ordered.range_lookups").inc();
        let map = self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let lo_bound = lo.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        let hi_bound = hi.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        map.range((lo_bound, hi_bound))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> Rid {
        Rid::new(n, 0)
    }

    fn key(i: i64) -> IndexKey {
        IndexKey(vec![Value::from(i)])
    }

    fn populated() -> OrderedIndex {
        let idx = OrderedIndex::new(vec![0]);
        for i in 0..10 {
            idx.insert(&[Value::from(i)], rid(i as u32));
        }
        idx
    }

    #[test]
    fn exact_lookup() {
        let idx = populated();
        assert_eq!(idx.lookup(&key(3)), vec![rid(3)]);
        assert_eq!(idx.lookup(&key(99)), Vec::<Rid>::new());
    }

    #[test]
    fn range_inclusive() {
        let idx = populated();
        let got = idx.range(Some(&key(2)), Some(&key(5)));
        assert_eq!(got, vec![rid(2), rid(3), rid(4), rid(5)]);
    }

    #[test]
    fn range_unbounded() {
        let idx = populated();
        assert_eq!(idx.range(None, Some(&key(1))), vec![rid(0), rid(1)]);
        assert_eq!(idx.range(Some(&key(8)), None), vec![rid(8), rid(9)]);
        assert_eq!(idx.range(None, None).len(), 10);
    }

    #[test]
    fn remove_shrinks() {
        let idx = populated();
        idx.remove(&[Value::from(3)], rid(3)).unwrap();
        assert_eq!(idx.lookup(&key(3)), Vec::<Rid>::new());
        assert_eq!(idx.key_count(), 9);
        assert_eq!(
            idx.remove(&[Value::from(3)], rid(3)),
            Err(IndexError::MissingEntry)
        );
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let idx = OrderedIndex::new(vec![0]);
        idx.insert(&[Value::from(1)], rid(1));
        idx.insert(&[Value::from(1)], rid(2));
        let mut got = idx.lookup(&key(1));
        got.sort();
        assert_eq!(got, vec![rid(1), rid(2)]);
    }
}
