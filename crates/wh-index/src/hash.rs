//! Hash index: equality lookups over one or more columns.

use crate::key::IndexKey;
use crate::IndexError;
use std::collections::HashMap;
use std::sync::RwLock;
use wh_storage::Rid;
use wh_types::Value;

/// A hash index mapping composite keys to RIDs.
///
/// Thread-safe; mutations take a write lock, lookups a read lock. This mirrors
/// index latching in a conventional DBMS — the paper's layer above never holds
/// an index latch across user-visible operations.
#[derive(Debug)]
pub struct HashIndex {
    columns: Vec<usize>,
    unique: bool,
    map: RwLock<HashMap<IndexKey, Vec<Rid>>>,
}

impl HashIndex {
    /// A non-unique index over the given column positions.
    pub fn new(columns: Vec<usize>) -> Self {
        HashIndex {
            columns,
            unique: false,
            map: RwLock::new(HashMap::new()),
        }
    }

    /// A unique index over the given column positions.
    pub fn unique(columns: Vec<usize>) -> Self {
        HashIndex {
            columns,
            unique: true,
            map: RwLock::new(HashMap::new()),
        }
    }

    /// The indexed column positions.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Whether this index enforces key uniqueness.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Index `row` (stored at `rid`). For unique indexes, a duplicate key
    /// fails with [`IndexError::KeyConflict`] carrying the incumbent RID.
    pub fn insert(&self, row: &[Value], rid: Rid) -> Result<(), IndexError> {
        let key = IndexKey::project(row, &self.columns);
        let mut map = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = map.entry(key).or_default();
        if self.unique {
            if let Some(&existing) = entry.first() {
                return Err(IndexError::KeyConflict(existing));
            }
        }
        entry.push(rid);
        wh_obs::counter!("index.hash.inserts").inc();
        Ok(())
    }

    /// Remove the entry for (`row`, `rid`).
    pub fn remove(&self, row: &[Value], rid: Rid) -> Result<(), IndexError> {
        let key = IndexKey::project(row, &self.columns);
        let mut map = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(entry) = map.get_mut(&key) else {
            return Err(IndexError::MissingEntry);
        };
        let Some(pos) = entry.iter().position(|&r| r == rid) else {
            return Err(IndexError::MissingEntry);
        };
        entry.swap_remove(pos);
        if entry.is_empty() {
            map.remove(&key);
        }
        wh_obs::counter!("index.hash.removes").inc();
        Ok(())
    }

    /// All RIDs under `key`.
    pub fn lookup(&self, key: &IndexKey) -> Vec<Rid> {
        wh_obs::counter!("index.hash.lookups").inc();
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// The unique RID under `key`, if any (meaningful for unique indexes).
    pub fn get(&self, key: &IndexKey) -> Option<Rid> {
        self.map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .and_then(|v| v.first().copied())
    }

    /// Look up by projecting the key columns out of `row`.
    pub fn lookup_row(&self, row: &[Value]) -> Vec<Rid> {
        self.lookup(&IndexKey::project(row, &self.columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> Rid {
        Rid::new(n, 0)
    }

    #[test]
    fn non_unique_allows_duplicates() {
        let idx = HashIndex::new(vec![0]);
        let row = vec![Value::from("CA")];
        idx.insert(&row, rid(1)).unwrap();
        idx.insert(&row, rid(2)).unwrap();
        let mut rids = idx.lookup_row(&row);
        rids.sort();
        assert_eq!(rids, vec![rid(1), rid(2)]);
    }

    #[test]
    fn unique_rejects_duplicates_with_incumbent() {
        let idx = HashIndex::unique(vec![0]);
        let row = vec![Value::from("CA")];
        idx.insert(&row, rid(1)).unwrap();
        assert_eq!(
            idx.insert(&row, rid(2)),
            Err(IndexError::KeyConflict(rid(1)))
        );
    }

    #[test]
    fn remove_then_reinsert() {
        let idx = HashIndex::unique(vec![0]);
        let row = vec![Value::from("CA")];
        idx.insert(&row, rid(1)).unwrap();
        idx.remove(&row, rid(1)).unwrap();
        assert_eq!(idx.key_count(), 0);
        idx.insert(&row, rid(2)).unwrap();
        assert_eq!(idx.get(&IndexKey::project(&row, &[0])), Some(rid(2)));
    }

    #[test]
    fn remove_missing_errors() {
        let idx = HashIndex::new(vec![0]);
        let row = vec![Value::from("CA")];
        assert_eq!(idx.remove(&row, rid(1)), Err(IndexError::MissingEntry));
        idx.insert(&row, rid(1)).unwrap();
        assert_eq!(idx.remove(&row, rid(9)), Err(IndexError::MissingEntry));
    }

    #[test]
    fn composite_keys() {
        let idx = HashIndex::unique(vec![0, 1]);
        idx.insert(&[Value::from("CA"), Value::from(1)], rid(1))
            .unwrap();
        idx.insert(&[Value::from("CA"), Value::from(2)], rid(2))
            .unwrap();
        assert_eq!(
            idx.get(&IndexKey(vec![Value::from("CA"), Value::from(2)])),
            Some(rid(2))
        );
    }
}
