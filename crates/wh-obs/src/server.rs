//! A dependency-free live introspection server.
//!
//! One background thread, a std [`TcpListener`], HTTP/1.0 with
//! `Connection: close` — enough for `curl` and a Prometheus scraper, zero
//! dependencies per the workspace policy. Endpoints:
//!
//! | path           | body                                                |
//! |----------------|-----------------------------------------------------|
//! | `/metrics`     | Prometheus text exposition of the registry snapshot |
//! | `/snapshot`    | the same snapshot as JSON (counters/gauges/…)       |
//! | `/health`      | sliding-window SLO verdict (503 while degraded)     |
//! | `/traces`      | recent trace ids with root span name + event count  |
//! | `/traces/<id>` | every event of one trace, in causal (seq) order     |
//!
//! The server only *reads* process-global state, so it compiles and runs
//! identically with observability disabled (everything is just empty).
//! [`IntrospectionServer::start`] binds (port 0 picks a free port),
//! [`IntrospectionServer::stop`] joins the accept loop; dropping the
//! handle stops it too.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running introspection server.
#[derive(Debug)]
pub struct IntrospectionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectionServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving in a
    /// background thread.
    pub fn start(addr: &str) -> std::io::Result<IntrospectionServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("wh-introspect".into())
            .spawn(move || accept_loop(&listener, &stop_flag))?;
        Ok(IntrospectionServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release); // ordering: server-stop Release — pairs with the Acquire poll in the accept loop; everything before stop() happens-before loop exit
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    // ordering: server-stop Acquire — pairs with the Release store in stop(); see everything the stopper published
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                crate::counter!("obs.server.requests").inc();
                serve_connection(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(mut stream: TcpStream) {
    stream.set_nonblocking(false).ok();
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the end of the request head (or the buffer fills; a bare
    // "GET /path HTTP/1.0" fits many times over).
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return;
    };
    let (status, content_type, body) = if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else {
        route(path)
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let response = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes()).ok();
    stream.flush().ok();
}

fn route(path: &str) -> (u16, &'static str, String) {
    // Scrapers commonly append query strings (GET /metrics?format=text);
    // match on the path component only.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            crate::registry::global().snapshot().to_prometheus(),
        ),
        "/snapshot" => (
            200,
            "application/json",
            crate::registry::global().snapshot().to_json(),
        ),
        "/health" => {
            let (ok, body) = crate::slo::health();
            (if ok { 200 } else { 503 }, "application/json", body)
        }
        "/traces" => (200, "application/json", traces_index()),
        p => {
            if let Some(id) = p
                .strip_prefix("/traces/")
                .and_then(|id| id.parse::<u64>().ok())
            {
                let events = crate::trace::trace_events(id);
                if events.is_empty() {
                    (
                        404,
                        "application/json",
                        "{\"error\":\"no such trace\"}\n".to_string(),
                    )
                } else {
                    (200, "application/json", trace_json(&events))
                }
            } else {
                (404, "text/plain", "not found\n".to_string())
            }
        }
    }
}

fn traces_index() -> String {
    let mut out = String::from("[");
    for (i, (id, root, events)) in crate::trace::recent_traces().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"trace\": {id}, \"root\": \"{}\", \"events\": {events}}}",
            crate::encode::json_escape(root)
        ));
    }
    out.push_str("\n]\n");
    out
}

fn trace_json(events: &[crate::trace::TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "\n  {{\"seq\": {}, \"trace\": {}, \"span\": {}, \"parent\": {}, ",
                "\"name\": \"{}\", \"kind\": \"{}\", \"thread\": {}, ",
                "\"ts_ns\": {}, \"arg\": {}}}"
            ),
            e.seq,
            e.trace_id,
            e.span_id,
            e.parent_id,
            crate::encode::json_escape(e.name),
            e.kind.label(),
            e.thread,
            e.ts_ns,
            e.arg,
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_all_endpoints() {
        let server = IntrospectionServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        crate::counter!("obs.test.server_counter").inc();
        let (status, body) = get(addr, "/snapshot");
        assert_eq!(status, 200);
        assert!(body.contains("\"counters\""));

        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        if crate::is_enabled() {
            assert!(metrics.contains("obs_test_server_counter_total"));
        }

        let (status, health) = get(addr, "/health");
        assert!(status == 200 || status == 503);
        assert!(health.contains("\"status\""));

        let (status, _) = get(addr, "/traces");
        assert_eq!(status, 200);

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        // Query strings from probes/scrapers must not 404 the endpoint.
        let (status, metrics) = get(addr, "/metrics?format=text");
        assert_eq!(status, 200);
        if crate::is_enabled() {
            assert!(metrics.contains("obs_test_server_counter_total"));
        }
        let (status, _) = get(addr, "/health?verbose=1");
        assert!(status == 200 || status == 503);

        if crate::is_enabled() {
            let ctx = crate::trace::open_ctx(crate::trace::intern("obs.test.server_trace"), 0, 0);
            crate::trace::close_ctx(ctx, 0);
            let (status, body) = get(addr, &format!("/traces/{}", ctx.trace));
            assert_eq!(status, 200);
            assert!(body.contains("obs.test.server_trace"));
            let (status, _) = get(addr, "/traces/999999999");
            assert_eq!(status, 404);
        }

        server.stop();
    }
}
