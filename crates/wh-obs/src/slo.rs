//! Sliding-window SLO gauges feeding `/health` and the flight-recorder
//! anomaly triggers.
//!
//! Counters are cumulative-forever; SLOs are about *now*. A
//! [`SlidingWindow`] keeps per-second buckets in a fixed circular array
//! (no allocation, no locks: each bucket is claimed for the current
//! second with a CAS and then accumulated with relaxed adds), so
//! `expirations in the last 10 s` or `mean read latency over the last
//! minute` is one pass over 64 buckets.
//!
//! Four process-global windows track the signals the paper's trade makes
//! interesting: `SessionExpired` verdicts (§4.1), read latency, reader
//! staleness in versions, and maintenance commits. [`note_expiration`]
//! doubles as the *expire storm* anomaly trigger: when the 10-second
//! expiration count crosses `WH_SLO_EXPIRE_STORM` (default 500) it asks
//! the flight recorder to dump.

use std::sync::atomic::AtomicU64;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;

/// Circular per-second buckets retained; windows wider than this clamp.
pub const WINDOW_BUCKETS: usize = 64;

/// Window (seconds) used by the expire-storm trigger and `/health`.
pub const STORM_WINDOW_SECS: u64 = 10;

/// Default `WH_SLO_EXPIRE_STORM` threshold (expirations per 10 s).
pub const DEFAULT_STORM_THRESHOLD: u64 = 500;

// The accumulators are only read with `enabled` on; in disabled builds the
// struct exists solely so the public type is feature-independent.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
struct Bucket {
    /// Which absolute second this bucket currently holds (`u64::MAX` =
    /// never used).
    second: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free sliding window of per-second `(count, sum)` accumulators.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub struct SlidingWindow {
    buckets: [Bucket; WINDOW_BUCKETS],
}

impl std::fmt::Debug for SlidingWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlidingWindow").finish_non_exhaustive()
    }
}

impl Default for SlidingWindow {
    fn default() -> SlidingWindow {
        SlidingWindow::new()
    }
}

impl SlidingWindow {
    pub const fn new() -> SlidingWindow {
        SlidingWindow {
            buckets: [const {
                Bucket {
                    second: AtomicU64::new(u64::MAX),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }
            }; WINDOW_BUCKETS],
        }
    }

    /// Record one observation now. No-op without the `enabled` feature.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "enabled")]
        {
            let sec = crate::span::process_epoch_ns() / 1_000_000_000;
            let b = &self.buckets[(sec % WINDOW_BUCKETS as u64) as usize];
            let cur = b.second.load(Ordering::Acquire); // ordering: slo-bucket Acquire — pairs with the CAS below so a reclaimed bucket's zeroed accumulators are seen before new adds land
            if cur != sec {
                // Reclaim the bucket for the current second. The CAS loser
                // skips the reset and just accumulates; a handful of
                // events from the reset race may be dropped, which is fine
                // for an SLO estimate.
                if b.second
                    .compare_exchange(cur, sec, Ordering::AcqRel, Ordering::Relaxed) // ordering: slo-bucket AcqRel/Relaxed — exactly one thread wins the per-second reclaim and resets the accumulators
                    .is_ok()
                {
                    b.count.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset by the unique CAS winner; approximate loss at the boundary is acceptable
                    b.sum.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset by the unique CAS winner; approximate loss at the boundary is acceptable
                } else if b.second.load(Ordering::Relaxed) != sec {
                    // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
                    return; // raced with a different second; drop the sample
                }
            }
            b.count.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
            b.sum.fetch_add(value, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        }
        #[cfg(not(feature = "enabled"))]
        let _ = value;
    }

    /// `(count, sum)` over the trailing `window_secs` seconds (inclusive
    /// of the current second). Always `(0, 0)` when disabled.
    pub fn totals(&self, window_secs: u64) -> (u64, u64) {
        #[cfg(feature = "enabled")]
        {
            let now = crate::span::process_epoch_ns() / 1_000_000_000;
            let window = window_secs.clamp(1, WINDOW_BUCKETS as u64 - 1);
            let oldest = now.saturating_sub(window - 1);
            let mut count = 0u64;
            let mut sum = 0u64;
            for b in &self.buckets {
                let sec = b.second.load(Ordering::Acquire); // ordering: slo-bucket Acquire — see the bucket’s current second before reading its accumulators
                if sec >= oldest && sec <= now {
                    count += b.count.load(Ordering::Relaxed); // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
                    sum += b.sum.load(Ordering::Relaxed); // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
                }
            }
            (count, sum)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = window_secs;
            (0, 0)
        }
    }

    /// Events per second over the trailing window.
    pub fn rate_per_sec(&self, window_secs: u64) -> f64 {
        let (count, _) = self.totals(window_secs);
        count as f64 / window_secs.max(1) as f64
    }

    /// Mean observed value over the trailing window (0.0 if empty).
    pub fn mean(&self, window_secs: u64) -> f64 {
        let (count, sum) = self.totals(window_secs);
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

static EXPIRATIONS: SlidingWindow = SlidingWindow::new();
static READ_LATENCY_NS: SlidingWindow = SlidingWindow::new();
static STALENESS_VNS: SlidingWindow = SlidingWindow::new();
static COMMITS: SlidingWindow = SlidingWindow::new();
static REPAIRS: SlidingWindow = SlidingWindow::new();

/// §4.1 `SessionExpired` verdicts, per second.
pub fn expirations() -> &'static SlidingWindow {
    &EXPIRATIONS
}

/// End-to-end reader operation latency (ns).
pub fn read_latency_ns() -> &'static SlidingWindow {
    &READ_LATENCY_NS
}

/// Reader staleness at scan time (currentVN − sessionVN).
pub fn staleness_vns() -> &'static SlidingWindow {
    &STALENESS_VNS
}

/// Maintenance transaction commits, per second.
pub fn commits() -> &'static SlidingWindow {
    &COMMITS
}

/// Expired sessions recovered by delta repair (vs restarted), per second.
pub fn repairs() -> &'static SlidingWindow {
    &REPAIRS
}

fn storm_threshold() -> u64 {
    static THRESHOLD: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("WH_SLO_EXPIRE_STORM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_STORM_THRESHOLD)
    })
}

/// Whether the expire-storm condition currently holds.
pub fn expire_storm_active() -> bool {
    EXPIRATIONS.totals(STORM_WINDOW_SECS).0 >= storm_threshold()
}

/// Feed one §4.1 expiration verdict; fires the `expire_storm` flight-
/// recorder trigger when the 10-second rate crosses the threshold.
pub fn note_expiration() {
    EXPIRATIONS.record(1);
    let (count, _) = EXPIRATIONS.totals(STORM_WINDOW_SECS);
    if count >= storm_threshold() {
        crate::recorder::trigger(
            "expire_storm",
            &format!(
                "{count} SessionExpired verdicts in the last {STORM_WINDOW_SECS}s (threshold {})",
                storm_threshold()
            ),
        );
    }
}

/// Feed one completed reader operation's latency.
pub fn note_read_latency(ns: u64) {
    READ_LATENCY_NS.record(ns);
}

/// Feed one reader staleness observation (versions behind current).
pub fn note_staleness(vns: u64) {
    STALENESS_VNS.record(vns);
}

/// Feed one maintenance commit.
pub fn note_commit() {
    COMMITS.record(1);
}

/// Feed one repaired (delta-patched, not restarted) session recovery.
pub fn note_repair() {
    REPAIRS.record(1);
}

/// `/health` payload: `(healthy, json_body)`. Degraded (HTTP 503) while
/// an expire storm is active.
pub fn health() -> (bool, String) {
    let storm = expire_storm_active();
    let (exp_count, _) = EXPIRATIONS.totals(STORM_WINDOW_SECS);
    let (read_count, _) = READ_LATENCY_NS.totals(STORM_WINDOW_SECS);
    let (repair_count, _) = REPAIRS.totals(STORM_WINDOW_SECS);
    let body = format!(
        concat!(
            "{{\n",
            "  \"status\": \"{}\",\n",
            "  \"enabled\": {},\n",
            "  \"window_secs\": {},\n",
            "  \"expirations\": {},\n",
            "  \"expire_storm_threshold\": {},\n",
            "  \"repairs\": {},\n",
            "  \"reads\": {},\n",
            "  \"read_latency_mean_us\": {:.1},\n",
            "  \"staleness_mean_vns\": {:.2},\n",
            "  \"commits_per_sec\": {:.2},\n",
            "  \"trace_events\": {}\n",
            "}}\n"
        ),
        if storm { "degraded" } else { "ok" },
        crate::is_enabled(),
        STORM_WINDOW_SECS,
        exp_count,
        storm_threshold(),
        repair_count,
        read_count,
        READ_LATENCY_NS.mean(STORM_WINDOW_SECS) / 1_000.0,
        STALENESS_VNS.mean(STORM_WINDOW_SECS),
        COMMITS.rate_per_sec(STORM_WINDOW_SECS),
        crate::trace::events_recorded(),
    );
    (!storm, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_accumulates_current_second() {
        let w = SlidingWindow::new();
        w.record(10);
        w.record(20);
        let (count, sum) = w.totals(5);
        if crate::is_enabled() {
            assert_eq!(count, 2);
            assert_eq!(sum, 30);
            assert!((w.mean(5) - 15.0).abs() < 1e-9);
        } else {
            assert_eq!((count, sum), (0, 0));
        }
    }

    #[test]
    fn health_reports_status() {
        let (ok, body) = health();
        assert!(body.contains("\"status\""));
        assert!(body.contains("\"expirations\""));
        // No storm has been provoked in this process.
        let _ = ok;
    }
}
