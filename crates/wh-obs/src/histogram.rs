//! Fixed-bucket log-scale histograms.
//!
//! Values land in bucket `bit_length(v)` — bucket 0 holds only zero, bucket
//! `i` holds `[2^(i-1), 2^i - 1]` — clamped to [`BUCKETS`]`- 1` so a u64
//! nanosecond or byte count always fits. Power-of-two buckets keep
//! recording branch-free (one `leading_zeros` + one relaxed `fetch_add`)
//! and give ~2× resolution everywhere on the scale, which is plenty for
//! latency work where the interesting differences are orders of magnitude.
//!
//! [`HistogramSnapshot`] is plain data: element-wise mergeable (associative
//! and commutative, so per-thread or per-partition snapshots can be folded
//! in any order) and subtractable ([`HistogramSnapshot::since`]) for
//! interval reporting, mirroring `IoSnapshot::since` in wh-storage.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log-scale buckets. Bucket `i < BUCKETS-1` has upper bound
/// `2^i - 1`; the final bucket is unbounded.
pub const BUCKETS: usize = 64;

/// Index of the bucket a value lands in: its bit length, clamped.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent log-scale histogram. Recording is one relaxed `fetch_add`
/// into the bucket plus sum/min/max maintenance; no locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub const fn new() -> Histogram {
        // `[const { ... }; N]` array-of-atomics initialisation.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
            self.sum.fetch_add(v, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
            self.min.fetch_min(v, Ordering::Relaxed); // ordering: stat-counter Relaxed — monotone min/max cell; readers tolerate staleness
            self.max.fetch_max(v, Ordering::Relaxed); // ordering: stat-counter Relaxed — monotone min/max cell; readers tolerate staleness
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Record a `Duration` in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Freeze the current state into a mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed); // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            min: self.min.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            max: self.max.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        }
    }

    /// Zero every bucket (bench/report use).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        }
        self.sum.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.min.store(u64::MAX, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.max.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
    }
}

/// An immutable copy of a histogram's buckets, usable as a value type:
/// merge per-thread copies, subtract an earlier snapshot, query quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    pub const fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Element-wise merge. Associative and commutative, so snapshots from
    /// any partitioning of the workload fold to the same result.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (slot, b) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += b;
        }
        out.sum += other.sum;
        out.min = out.min.min(other.min);
        out.max = out.max.max(other.max);
        out
    }

    /// Observations recorded since `older` was taken (saturating, like
    /// `IoSnapshot::since`). `min`/`max` are lifetime extremes, not
    /// interval extremes — the buckets don't retain enough to recover
    /// interval min/max, so the newer snapshot's values are kept.
    pub fn since(&self, older: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (slot, b) in out.buckets.iter_mut().zip(older.buckets.iter()) {
            *slot = slot.saturating_sub(*b);
        }
        out.sum = out.sum.saturating_sub(older.sum);
        out
    }

    /// Upper bound of the bucket containing quantile `q` in [0, 1] — an
    /// over-estimate by at most 2×, which is the resolution of the scale.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // The true maximum caps the last occupied bucket's bound.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_caps_at_observed_max() {
        let h = Histogram::new();
        h.record(1000);
        let s = h.snapshot();
        if crate::is_enabled() {
            assert_eq!(s.quantile(0.5), 1000);
            assert_eq!(s.quantile(1.0), 1000);
        }
    }
}
