//! Causal tracing: lock-free, per-thread ring-buffered structured events
//! with trace/span IDs and parent links.
//!
//! The metric layer ([`crate::counter!`] and friends) answers "how much";
//! this module answers "in what order, caused by what". Every event
//! carries a `trace_id` (one reader session, one maintenance transaction,
//! one GC pass, …), a `span_id`, and a `parent_id` linking it to the
//! enclosing open span — so one `SessionExpired` can be read as the causal
//! story of *this* session racing *that* maintenance commit, which is
//! exactly the visibility the 2VNL staleness trade (Quass & Widom §3, §5)
//! needs at debugging time.
//!
//! Design:
//!
//! - **Per-thread rings, single-writer seqlock slots.** Each thread owns a
//!   fixed ring of 8-word slots ([`THREAD_RING_CAPACITY`]); only the
//!   owning thread ever writes a slot, so the write path is a handful of
//!   relaxed atomic stores guarded by a per-slot version word (odd =
//!   mid-write). Collectors ([`collect`]) read slots optimistically and
//!   discard torn reads — readers never block writers and writers never
//!   wait, mirroring the paper's readers-don't-block-maintenance stance.
//!   A ring whose thread exits is recycled to the next new thread through
//!   a free-list, so total ring memory is bounded by peak thread
//!   concurrency even when short-lived scan workers churn.
//! - **Ambient context.** A thread-local stack of `(trace, span)` pairs
//!   gives new spans their parent implicitly ([`enter`]); long-lived
//!   contexts that cross method calls (a session, a maintenance txn) hold
//!   an explicit [`TraceCtx`] and child spans attach with
//!   [`enter_under`], which also works across threads (parallel scan
//!   workers parent under the coordinating scan span).
//! - **Zero cost when disabled.** Without the `enabled` feature every
//!   function here is an empty inline body and [`TraceGuard`] is a ZST
//!   with no `Drop` impl; the macros still evaluate their arguments'
//!   side-effect-free literals only.
//!
//! Event names are interned to `u32` indices once per call site (the
//! [`crate::trace_name!`] macro caches the index in a per-site
//! `OnceLock`), so the hot path never hashes or compares strings.

use std::fmt;

/// Events retained per thread before the oldest is overwritten. The union
/// of all per-thread rings is the flight recorder's "recent history".
pub const THREAD_RING_CAPACITY: usize = 4096;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`parent_id` = enclosing open span, 0 for roots).
    SpanStart,
    /// A span closed (`arg` = duration in nanoseconds).
    SpanEnd,
    /// A point event attributed to the enclosing open span.
    Instant,
}

impl EventKind {
    /// Stable wire label used by the JSONL dump and `/traces/<id>`.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanStart => "start",
            EventKind::SpanEnd => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// One decoded trace event, as returned by [`collect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global allocation order (monotone across threads).
    pub seq: u64,
    /// The causal chain this event belongs to (0 = unattributed).
    pub trace_id: u64,
    /// This event's span (for `Instant`, the enclosing span).
    pub span_id: u64,
    /// The enclosing open span at emission time (0 = root / none).
    pub parent_id: u64,
    /// Interned event name (`layer.object.metric` convention).
    pub name: &'static str,
    pub kind: EventKind,
    /// Compact per-process thread id (shared with the span ring).
    pub thread: u32,
    /// Nanoseconds since the process observability epoch.
    pub ts_ns: u64,
    /// Kind-specific payload: duration for `SpanEnd`, caller data otherwise.
    pub arg: u64,
}

/// An explicit span context for spans that outlive one stack frame (a
/// reader session, a maintenance transaction) or must cross threads
/// (parallel scan workers). A zeroed ctx is inert: [`enter_under`] falls
/// back to ambient parenting and [`close_ctx`] is a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace: u64,
    pub span: u64,
    name_idx: u32,
}

impl TraceCtx {
    /// The inert context: no trace, no parent.
    pub const ZERO: TraceCtx = TraceCtx {
        trace: 0,
        span: 0,
        name_idx: 0,
    };

    /// True if this context carries a live trace.
    pub fn is_live(&self) -> bool {
        self.span != 0
    }
}

/// RAII guard for a span opened with [`enter`] / [`enter_under`] /
/// [`enter_root`]: emits the `SpanEnd` event (duration in `arg`) and pops
/// the ambient stack on drop. A ZST no-op without the `enabled` feature.
#[must_use = "a trace span measures the scope it is held for"]
pub struct TraceGuard {
    #[cfg(feature = "enabled")]
    trace: u64,
    #[cfg(feature = "enabled")]
    span: u64,
    #[cfg(feature = "enabled")]
    parent: u64,
    #[cfg(feature = "enabled")]
    name_idx: u32,
    #[cfg(feature = "enabled")]
    start_ns: u64,
    /// `!Send` marker (in both enabled and disabled builds, so code that
    /// compiles with tracing off cannot break with it on): a guard pops
    /// the ambient span stack of the thread that opened it, so dropping
    /// it on another thread would leave the origin thread's stack entry
    /// behind and silently re-parent all its later spans. Cross-thread
    /// spans go through [`TraceCtx`] + [`enter_under`] instead.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl fmt::Debug for TraceGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("TraceGuard");
        #[cfg(feature = "enabled")]
        d.field("trace", &self.trace).field("span", &self.span);
        d.finish_non_exhaustive()
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{EventKind, TraceCtx, TraceEvent, TraceGuard, THREAD_RING_CAPACITY};
    use std::cell::RefCell;
    use std::sync::atomic::{fence, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};

    /// Words per slot: version + 7 payload words
    /// (seq, trace, span, parent, meta, ts, arg).
    const WORDS: usize = 8;

    /// Trace/span id allocator. Starts at 1 so 0 means "none".
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    /// Global event sequence. Starts at 1 so a zeroed slot is never a
    /// valid event.
    static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

    /// Interned event names; an index is the position + 1 (0 = unknown).
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

    pub fn intern(name: &'static str) -> u32 {
        let mut names = NAMES.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(i) = names.iter().position(|n| *n == name) {
            return (i + 1) as u32;
        }
        names.push(name);
        names.len() as u32
    }

    fn name_of(idx: u32) -> &'static str {
        let names = NAMES.lock().unwrap_or_else(PoisonError::into_inner);
        if idx == 0 {
            return "?";
        }
        names.get(idx as usize - 1).copied().unwrap_or("?")
    }

    fn next_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed) // ordering: trace-seq Relaxed — sequence allocation; the slot/event payload is synchronized separately
    }

    /// One thread's event ring. Only the owning thread writes slots (and
    /// `head`); collectors on other threads read optimistically through
    /// the per-slot seqlock version word. The writer's compact thread id
    /// is packed into each event's meta word rather than stored here, so
    /// a ring recycled to a new thread (see [`FREE`]) keeps attributing
    /// its retained events to the thread that actually emitted them.
    struct ThreadRing {
        head: AtomicU64,
        slots: Box<[[AtomicU64; WORDS]]>,
    }

    impl ThreadRing {
        fn new() -> ThreadRing {
            ThreadRing {
                head: AtomicU64::new(0),
                slots: (0..THREAD_RING_CAPACITY)
                    .map(|_| [const { AtomicU64::new(0) }; WORDS])
                    .collect(),
            }
        }

        /// Owner-thread-only append (seqlock write protocol).
        fn write(&self, payload: [u64; WORDS - 1]) {
            let h = self.head.load(Ordering::Relaxed); // ordering: trace-ring-owner Relaxed — head is written only by this (owning) thread; collectors tolerate staleness
            let slot = &self.slots[(h % THREAD_RING_CAPACITY as u64) as usize];
            let v = slot[0].load(Ordering::Relaxed); // ordering: trace-ring-owner Relaxed — version word is written only by this thread; always even here
            slot[0].store(v + 1, Ordering::Relaxed); // ordering: trace-ring-owner Relaxed — odd marks mid-write; the release fence below orders it before the payload stores
            fence(Ordering::Release); // ordering: trace-ring Release fence — the odd version store above becomes visible before any payload store below
            for (w, val) in slot[1..].iter().zip(payload) {
                w.store(val, Ordering::Relaxed); // ordering: trace-ring-payload Relaxed — payload words; torn logical reads are rejected by the version re-check
            }
            slot[0].store(v + 2, Ordering::Release); // ordering: trace-ring Release — publishes the payload; a reader that acquires this even version sees all payload stores
            self.head.store(h + 1, Ordering::Relaxed); // ordering: trace-ring-owner Relaxed — owner-only bookkeeping; collectors only use it for wrap statistics
        }

        /// Optimistic cross-thread slot read; `None` for empty/torn slots.
        fn read_slot(&self, i: usize) -> Option<[u64; WORDS - 1]> {
            let slot = &self.slots[i];
            let v1 = slot[0].load(Ordering::Acquire); // ordering: trace-ring Acquire — payload loads below must not be reordered before this version check
            if v1 == 0 || v1 % 2 == 1 {
                return None;
            }
            let mut out = [0u64; WORDS - 1];
            for (o, w) in out.iter_mut().zip(&slot[1..]) {
                *o = w.load(Ordering::Relaxed); // ordering: trace-ring-payload Relaxed — payload loads; consistency is validated by the version re-check below
            }
            fence(Ordering::Acquire); // ordering: trace-ring Acquire fence — payload loads above complete before the version re-check below
            let v2 = slot[0].load(Ordering::Relaxed); // ordering: trace-ring-owner Relaxed — the fence above orders this re-check after the payload loads
            if v1 == v2 {
                Some(out)
            } else {
                None
            }
        }
    }

    /// Every live thread ring plus any awaiting reuse in [`FREE`]. A ring
    /// outlives its thread (so the flight recorder can still dump a
    /// finished worker's events, until a new thread recycles the ring),
    /// but the vector is bounded by the peak number of *concurrent*
    /// tracing threads — exited workers return their ring through the
    /// free-list instead of leaking a fresh ~256KB ring per short-lived
    /// scan worker.
    static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

    /// Rings whose owning thread has exited, ready to be adopted by the
    /// next new tracing thread. Retained events stay readable via
    /// [`RINGS`] while a ring waits here.
    static FREE: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

    /// Thread-local handle that returns the ring to [`FREE`] when the
    /// thread exits (TLS destructor), closing the reuse loop.
    struct RingHolder(Arc<ThreadRing>);

    impl Drop for RingHolder {
        fn drop(&mut self) {
            FREE.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&self.0));
        }
    }

    thread_local! {
        static RING: RingHolder = {
            let recycled = FREE
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            let ring = recycled.unwrap_or_else(|| {
                let ring = Arc::new(ThreadRing::new());
                RINGS
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Arc::clone(&ring));
                ring
            });
            RingHolder(ring)
        };
        /// Ambient (trace, span) stack: innermost open span last.
        static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    }

    /// Meta word layout: name index in bits 0..32, event kind in bits
    /// 32..40, compact thread id in bits 40..64 (24 bits — ids are
    /// assigned densely from 0, so even a thread-churny soak stays far
    /// below the mask).
    const THREAD_SHIFT: u32 = 40;
    const THREAD_MASK: u64 = 0xff_ffff;

    fn emit(kind: EventKind, name_idx: u32, trace: u64, span: u64, parent: u64, arg: u64) {
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed); // ordering: trace-seq Relaxed — sequence allocation; the slot/event payload is synchronized separately
        let ts = crate::span::process_epoch_ns();
        let thread = u64::from(crate::span::process_thread_id()) & THREAD_MASK;
        let meta = u64::from(name_idx) | ((kind as u64) << 32) | (thread << THREAD_SHIFT);
        // try_with: events emitted while this thread's TLS is being torn
        // down (after the RingHolder destructor ran) are dropped rather
        // than reviving the ring or panicking.
        let _ = RING.try_with(|ring| ring.0.write([seq, trace, span, parent, meta, ts, arg]));
    }

    fn ambient() -> Option<(u64, u64)> {
        STACK.with(|s| s.borrow().last().copied())
    }

    pub fn current() -> TraceCtx {
        ambient().map_or(TraceCtx::ZERO, |(trace, span)| TraceCtx {
            trace,
            span,
            name_idx: 0,
        })
    }

    fn open_span(name_idx: u32, trace: u64, parent: u64, arg: u64) -> TraceGuard {
        let span = next_id();
        emit(EventKind::SpanStart, name_idx, trace, span, parent, arg);
        STACK.with(|s| s.borrow_mut().push((trace, span)));
        TraceGuard {
            trace,
            span,
            parent,
            name_idx,
            start_ns: crate::span::process_epoch_ns(),
            _not_send: std::marker::PhantomData,
        }
    }

    pub fn enter(name_idx: u32) -> TraceGuard {
        let (trace, parent) = ambient().map_or_else(|| (next_id(), 0), |(t, s)| (t, s));
        open_span(name_idx, trace, parent, 0)
    }

    pub fn enter_root(name_idx: u32, trace_id: u64, arg: u64) -> TraceGuard {
        let trace = if trace_id == 0 { next_id() } else { trace_id };
        open_span(name_idx, trace, 0, arg)
    }

    pub fn enter_under(name_idx: u32, ctx: TraceCtx) -> TraceGuard {
        if ctx.is_live() {
            open_span(name_idx, ctx.trace, ctx.span, 0)
        } else {
            enter(name_idx)
        }
    }

    pub fn instant(name_idx: u32, arg: u64) {
        let (trace, parent) = ambient().unwrap_or((0, 0));
        emit(EventKind::Instant, name_idx, trace, parent, parent, arg);
    }

    pub fn open_ctx(name_idx: u32, trace_id: u64, arg: u64) -> TraceCtx {
        let trace = if trace_id == 0 { next_id() } else { trace_id };
        let span = next_id();
        emit(EventKind::SpanStart, name_idx, trace, span, 0, arg);
        TraceCtx {
            trace,
            span,
            name_idx,
        }
    }

    pub fn close_ctx(ctx: TraceCtx, arg: u64) {
        if ctx.is_live() {
            emit(
                EventKind::SpanEnd,
                ctx.name_idx,
                ctx.trace,
                ctx.span,
                0,
                arg,
            );
        }
    }

    pub fn drop_guard(g: &TraceGuard) {
        let end = crate::span::process_epoch_ns();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(_, sp)| sp == g.span) {
                stack.truncate(pos);
            }
        });
        emit(
            EventKind::SpanEnd,
            g.name_idx,
            g.trace,
            g.span,
            g.parent,
            end.saturating_sub(g.start_ns),
        );
    }

    fn decode(w: [u64; WORDS - 1]) -> TraceEvent {
        let [seq, trace_id, span_id, parent_id, meta, ts_ns, arg] = w;
        let kind = match (meta >> 32) & 0xff {
            0 => EventKind::SpanStart,
            1 => EventKind::SpanEnd,
            _ => EventKind::Instant,
        };
        TraceEvent {
            seq,
            trace_id,
            span_id,
            parent_id,
            name: name_of((meta & 0xffff_ffff) as u32),
            kind,
            thread: ((meta >> THREAD_SHIFT) & THREAD_MASK) as u32,
            ts_ns,
            arg,
        }
    }

    pub fn collect() -> Vec<TraceEvent> {
        let rings: Vec<Arc<ThreadRing>> = RINGS
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(Arc::clone)
            .collect();
        let mut out = Vec::new();
        for ring in rings {
            for i in 0..THREAD_RING_CAPACITY {
                if let Some(w) = ring.read_slot(i) {
                    out.push(decode(w));
                }
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Rings allocated so far — bounded by the peak number of concurrent
    /// tracing threads, not by how many threads have ever traced.
    pub fn ring_count() -> usize {
        RINGS.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    pub fn events_recorded() -> u64 {
        NEXT_SEQ.load(Ordering::Relaxed) - 1 // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
    }

    pub fn any_ring_wrapped() -> bool {
        // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        RINGS
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .any(|r| r.head.load(Ordering::Relaxed) > THREAD_RING_CAPACITY as u64)
    }

    /// Clear every ring. Quiescent-use only (like `SpanRing::reset`):
    /// callers must ensure no thread is concurrently emitting events.
    pub fn reset() {
        let rings = RINGS.lock().unwrap_or_else(PoisonError::into_inner);
        for ring in rings.iter() {
            for slot in &*ring.slots {
                for w in slot {
                    w.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
                }
            }
            ring.head.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        }
    }
}

#[cfg(feature = "enabled")]
pub use imp::{
    any_ring_wrapped, close_ctx, collect, current, enter, enter_root, enter_under, events_recorded,
    instant, intern, open_ctx, reset, ring_count,
};

#[cfg(feature = "enabled")]
impl Drop for TraceGuard {
    fn drop(&mut self) {
        imp::drop_guard(self);
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::{TraceCtx, TraceEvent, TraceGuard};

    #[inline]
    pub fn intern(_name: &'static str) -> u32 {
        0
    }
    #[inline]
    pub fn enter(_name_idx: u32) -> TraceGuard {
        TraceGuard {
            _not_send: std::marker::PhantomData,
        }
    }
    #[inline]
    pub fn enter_root(_name_idx: u32, _trace_id: u64, _arg: u64) -> TraceGuard {
        TraceGuard {
            _not_send: std::marker::PhantomData,
        }
    }
    #[inline]
    pub fn enter_under(_name_idx: u32, _ctx: TraceCtx) -> TraceGuard {
        TraceGuard {
            _not_send: std::marker::PhantomData,
        }
    }
    #[inline]
    pub fn instant(_name_idx: u32, _arg: u64) {}
    #[inline]
    pub fn open_ctx(_name_idx: u32, _trace_id: u64, _arg: u64) -> TraceCtx {
        TraceCtx::ZERO
    }
    #[inline]
    pub fn close_ctx(_ctx: TraceCtx, _arg: u64) {}
    #[inline]
    pub fn current() -> TraceCtx {
        TraceCtx::ZERO
    }
    #[inline]
    pub fn collect() -> Vec<TraceEvent> {
        Vec::new()
    }
    #[inline]
    pub fn events_recorded() -> u64 {
        0
    }
    #[inline]
    pub fn any_ring_wrapped() -> bool {
        false
    }
    #[inline]
    pub fn ring_count() -> usize {
        0
    }
    #[inline]
    pub fn reset() {}
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    any_ring_wrapped, close_ctx, collect, current, enter, enter_root, enter_under, events_recorded,
    instant, intern, open_ctx, reset, ring_count,
};

/// Events belonging to one trace, in `seq` order.
pub fn trace_events(trace_id: u64) -> Vec<TraceEvent> {
    collect()
        .into_iter()
        .filter(|e| e.trace_id == trace_id)
        .collect()
}

/// Recent trace ids with their root span name and event count, newest
/// last. Drives the `/traces` index endpoint.
pub fn recent_traces() -> Vec<(u64, &'static str, usize)> {
    let mut order: Vec<u64> = Vec::new();
    let mut roots: std::collections::BTreeMap<u64, (&'static str, usize)> =
        std::collections::BTreeMap::new();
    for e in collect() {
        if e.trace_id == 0 {
            continue;
        }
        let entry = roots.entry(e.trace_id).or_insert_with(|| {
            order.push(e.trace_id);
            ("?", 0)
        });
        entry.1 += 1;
        if e.parent_id == 0 && matches!(e.kind, EventKind::SpanStart) {
            entry.0 = e.name;
        }
    }
    order
        .into_iter()
        .filter_map(|id| roots.get(&id).map(|&(name, n)| (id, name, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_build_is_inert() {
        if crate::is_enabled() {
            return;
        }
        let g = enter(intern("obs.test.noop"));
        drop(g);
        assert!(collect().is_empty());
        assert_eq!(events_recorded(), 0);
    }

    #[test]
    fn spans_nest_and_parent_links_resolve() {
        if !crate::is_enabled() {
            return;
        }
        let outer = enter_root(intern("obs.test.outer"), 0, 7);
        let outer_ctx = current();
        {
            let _inner = enter(intern("obs.test.inner"));
            instant(intern("obs.test.tick"), 42);
        }
        drop(outer);
        let events: Vec<TraceEvent> = collect()
            .into_iter()
            .filter(|e| e.trace_id == outer_ctx.trace)
            .collect();
        assert_eq!(events.len(), 5, "{events:#?}");
        let starts: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart)
            .collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0].name, "obs.test.outer");
        assert_eq!(starts[0].parent_id, 0);
        assert_eq!(starts[0].arg, 7);
        assert_eq!(starts[1].name, "obs.test.inner");
        assert_eq!(starts[1].parent_id, starts[0].span_id);
        let tick = events.iter().find(|e| e.name == "obs.test.tick").unwrap();
        assert_eq!(tick.kind, EventKind::Instant);
        assert_eq!(tick.parent_id, starts[1].span_id);
        assert_eq!(tick.arg, 42);
    }

    #[test]
    fn explicit_ctx_crosses_threads() {
        if !crate::is_enabled() {
            return;
        }
        let ctx = open_ctx(intern("obs.test.session"), 0, 0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = enter_under(intern("obs.test.worker"), ctx);
            });
        });
        close_ctx(ctx, 0);
        let events = trace_events(ctx.trace);
        let worker = events
            .iter()
            .find(|e| e.name == "obs.test.worker" && e.kind == EventKind::SpanStart)
            .unwrap();
        assert_eq!(worker.parent_id, ctx.span);
        assert!(events
            .iter()
            .any(|e| e.name == "obs.test.session" && e.kind == EventKind::SpanEnd));
    }

    #[test]
    fn interning_is_idempotent() {
        let a = intern("obs.test.intern");
        let b = intern("obs.test.intern");
        assert_eq!(a, b);
    }

    /// Short-lived threads must recycle rings through the free-list, not
    /// allocate a fresh ~256KB ring each (the per-call scan workers in
    /// `wh-storage` would otherwise leak one per parallel scan), and a
    /// recycled ring must keep attributing events to the thread that
    /// actually emitted them.
    #[test]
    fn exited_threads_recycle_rings() {
        if !crate::is_enabled() {
            return;
        }
        let name = intern("obs.test.recycle");
        // Warm up: ensure this thread's ring (and any test-harness
        // siblings') are already counted.
        instant(name, 0);
        let before = ring_count();
        let rounds = 32;
        for i in 0..rounds {
            std::thread::spawn(move || instant(name, 1000 + i))
                .join()
                .expect("recycle worker panicked");
        }
        let after = ring_count();
        // Sequential spawn+join: each worker's TLS destructor returns its
        // ring before the next spawns, so the loop itself needs at most
        // one new ring. Concurrent harness tests may claim a few more;
        // without recycling the growth would be the full `rounds`.
        assert!(
            after <= before + rounds as usize / 4,
            "rings grew {before} -> {after} over {rounds} sequential threads"
        );
        // Per-event thread ids survive recycling: every worker's event is
        // attributed to a distinct thread even when they shared one ring.
        let args: std::collections::BTreeMap<u64, u32> = collect()
            .into_iter()
            .filter(|e| e.name == "obs.test.recycle" && e.arg >= 1000)
            .map(|e| (e.arg, e.thread))
            .collect();
        let threads: std::collections::BTreeSet<u32> = args.values().copied().collect();
        assert_eq!(args.len(), rounds as usize);
        assert_eq!(threads.len(), rounds as usize, "{args:?}");
    }
}
