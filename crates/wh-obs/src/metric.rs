//! Scalar metrics: monotonically increasing [`Counter`]s and last-value
//! [`Gauge`]s. Both are a single relaxed atomic per operation when the
//! `enabled` feature is on, and empty inline bodies when it is off.
//!
//! The structs keep their atomic fields in both builds so the registry and
//! encoders need no conditional types; only the *recording* methods are
//! feature-gated, which is where the per-operation cost lives.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter (e.g.
/// `vnl.maintenance.arm.update_in_place`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` occurrences.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Record one occurrence.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total (0 in disabled builds).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
    }
}

/// A last-value instrument that can move both ways (e.g.
/// `vnl.reader.staleness` = currentVN − sessionVN, or
/// `storage.heap.free_pages`).
///
/// Alongside the live value it tracks the high-water mark seen since the
/// last reset, so a snapshot taken after a workload still shows the peak
/// even if the gauge has since relaxed back to zero.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
            max: AtomicI64::new(i64::MIN),
        }
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "enabled")]
        {
            self.value.store(v, Ordering::Relaxed); // ordering: stat-counter Relaxed — metric cell publishes no other data
            self.max.fetch_max(v, Ordering::Relaxed); // ordering: stat-counter Relaxed — monotone min/max cell; readers tolerate staleness
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Adjust the gauge by `delta` (possibly negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(feature = "enabled")]
        {
            let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta; // ordering: stat-counter Relaxed — independent event counter; read only for reporting
            self.max.fetch_max(now, Ordering::Relaxed); // ordering: stat-counter Relaxed — monotone min/max cell; readers tolerate staleness
        }
        #[cfg(not(feature = "enabled"))]
        let _ = delta;
    }

    /// Current value (0 in disabled builds).
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed) // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
    }

    /// Highest value observed since creation/reset; 0 if never set.
    #[inline]
    pub fn high_water(&self) -> i64 {
        // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        match self.max.load(Ordering::Relaxed) {
            i64::MIN => 0,
            m => m,
        }
    }

    /// Reset value and high-water mark to the initial state.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.max.store(i64::MIN, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
    }
}

impl Counter {
    /// Reset the counter to zero (bench/report use; metrics are normally
    /// read via snapshot deltas instead).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        if crate::is_enabled() {
            assert_eq!(c.get(), 5);
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let g = Gauge::new();
        g.set(3);
        g.add(-5);
        if crate::is_enabled() {
            assert_eq!(g.get(), -2);
            assert_eq!(g.high_water(), 3);
        }
        g.reset();
        assert_eq!(g.get(), 0);
        assert_eq!(g.high_water(), 0);
    }
}
