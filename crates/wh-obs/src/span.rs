//! A bounded ring-buffer span recorder.
//!
//! [`span("vnl.maintenance.commit")`](span) returns a [`SpanGuard`]; when
//! the guard drops, a [`SpanRecord`] with the span's name, compact thread
//! id, nesting depth, start offset, and duration is written into a
//! fixed-capacity ring, overwriting the oldest entry on wraparound. The
//! ring gives "what was the system doing just now" forensics — the last
//! [`RING_CAPACITY`] completed spans — without unbounded memory or any
//! allocation on the recording path.
//!
//! Nesting depth comes from a thread-local counter bumped while a guard is
//! live, so `storage.page.read` recorded under `sql.exec.select` shows up
//! at depth 1. Thread ids are compact (0, 1, 2, …) per-process, assigned
//! on first use, so encoders can group by thread without OS tids.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Completed spans retained (per process) before the oldest is overwritten.
pub const RING_CAPACITY: usize = 1024;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (`layer.object.metric` convention).
    pub name: &'static str,
    /// Compact per-process thread id (assigned on first span per thread).
    pub thread: u32,
    /// Nesting depth at entry: 0 for top-level spans.
    pub depth: u32,
    /// Nanoseconds from process-epoch (first observability use) to entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Global completion sequence number (monotone; orders ring entries).
    pub seq: u64,
}

/// The fixed-capacity span store: an atomic write cursor plus one tiny
/// mutex per slot. Writers claim a slot with a relaxed `fetch_add` and
/// only then take that slot's lock, so two writers contend only on the
/// rare lap collision, never on a global lock.
pub struct SpanRing {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("written", &self.cursor.load(Ordering::Relaxed)) // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            .finish()
    }
}

impl SpanRing {
    pub fn with_capacity(capacity: usize) -> SpanRing {
        SpanRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Append a record, overwriting the oldest entry when full.
    pub fn push(&self, mut rec: SpanRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed); // ordering: trace-seq Relaxed — sequence allocation; the slot/event payload is synchronized separately
        rec.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(rec);
    }

    /// Total spans ever pushed (not capped at capacity).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed) // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
    }

    /// Retained records, oldest first.
    pub fn drain_ordered(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| *s.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Clear all retained records and the cursor.
    pub fn reset(&self) {
        for s in &self.slots {
            *s.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
        self.cursor.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
    }
}

#[cfg(feature = "enabled")]
mod thread_state {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU32, Ordering};

    static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

    thread_local! {
        static THREAD_ID: u32 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed); // ordering: trace-seq Relaxed — sequence allocation; the slot/event payload is synchronized separately
        static DEPTH: Cell<u32> = const { Cell::new(0) };
    }

    pub fn thread_id() -> u32 {
        THREAD_ID.with(|id| *id)
    }

    pub fn enter() -> u32 {
        DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        })
    }

    pub fn exit() {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }

    /// Nanoseconds since the first observability use in this process.
    pub fn epoch_ns() -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Shared process time base (ns since first observability use), so span
/// records and trace events sort on one axis.
#[cfg(feature = "enabled")]
pub(crate) fn process_epoch_ns() -> u64 {
    thread_state::epoch_ns()
}

/// Compact per-process thread id shared between the span ring and the
/// trace rings.
#[cfg(feature = "enabled")]
pub(crate) fn process_thread_id() -> u32 {
    thread_state::thread_id()
}

/// RAII guard: records a [`SpanRecord`] into the global ring on drop.
/// In disabled builds this is a zero-sized no-op (no clock read).
#[must_use = "a span measures the scope it is held for"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    depth: u32,
    #[cfg(feature = "enabled")]
    start_ns: u64,
}

/// Open a span; the returned guard records it when dropped.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        SpanGuard {
            name,
            depth: thread_state::enter(),
            start_ns: thread_state::epoch_ns(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let end_ns = thread_state::epoch_ns();
            thread_state::exit();
            crate::registry::global().spans().push(SpanRecord {
                name: self.name,
                thread: thread_state::thread_id(),
                depth: self.depth,
                start_ns: self.start_ns,
                dur_ns: end_ns.saturating_sub(self.start_ns),
                seq: 0, // assigned by the ring
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str) -> SpanRecord {
        SpanRecord {
            name,
            thread: 0,
            depth: 0,
            start_ns: 0,
            dur_ns: 1,
            seq: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest_on_wraparound() {
        let ring = SpanRing::with_capacity(4);
        for name in ["a", "b", "c", "d", "e", "f"] {
            ring.push(rec(name));
        }
        let kept: Vec<&str> = ring.drain_ordered().iter().map(|r| r.name).collect();
        assert_eq!(kept, ["c", "d", "e", "f"]);
        assert_eq!(ring.pushed(), 6);
    }

    #[test]
    fn nested_spans_report_depth() {
        if !crate::is_enabled() {
            return;
        }
        crate::registry::global().spans().reset();
        {
            let _outer = span("obs.test.outer");
            let _inner = span("obs.test.inner");
        }
        let spans = crate::registry::global().spans().drain_ordered();
        let inner = spans.iter().find(|s| s.name == "obs.test.inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "obs.test.outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        // Inner drops first, so it completes earlier in sequence order.
        assert!(inner.seq < outer.seq);
    }
}
