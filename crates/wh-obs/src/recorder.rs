//! The always-on flight recorder.
//!
//! The per-thread trace rings ([`crate::trace`]) are always recording the
//! last few thousand events per thread; this module turns that rolling
//! history into a file the moment something anomalous happens, so a chaos
//! soak or crash-matrix failure ships with its causal story instead of a
//! bare assert message.
//!
//! Triggers wired through the workspace:
//!
//! | reason              | fired from                                      |
//! |---------------------|-------------------------------------------------|
//! | `expire_storm`      | [`crate::slo::note_expiration`] threshold cross |
//! | `recovery_entry`    | `wh_vnl::recovery::recover` entry               |
//! | `flush_failed`      | `wh_storage` buffer-pool flush error            |
//! | `crash_matrix_cell` | a crash-matrix cell panicking                   |
//! | `oracle_violation`  | the chaos soak's zero-wrong-answer oracle       |
//!
//! A dump is written only when a sink directory is configured — either
//! programmatically via [`arm`] or with the `WH_FLIGHT_DIR` environment
//! variable — so unit tests that legitimately exercise recovery paths do
//! not litter the filesystem. Dumps are rate-limited per reason
//! ([`MIN_DUMP_INTERVAL`]) and capped per process ([`MAX_DUMPS`]).
//!
//! The format is self-describing JSONL: the first line is a header object
//! carrying the schema name, the trigger reason/detail, wall-clock and
//! process timestamps, and the field list; each following line is one
//! trace event; the final line is a flat counter snapshot for context.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::encode::json_escape;

/// Minimum spacing between two dumps for the same reason.
pub const MIN_DUMP_INTERVAL: Duration = Duration::from_secs(2);

/// Hard cap on dumps written by one process.
pub const MAX_DUMPS: u64 = 64;

/// A dump that was written.
#[derive(Debug, Clone)]
pub struct DumpInfo {
    pub path: PathBuf,
    pub reason: &'static str,
    /// Trace events captured in the dump.
    pub events: usize,
}

static ARMED_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static LAST_BY_REASON: Mutex<BTreeMap<&'static str, Instant>> = Mutex::new(BTreeMap::new());
static DUMPS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Point the recorder at `dir` (created on first dump). Overrides
/// `WH_FLIGHT_DIR`.
pub fn arm(dir: impl Into<PathBuf>) {
    *ARMED_DIR.lock().unwrap_or_else(PoisonError::into_inner) = Some(dir.into());
}

/// Remove a programmatic sink (the environment variable still applies).
pub fn disarm() {
    *ARMED_DIR.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// The directory dumps would go to right now, if any.
pub fn sink_dir() -> Option<PathBuf> {
    if let Some(dir) = ARMED_DIR
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
    {
        return Some(dir);
    }
    std::env::var_os("WH_FLIGHT_DIR").map(PathBuf::from)
}

/// Dumps written by this process so far.
pub fn dumps_written() -> u64 {
    DUMPS_WRITTEN.load(Ordering::Relaxed) // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
}

/// Peek the per-reason rate limit without claiming a slot; the timestamp
/// is stamped by [`note_dumped`] only after a dump is fully on disk, so a
/// failed write does not silence the next trigger for the same reason.
fn rate_limited(reason: &'static str) -> bool {
    let last = LAST_BY_REASON
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    last.get(reason)
        .is_some_and(|prev| Instant::now().duration_since(*prev) < MIN_DUMP_INTERVAL)
}

fn note_dumped(reason: &'static str) {
    LAST_BY_REASON
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(reason, Instant::now());
}

/// Write the dump body to `w`; any I/O error aborts the dump (the caller
/// removes the partial temp file).
fn write_dump(
    w: &mut impl Write,
    reason: &str,
    detail: &str,
    events: &[crate::TraceEvent],
) -> std::io::Result<()> {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    writeln!(
        w,
        concat!(
            "{{\"schema\":\"wh-flight-1\",\"reason\":\"{}\",\"detail\":\"{}\",",
            "\"pid\":{},\"unix_ms\":{},\"events\":{},",
            "\"fields\":[\"seq\",\"trace\",\"span\",\"parent\",\"name\",",
            "\"kind\",\"thread\",\"ts_ns\",\"arg\"]}}"
        ),
        json_escape(reason),
        json_escape(detail),
        std::process::id(),
        unix_ms,
        events.len(),
    )?;
    for e in events {
        writeln!(
            w,
            concat!(
                "{{\"seq\":{},\"trace\":{},\"span\":{},\"parent\":{},",
                "\"name\":\"{}\",\"kind\":\"{}\",\"thread\":{},",
                "\"ts_ns\":{},\"arg\":{}}}"
            ),
            e.seq,
            e.trace_id,
            e.span_id,
            e.parent_id,
            json_escape(e.name),
            e.kind.label(),
            e.thread,
            e.ts_ns,
            e.arg,
        )?;
    }
    let snap = crate::registry::global().snapshot();
    let mut counters = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            counters.push(',');
        }
        counters.push_str(&format!("\"{}\":{v}", json_escape(name)));
    }
    counters.push_str("}}");
    writeln!(w, "{counters}")?;
    w.flush()
}

/// Dump the recent trace history because `reason` happened. Returns the
/// written dump, or `None` when disabled, unarmed, rate-limited, capped,
/// or on I/O error (the recorder never panics and never interferes with
/// the failing operation it is documenting).
///
/// The dump is written to a hidden `.tmp` file and renamed into place
/// only after a successful flush, and the [`MAX_DUMPS`] slot and
/// per-reason rate-limit stamp are consumed only then — an I/O failure
/// mid-dump neither burns the cap nor leaves a truncated `.jsonl` for
/// downstream tooling to trip over.
pub fn trigger(reason: &'static str, detail: &str) -> Option<DumpInfo> {
    if !crate::is_enabled() {
        return None;
    }
    let dir = sink_dir()?;
    if rate_limited(reason) {
        return None;
    }
    // ordering: ring-cap Relaxed — approximate early-out; the claim loop below re-checks the cap
    if DUMPS_WRITTEN.load(Ordering::Relaxed) >= MAX_DUMPS {
        return None;
    }
    let events = crate::trace::collect();
    std::fs::create_dir_all(&dir).ok()?;
    // Unique temp name per attempt (separate from the dump numbering so a
    // failed attempt never consumes a visible dump number).
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let attempt = TMP_SEQ.fetch_add(1, Ordering::Relaxed); // ordering: id-alloc Relaxed — sequence allocation; nothing else is guarded by it
    let tmp = dir.join(format!(
        ".flight-{reason}-{pid}-{attempt}.tmp",
        pid = std::process::id()
    ));
    let written = std::fs::File::create(&tmp).ok().and_then(|file| {
        let mut w = std::io::BufWriter::new(file);
        write_dump(&mut w, reason, detail, &events).ok()
    });
    if written.is_none() {
        std::fs::remove_file(&tmp).ok();
        return None;
    }
    // The bytes are safely on disk: claim a dump number without ever
    // overshooting the cap.
    let n = loop {
        let cur = DUMPS_WRITTEN.load(Ordering::Relaxed); // ordering: ring-cap Relaxed — cap accounting only; no data is guarded
        if cur >= MAX_DUMPS {
            std::fs::remove_file(&tmp).ok();
            return None;
        }
        // ordering: ring-cap Relaxed/Relaxed — cap accounting only; no data is guarded
        if DUMPS_WRITTEN
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            break cur;
        }
    };
    let path = dir.join(format!(
        "flight-{reason}-{pid}-{n}.jsonl",
        pid = std::process::id()
    ));
    if std::fs::rename(&tmp, &path).is_err() {
        std::fs::remove_file(&tmp).ok();
        DUMPS_WRITTEN.fetch_sub(1, Ordering::Relaxed); // ordering: ring-cap Relaxed — cap accounting only; returns the unused slot
        return None;
    }
    note_dumped(reason);
    crate::counter!("obs.recorder.dumps").inc();
    Some(DumpInfo {
        path,
        reason,
        events: events.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The armed directory is process-global; serialize the tests that
    /// touch it so they don't observe each other's arm/disarm.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_trigger_is_silent() {
        let _l = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // No arm() and (in the test environment) no WH_FLIGHT_DIR: the
        // trigger must decline without touching the filesystem.
        if std::env::var_os("WH_FLIGHT_DIR").is_some() {
            return;
        }
        assert!(trigger("obs_test_unarmed", "nothing to see").is_none());
    }

    #[test]
    fn armed_trigger_writes_selfdescribing_jsonl() {
        if !crate::is_enabled() {
            return;
        }
        let _l = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("wh-flight-test-{}", std::process::id()));
        arm(&dir);
        let _g = crate::trace_span!("obs.test.recorder_span");
        crate::trace_event!("obs.test.recorder_event", 5);
        let info = trigger("obs_test_armed", "unit \"quoted\" detail").expect("dump");
        disarm();
        let text = std::fs::read_to_string(&info.path).expect("read dump");
        let mut lines = text.lines();
        let header = lines.next().expect("header line");
        assert!(header.contains("\"schema\":\"wh-flight-1\""));
        assert!(header.contains("\"reason\":\"obs_test_armed\""));
        assert!(header.contains("\\\"quoted\\\""));
        assert!(text.contains("obs.test.recorder_event"));
        assert!(text.lines().last().expect("tail").contains("\"counters\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_reason_is_rate_limited() {
        if !crate::is_enabled() {
            return;
        }
        let _l = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("wh-flight-rl-{}", std::process::id()));
        arm(&dir);
        let first = trigger("obs_test_ratelimit", "first");
        let second = trigger("obs_test_ratelimit", "second");
        disarm();
        assert!(first.is_some());
        assert!(second.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
