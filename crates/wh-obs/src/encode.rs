//! Snapshot encoders: JSON and Prometheus text exposition.
//!
//! Both are hand-rolled — the workspace takes no external dependencies —
//! and deterministic (BTreeMap iteration order), so encoded snapshots
//! diff cleanly across runs.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::registry::Snapshot;

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Rewrite a `layer.object.metric` name into a Prometheus-legal metric
/// name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn hist_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        buckets.push_str(&format!("[{},{}]", bucket_upper_bound(i), n));
    }
    buckets.push(']');
    let min = if h.min == u64::MAX { 0 } else { h.min };
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"buckets\":{}}}",
        h.count(),
        h.sum,
        min,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
        buckets
    )
}

impl Snapshot {
    /// Encode the snapshot as a single JSON object: counters and gauges as
    /// flat maps, histograms with summary stats plus nonzero
    /// `[upper_bound, count]` bucket pairs, spans as an array.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\n  \"enabled\": {},\n  \"seq\": {},\n",
            crate::is_enabled(),
            self.seq
        ));

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"gauges\": {");
        for (i, (name, (v, hw))) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"value\": {}, \"high_water\": {}}}",
                json_escape(name),
                v,
                hw
            ));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {}",
                json_escape(name),
                hist_json(h)
            ));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"thread\": {}, \"depth\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"seq\": {}}}",
                json_escape(s.name),
                s.thread,
                s.depth,
                s.start_ns,
                s.dur_ns,
                s.seq
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Encode the snapshot in the Prometheus text exposition format:
    /// counters as `<name>_total`, gauges as `<name>` plus `<name>_max`,
    /// histograms as cumulative `_bucket{le=...}` series with `_sum` and
    /// `_count`. Spans are not exported (they are events, not series).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, v) in &self.counters {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {v}\n"));
        }
        for (name, (v, hw)) in &self.gauges {
            let p = prom_name(name);
            out.push_str(&format!(
                "# TYPE {p} gauge\n{p} {v}\n# TYPE {p}_max gauge\n{p}_max {hw}\n"
            ));
        }
        for (name, h) in &self.histograms {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                if i == BUCKETS - 1 {
                    break; // folded into the +Inf bucket below
                }
                out.push_str(&format!(
                    "{p}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_upper_bound(i)
                ));
            }
            out.push_str(&format!(
                "{p}_bucket{{le=\"+Inf\"}} {}\n{p}_sum {}\n{p}_count {}\n",
                h.count(),
                h.sum,
                h.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Snapshot;

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_snapshot_encodes() {
        let snap = Snapshot::default();
        let json = snap.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"spans\""));
        assert!(snap.to_prometheus().is_empty());
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        assert_eq!(
            super::prom_name("storage.latch.read_wait_ns"),
            "storage_latch_read_wait_ns"
        );
        assert_eq!(super::prom_name("9lives"), "_9lives");
    }
}
