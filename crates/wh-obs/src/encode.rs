//! Snapshot encoders: JSON and Prometheus text exposition.
//!
//! Both are hand-rolled — the workspace takes no external dependencies —
//! and deterministic (BTreeMap iteration order), so encoded snapshots
//! diff cleanly across runs.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::registry::Snapshot;

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escape a Prometheus label *value*: backslash, double-quote, and
/// newline must be escaped inside the `label="value"` syntax.
pub fn prom_label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Rewrite a `layer.object.metric` name into a Prometheus-legal metric
/// name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn hist_json(h: &HistogramSnapshot, sample_rate: u64) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        buckets.push_str(&format!("[{},{}]", bucket_upper_bound(i), n));
    }
    buckets.push(']');
    let min = if h.min == u64::MAX { 0 } else { h.min };
    let rate = if sample_rate > 1 {
        format!(",\"sample_rate\":{sample_rate}")
    } else {
        String::new()
    };
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{}{rate},\"buckets\":{}}}",
        h.count(),
        h.sum,
        min,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
        buckets
    )
}

impl Snapshot {
    /// Encode the snapshot as a single JSON object: counters and gauges as
    /// flat maps, histograms with summary stats plus nonzero
    /// `[upper_bound, count]` bucket pairs, spans as an array.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\n  \"enabled\": {},\n  \"seq\": {},\n",
            crate::is_enabled(),
            self.seq
        ));

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"gauges\": {");
        for (i, (name, (v, hw))) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"value\": {}, \"high_water\": {}}}",
                json_escape(name),
                v,
                hw
            ));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {}",
                json_escape(name),
                hist_json(h, self.sample_rates.get(name).copied().unwrap_or(1))
            ));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"thread\": {}, \"depth\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"seq\": {}}}",
                json_escape(s.name),
                s.thread,
                s.depth,
                s.start_ns,
                s.dur_ns,
                s.seq
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Encode the snapshot in the Prometheus text exposition format:
    /// counters as `<name>_total`, gauges as `<name>` plus `<name>_max`,
    /// histograms as cumulative `_bucket{le=...}` series with `_sum` and
    /// `_count`. Spans are not exported (they are events, not series).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, v) in &self.counters {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {v}\n"));
        }
        for (name, (v, hw)) in &self.gauges {
            let p = prom_name(name);
            out.push_str(&format!(
                "# TYPE {p} gauge\n{p} {v}\n# TYPE {p}_max gauge\n{p}_max {hw}\n"
            ));
        }
        for (name, h) in &self.histograms {
            let p = prom_name(name);
            // 1-in-N sampled histograms are rescaled so Prometheus rates
            // line up with their exact companion counters, and labelled
            // `sampled="N"` so the rescaling is visible to operators.
            let rate = self.sample_rates.get(name).copied().unwrap_or(1).max(1);
            let sampled_label = if rate > 1 {
                format!(",sampled=\"{}\"", prom_label_escape(&rate.to_string()))
            } else {
                String::new()
            };
            out.push_str(&format!("# TYPE {p} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                if i == BUCKETS - 1 {
                    break; // folded into the +Inf bucket below
                }
                out.push_str(&format!(
                    "{p}_bucket{{le=\"{}\"{sampled_label}}} {}\n",
                    bucket_upper_bound(i),
                    cumulative.saturating_mul(rate)
                ));
            }
            if rate > 1 {
                out.push_str(&format!(
                    "{p}_bucket{{le=\"+Inf\"{sampled_label}}} {}\n{p}_sum{{sampled=\"{rate}\"}} {}\n{p}_count{{sampled=\"{rate}\"}} {}\n",
                    h.count().saturating_mul(rate),
                    h.sum.saturating_mul(rate),
                    h.count().saturating_mul(rate)
                ));
            } else {
                out.push_str(&format!(
                    "{p}_bucket{{le=\"+Inf\"}} {}\n{p}_sum {}\n{p}_count {}\n",
                    h.count(),
                    h.sum,
                    h.count()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Snapshot;

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_snapshot_encodes() {
        let snap = Snapshot::default();
        let json = snap.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"spans\""));
        assert!(snap.to_prometheus().is_empty());
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        assert_eq!(
            super::prom_name("storage.latch.read_wait_ns"),
            "storage_latch_read_wait_ns"
        );
        assert_eq!(super::prom_name("9lives"), "_9lives");
        // Every char outside [a-zA-Z0-9_:] is folded to '_', so label-ish
        // punctuation can never leak into a metric name.
        assert_eq!(super::prom_name("weird{name}=\"x\" y"), "weird_name___x__y");
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(super::prom_label_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(super::prom_label_escape("16"), "16");
    }

    #[test]
    fn sampled_histograms_are_rescaled_and_labelled() {
        use crate::histogram::{bucket_index, HistogramSnapshot};

        let mut h = HistogramSnapshot::empty();
        h.buckets[bucket_index(100)] = 3;
        h.sum = 300;
        h.min = 100;
        h.max = 100;

        let mut snap = Snapshot::default();
        snap.histograms.insert("storage.heap.read_ns", h);
        snap.sample_rates.insert("storage.heap.read_ns", 16);

        let prom = snap.to_prometheus();
        // 3 recorded observations at 1-in-16 sampling → 48 estimated.
        assert!(
            prom.contains("storage_heap_read_ns_count{sampled=\"16\"} 48"),
            "{prom}"
        );
        assert!(
            prom.contains("storage_heap_read_ns_sum{sampled=\"16\"} 4800"),
            "{prom}"
        );
        assert!(
            prom.contains("_bucket{le=\"+Inf\",sampled=\"16\"} 48"),
            "{prom}"
        );

        // JSON keeps the raw (unscaled) values but declares the rate.
        let json = snap.to_json();
        assert!(json.contains("\"sample_rate\":16"), "{json}");
        assert!(json.contains("\"count\":3"), "{json}");

        // An exact histogram stays unscaled and unlabelled.
        let mut exact = Snapshot::default();
        let mut h2 = HistogramSnapshot::empty();
        h2.buckets[bucket_index(7)] = 2;
        h2.sum = 14;
        exact.histograms.insert("obs.test.exact", h2);
        let prom2 = exact.to_prometheus();
        assert!(prom2.contains("obs_test_exact_count 2"), "{prom2}");
        assert!(!prom2.contains("sampled="), "{prom2}");
    }
}
