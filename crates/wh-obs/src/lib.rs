//! Observability substrate for the `warehouse-2vnl` system.
//!
//! 2VNL's whole pitch is a quantified trade (Quass & Widom §3, §5): readers
//! never block, but they read data up to one maintenance generation stale,
//! while the warehouse pays extra storage and GC work. This crate is the
//! measurement surface for that trade — the live telemetry a production
//! MVCC engine exposes (cf. the instrumentation-driven evaluations in
//! Larson et al. and Faleiro & Abadi): staleness, version-slot occupancy,
//! latch contention, maintenance-phase latency, GC reclaim lag.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-free hot path.** Counters, gauges, and histogram recording are
//!    single relaxed atomic RMWs. The only lock in the crate guards the
//!    registry's name→metric maps (touched once per call site, cached in a
//!    `OnceLock` by the [`counter!`]/[`gauge!`]/[`histogram!`] macros) and
//!    the span ring slots (one tiny uncontended mutex per slot).
//! 2. **Zero cost when disabled.** Without the `enabled` cargo feature every
//!    recording method compiles to an empty `#[inline]` body — no atomics,
//!    no clock reads — and [`Timer::start`] doesn't read the clock. The CI
//!    overhead gate (E20) holds the enabled build to within 5% of the
//!    disabled build on the E18 serial scan.
//! 3. **No dependencies.** `std` only, like the rest of the workspace.
//!
//! Metric names follow the `layer.object.metric` convention (DESIGN.md §8):
//! `storage.latch.read_wait_ns`, `vnl.reader.staleness`,
//! `cc.s2pl.reader_wait_ns`, `sql.exec.rows_out`, …
//!
//! [`Registry::snapshot`] freezes everything into a [`Snapshot`] with
//! interval arithmetic ([`Snapshot::since`], mirroring
//! `wh_storage::IoSnapshot` semantics), a JSON encoder, and a
//! Prometheus-style text encoder.

pub mod encode;
pub mod histogram;
pub mod metric;
pub mod recorder;
pub mod registry;
pub mod server;
pub mod slo;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metric::{Counter, Gauge};
pub use recorder::DumpInfo;
pub use registry::{counter, gauge, histogram, Registry, Snapshot};
pub use server::IntrospectionServer;
pub use slo::SlidingWindow;
pub use span::{span, SpanGuard, SpanRecord};
pub use trace::{EventKind, TraceCtx, TraceEvent, TraceGuard};

/// A monotonic stopwatch that is free when observability is disabled: the
/// disabled build neither stores nor reads a clock.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

impl Timer {
    /// Start timing (a no-op without the `enabled` feature).
    #[inline]
    pub fn start() -> Timer {
        Timer {
            #[cfg(feature = "enabled")]
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since [`Timer::start`] (0 when disabled).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.start.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// Whether the crate was compiled with recording enabled.
#[inline]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Cached-handle lookup for a [`Counter`]: resolves the registry entry once
/// per call site and returns `&'static Counter` thereafter.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __SITE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Cached-handle lookup for a [`Gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// Cached-handle lookup for a [`Histogram`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::registry::histogram($name))
    }};
}

/// Cached-handle lookup for a [`Histogram`] whose call site records only
/// one in `$rate` observations. The rate is registered alongside the
/// histogram so the encoders can rescale counts (Prometheus) or label the
/// series (`sample_rate` in JSON) instead of reporting rates `$rate`× low.
#[macro_export]
macro_rules! histogram_sampled {
    ($name:expr, $rate:expr) => {{
        static __SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::registry::sampled_histogram($name, $rate))
    }};
}

/// Cached interned trace-event name for this call site: resolves the
/// [`trace`] name-table index once and returns the `u32` thereafter.
#[macro_export]
macro_rules! trace_name {
    ($name:expr) => {{
        static __SITE: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        *__SITE.get_or_init(|| $crate::trace::intern($name))
    }};
}

/// Open a trace span parented under the ambient open span (a fresh trace
/// if none). Returns a [`TraceGuard`] that closes the span on drop.
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {
        $crate::trace::enter($crate::trace_name!($name))
    };
}

/// Open a trace span explicitly parented under `$ctx` (a [`TraceCtx`]),
/// regardless of which thread runs it; falls back to ambient parenting if
/// the ctx is inert.
#[macro_export]
macro_rules! trace_span_under {
    ($name:expr, $ctx:expr) => {
        $crate::trace::enter_under($crate::trace_name!($name), $ctx)
    };
}

/// Open a root span on trace `$trace_id` (0 allocates a fresh trace);
/// `$arg` is recorded on the start event.
#[macro_export]
macro_rules! trace_root {
    ($name:expr, $trace_id:expr, $arg:expr) => {
        $crate::trace::enter_root($crate::trace_name!($name), $trace_id, $arg)
    };
}

/// Emit an instant trace event attributed to the ambient open span.
#[macro_export]
macro_rules! trace_event {
    ($name:expr) => {
        $crate::trace::instant($crate::trace_name!($name), 0)
    };
    ($name:expr, $arg:expr) => {
        $crate::trace::instant($crate::trace_name!($name), $arg)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_when_enabled() {
        let t = Timer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        if is_enabled() {
            assert!(t.elapsed_ns() >= 1_000_000);
        } else {
            assert_eq!(t.elapsed_ns(), 0);
        }
    }

    #[test]
    fn macros_cache_one_handle_per_site() {
        let a = counter!("obs.test.macro_site");
        let b = counter!("obs.test.macro_site");
        // Two sites, one registry entry: both point at the same metric.
        assert!(
            std::ptr::eq(a, b) || !is_enabled() || {
                a.add(1);
                b.get() == a.get()
            }
        );
    }
}
