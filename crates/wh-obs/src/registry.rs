//! The process-global metric registry.
//!
//! Metrics are registered on first use by name and live for the process
//! lifetime (`Box::leak`), so call sites hold `&'static` handles and the
//! hot path never touches the registry lock — the [`crate::counter!`]
//! family of macros caches the handle in a per-site `OnceLock`. The
//! registry lock is taken only on first registration and on snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use crate::span::{SpanRecord, SpanRing, RING_CAPACITY};

/// The global registry: three name→metric maps plus the span ring.
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    /// Declared sampling rate for histograms fed 1-in-N (absent = exact).
    sample_rates: Mutex<BTreeMap<&'static str, u64>>,
    spans: SpanRing,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("spans", &self.spans)
            .finish_non_exhaustive()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-global registry instance.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        sample_rates: Mutex::new(BTreeMap::new()),
        spans: SpanRing::with_capacity(RING_CAPACITY),
    })
}

fn intern(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

/// Get or register the counter called `name`.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = lock(&global().counters);
    if let Some(c) = map.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    map.insert(intern(name), c);
    c
}

/// Get or register the gauge called `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut map = lock(&global().gauges);
    if let Some(g) = map.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    map.insert(intern(name), g);
    g
}

/// Get or register the histogram called `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = lock(&global().histograms);
    if let Some(h) = map.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(intern(name), h);
    h
}

/// Get or register the histogram called `name`, declaring that its call
/// sites record only one in `rate` observations. The rate travels with
/// every [`Snapshot`] so the encoders can rescale counts instead of
/// letting Prometheus rates read `rate`× low against the exact companion
/// counters.
pub fn sampled_histogram(name: &str, rate: u64) -> &'static Histogram {
    let h = histogram(name);
    if rate > 1 {
        lock(&global().sample_rates).insert(intern(name), rate);
    }
    h
}

impl Registry {
    /// The global span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Freeze every registered metric (and the retained spans) into an
    /// immutable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        static SNAPSHOT_SEQ: AtomicU64 = AtomicU64::new(0);
        Snapshot {
            seq: SNAPSHOT_SEQ.fetch_add(1, Ordering::Relaxed), // ordering: stat-counter Relaxed — independent event counter; read only for reporting
            counters: lock(&self.counters)
                .iter()
                .map(|(&k, v)| (k, v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(&k, v)| (k, (v.get(), v.high_water())))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(&k, v)| (k, v.snapshot()))
                .collect(),
            sample_rates: lock(&self.sample_rates)
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            spans: self.spans.drain_ordered(),
        }
    }

    /// Zero every registered metric and clear the span ring. Intended for
    /// report bins that measure phases in isolation; concurrent tests
    /// should prefer [`Snapshot::since`] deltas.
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for g in lock(&self.gauges).values() {
            g.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
        self.spans.reset();
    }
}

/// An immutable, point-in-time copy of the registry.
///
/// Keys are the registered metric names (`layer.object.metric`). Supports
/// interval arithmetic via [`Snapshot::since`] and encodes itself as JSON
/// ([`Snapshot::to_json`]) or Prometheus text ([`Snapshot::to_prometheus`]).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotone per-process snapshot number.
    pub seq: u64,
    pub counters: BTreeMap<&'static str, u64>,
    /// name → (current value, high-water mark).
    pub gauges: BTreeMap<&'static str, (i64, i64)>,
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
    /// Declared 1-in-N sampling rate per histogram name (absent = exact).
    pub sample_rates: BTreeMap<&'static str, u64>,
    /// Retained spans, oldest first.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge current value by name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).map_or(0, |&(v, _)| v)
    }

    /// Gauge high-water mark by name (0 if absent).
    pub fn gauge_high_water(&self, name: &str) -> i64 {
        self.gauges.get(name).map_or(0, |&(_, hw)| hw)
    }

    /// Histogram snapshot by name (empty if absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms
            .get(name)
            .copied()
            .unwrap_or_else(HistogramSnapshot::empty)
    }

    /// Activity since `older` was taken: counters and histogram buckets
    /// subtract saturating (mirroring `IoSnapshot::since`); gauges are
    /// instantaneous so the newer value is kept as-is; spans are the
    /// newer snapshot's spans with seq beyond the older snapshot's last.
    pub fn since(&self, older: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| (k, v.saturating_sub(older.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(&k, v)| (k, v.since(&older.histogram(k))))
            .collect();
        let last_old_seq = older.spans.last().map(|s| s.seq);
        let spans = self
            .spans
            .iter()
            .filter(|s| last_old_seq.is_none_or(|old| s.seq > old))
            .copied()
            .collect();
        Snapshot {
            seq: self.seq,
            counters,
            gauges: self.gauges.clone(),
            histograms,
            sample_rates: self.sample_rates.clone(),
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let a = counter("obs.test.registry_idem");
        let b = counter("obs.test.registry_idem");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn snapshot_reports_registered_metrics() {
        counter("obs.test.snap_counter").add(7);
        gauge("obs.test.snap_gauge").set(-3);
        histogram("obs.test.snap_hist").record(100);
        let snap = global().snapshot();
        if crate::is_enabled() {
            assert!(snap.counter("obs.test.snap_counter") >= 7);
            assert_eq!(snap.gauge("obs.test.snap_gauge"), -3);
            assert!(snap.histogram("obs.test.snap_hist").count() >= 1);
        } else {
            assert_eq!(snap.counter("obs.test.snap_counter"), 0);
        }
    }
}
