//! Integration tests for the observability substrate (ISSUE 3 satellite):
//! histogram bucket boundaries and merge associativity, concurrent counter
//! increments, span ring wraparound, and snapshot-delta arithmetic
//! mirroring `IoStats`/`IoSnapshot` semantics.
//!
//! The registry is process-global and these tests run concurrently in one
//! binary, so every test uses its own metric names and asserts with `>=`
//! or via `since()` deltas rather than absolute totals.

use wh_obs::histogram::{bucket_index, bucket_upper_bound};
use wh_obs::span::{SpanRecord, SpanRing};
use wh_obs::{registry, Histogram, HistogramSnapshot, BUCKETS};

#[test]
fn histogram_bucket_boundaries_are_powers_of_two() {
    // Bucket i (0 < i < BUCKETS-1) holds exactly [2^(i-1), 2^i - 1].
    for i in 1..BUCKETS - 1 {
        let lo = 1u64 << (i - 1);
        let hi = (1u64 << i) - 1;
        assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
        assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
        assert_eq!(bucket_upper_bound(i), hi);
    }
    // Bucket 0 holds only zero; the last bucket is unbounded.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    // Boundaries partition the domain: every value's bucket bound is the
    // smallest bound >= the value.
    for v in [1u64, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40] {
        let i = bucket_index(v);
        assert!(bucket_upper_bound(i) >= v);
        if i > 0 {
            assert!(bucket_upper_bound(i - 1) < v);
        }
    }
}

fn sample(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    if !wh_obs::is_enabled() {
        return;
    }
    let a = sample(&[1, 5, 9000]);
    let b = sample(&[0, 2, 2, 1 << 30]);
    let c = sample(&[17, 100_000]);

    let left = a.merge(&b).merge(&c);
    let right = a.merge(&b.merge(&c));
    assert_eq!(left, right, "merge must be associative");
    assert_eq!(a.merge(&b), b.merge(&a), "merge must be commutative");

    assert_eq!(left.count(), 9);
    assert_eq!(left.sum, 1 + 5 + 9000 + 2 + 2 + (1u64 << 30) + 17 + 100_000);
    assert_eq!(left.min, 0);
    assert_eq!(left.max, 1 << 30);
}

#[test]
fn concurrent_counter_increments_from_eight_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let c = registry::counter("obs.itest.concurrent_counter");
    let before = c.get();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    let expected = if wh_obs::is_enabled() {
        THREADS * PER_THREAD
    } else {
        0
    };
    assert_eq!(c.get() - before, expected, "no lost updates");
}

#[test]
fn concurrent_histogram_records_lose_nothing() {
    if !wh_obs::is_enabled() {
        return;
    }
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let h = &h;
            s.spawn(move || {
                for i in 0..5_000u64 {
                    h.record(t * 1000 + i);
                }
            });
        }
    });
    assert_eq!(h.snapshot().count(), 40_000);
}

#[test]
fn span_ring_wraps_and_keeps_newest() {
    let ring = SpanRing::with_capacity(8);
    let names: Vec<&'static str> = (0..20)
        .map(|i| &*Box::leak(format!("span{i}").into_boxed_str()))
        .collect();
    for &n in &names {
        ring.push(SpanRecord {
            name: n,
            thread: 0,
            depth: 0,
            start_ns: 0,
            dur_ns: 1,
            seq: 0,
        });
    }
    assert_eq!(ring.pushed(), 20);
    let kept = ring.drain_ordered();
    assert_eq!(kept.len(), 8, "bounded at capacity");
    let kept_names: Vec<&str> = kept.iter().map(|r| r.name).collect();
    assert_eq!(
        kept_names,
        &names[12..],
        "oldest overwritten, newest retained in order"
    );
}

#[test]
fn snapshot_since_mirrors_iostats_delta_semantics() {
    if !wh_obs::is_enabled() {
        return;
    }
    let c = registry::counter("obs.itest.delta_counter");
    let h = registry::histogram("obs.itest.delta_hist");
    let g = registry::gauge("obs.itest.delta_gauge");

    c.add(3);
    h.record(10);
    g.set(5);
    let t0 = registry::global().snapshot();

    c.add(4);
    h.record(20);
    h.record(30);
    g.set(2);
    let t1 = registry::global().snapshot();

    let delta = t1.since(&t0);
    // Counters subtract, like IoSnapshot::since.
    assert_eq!(delta.counter("obs.itest.delta_counter"), 4);
    // Histogram buckets subtract element-wise.
    assert_eq!(delta.histogram("obs.itest.delta_hist").count(), 2);
    assert_eq!(delta.histogram("obs.itest.delta_hist").sum, 50);
    // Gauges are instantaneous: newer value wins, no subtraction.
    assert_eq!(delta.gauge("obs.itest.delta_gauge"), 2);
    assert_eq!(delta.gauge_high_water("obs.itest.delta_gauge"), 5);
    // Subtracting a snapshot from itself is the zero delta (saturating,
    // never underflowing).
    let zero = t0.since(&t0);
    assert_eq!(zero.counter("obs.itest.delta_counter"), 0);
    assert_eq!(zero.histogram("obs.itest.delta_hist").count(), 0);
}

#[test]
fn encoders_cover_all_registered_metric_kinds() {
    registry::counter("obs.itest.enc_counter").add(2);
    registry::gauge("obs.itest.enc_gauge").set(7);
    registry::histogram("obs.itest.enc_hist").record(1000);
    let snap = registry::global().snapshot();

    let json = snap.to_json();
    assert!(json.contains("\"obs.itest.enc_counter\""));
    assert!(json.contains("\"obs.itest.enc_gauge\""));
    assert!(json.contains("\"obs.itest.enc_hist\""));

    let prom = snap.to_prometheus();
    assert!(prom.contains("obs_itest_enc_counter_total"));
    assert!(prom.contains("# TYPE obs_itest_enc_hist histogram"));
    if wh_obs::is_enabled() {
        assert!(prom.contains("obs_itest_enc_hist_bucket{le=\"1023\"} 1"));
        assert!(prom.contains("obs_itest_enc_hist_count 1"));
    }
}
