//! Reader sessions: consistent reads without locks (§3.2, §4.1).

use crate::error::{VnlError, VnlResult};
use crate::resilience::LeaseId;
use crate::scan::BatchScanner;
use crate::table::VnlTable;
use crate::version::VersionNo;
use std::sync::Mutex;
use std::time::Duration;
use wh_sql::{
    exec::{execute_select, execute_select_parallel},
    parse_statement, ParallelRowSource, Params, QueryResult, RowSource, SelectStmt, SqlError,
    SqlResult, Statement,
};
use wh_types::{Row, Schema, Value};

/// Liveness of a session per the §4.1 global check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The session is still guaranteed a consistent view.
    Live,
    /// The session has expired; the reader should begin a new session.
    Expired,
}

/// Which scan implementation a session's reads run on. Both produce
/// identical rows (the property tests in [`crate::scan`] pin them to the
/// reference extractor); [`ScanPipeline::Scalar`] remains available as the
/// oracle and for A/B measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPipeline {
    /// Per-tuple byte classification under the page latch
    /// ([`crate::scan::ByteScanner`]).
    Scalar,
    /// Page-batched classification over gathered version columns with
    /// bitmap-selected decode ([`crate::scan::BatchScanner`]).
    #[default]
    Batched,
}

/// A reader session pinned to one database version.
///
/// Throughout its life the session sees the state current as of its
/// `sessionVN` — across any number of queries, while maintenance
/// transactions run concurrently, without acquiring a single lock.
pub struct ReaderSession<'t> {
    table: &'t VnlTable,
    id: u64,
    session_vn: VersionNo,
    finished: bool,
    /// Set when the session was begun through
    /// [`VnlTable::begin_leased_session`]; released with the session.
    lease: Option<LeaseId>,
    /// Rolling call count behind [`ReaderSession::note_staleness_sampled`].
    staleness_probe: std::sync::atomic::AtomicU32,
    /// Scan implementation for this session's reads.
    pipeline: ScanPipeline,
    /// Root trace span covering the session; each read operation's span
    /// parents under it so a session's whole read history shares one
    /// trace id. Closed when the session is released.
    span_ctx: wh_obs::TraceCtx,
}

/// RAII probe feeding the read-latency SLO sliding window on drop; inert
/// (no clock read) when observability is disabled.
struct ReadProbe(Option<std::time::Instant>);

impl ReadProbe {
    fn start() -> ReadProbe {
        ReadProbe(wh_obs::is_enabled().then(std::time::Instant::now))
    }
}

impl Drop for ReadProbe {
    fn drop(&mut self) {
        if let Some(t) = self.0 {
            wh_obs::slo::note_read_latency(t.elapsed().as_nanos() as u64);
        }
    }
}

impl<'t> ReaderSession<'t> {
    pub(crate) fn new(table: &'t VnlTable, id: u64, session_vn: VersionNo) -> Self {
        ReaderSession {
            table,
            id,
            session_vn,
            finished: false,
            lease: None,
            staleness_probe: std::sync::atomic::AtomicU32::new(0),
            pipeline: ScanPipeline::default(),
            span_ctx: wh_obs::trace::open_ctx(wh_obs::trace_name!("vnl.session"), 0, session_vn),
        }
    }

    /// The scan pipeline this session's reads run on.
    pub fn pipeline(&self) -> ScanPipeline {
        self.pipeline
    }

    /// Switch the scan pipeline (default [`ScanPipeline::Batched`]).
    pub fn set_pipeline(&mut self, pipeline: ScanPipeline) {
        self.pipeline = pipeline;
    }

    /// The version this session reads.
    pub fn session_vn(&self) -> VersionNo {
        self.session_vn
    }

    pub(crate) fn set_lease(&mut self, lease: LeaseId) {
        self.lease = Some(lease);
    }

    /// The session's lease, when begun through
    /// [`VnlTable::begin_leased_session`].
    pub fn lease(&self) -> Option<LeaseId> {
        self.lease
    }

    /// Renew the session's lease, declaring about `hint` of remaining
    /// work. Fails with [`VnlError::SessionExpired`] when the session
    /// already failed the §4.1 global check or a pacer revoked the lease
    /// (`ExpireOldest`) — either way the holder should finish and restart
    /// at a fresh VN (see [`crate::resilience::RetryPolicy`]). On an
    /// unleased session this is just the liveness check.
    pub fn renew_lease(&self, hint: Duration) -> VnlResult<()> {
        self.assert_live()?;
        match self.lease {
            Some(id) if !self.table.version().leases().renew(id, hint) => {
                self.table.note_expiration();
                Err(self.table.expired_error(self.session_vn))
            }
            _ => Ok(()),
        }
    }

    /// Whether a pacer revoked this session's lease. The session may still
    /// pass the global check for a moment; a cooperative reader treats
    /// revocation as "wrap up and restart".
    pub fn lease_revoked(&self) -> bool {
        self.lease
            .is_some_and(|id| self.table.version().leases().is_revoked(id))
    }

    /// Publish this session's staleness (`currentVN − sessionVN`, the §3.2
    /// "how far behind the warehouse is this reader" measure) into the
    /// registry. Called at every scan/query entry point; reads the
    /// version's relaxed mirror so telemetry takes no latch and never
    /// charges the experiments' mirrored-I/O counters.
    fn note_staleness(&self) {
        if !wh_obs::is_enabled() {
            return;
        }
        let current = self.table.version().current_vn_relaxed();
        let lag = current.saturating_sub(self.session_vn);
        wh_obs::gauge!("vnl.reader.staleness").set(lag as i64);
        wh_obs::histogram!("vnl.reader.staleness_vns").record(lag);
        wh_obs::slo::note_staleness(lag);
    }

    /// Sampled [`ReaderSession::note_staleness`] for point-read entry
    /// points: a key lookup finishes in well under a microsecond, where
    /// even the lock-free staleness note is a measurable fraction of the
    /// operation, so only every 16th call records (the first always does).
    fn note_staleness_sampled(&self) {
        if !wh_obs::is_enabled() {
            return;
        }
        if self
            .staleness_probe
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed) // ordering: stat-counter Relaxed — independent event counter; read only for reporting
            .is_multiple_of(16)
        {
            self.note_staleness();
        }
    }

    /// The §4.1 global (pessimistic) expiration check against the Version
    /// relation: `(sessionVN = currentVN) ∨ (sessionVN = currentVN − 1 ∧
    /// ¬maintenanceActive)`, generalized for nVNL.
    pub fn status(&self) -> ReadOutcome {
        if self
            .table
            .version()
            .session_live(self.session_vn, self.table.effective_n())
        {
            ReadOutcome::Live
        } else {
            ReadOutcome::Expired
        }
    }

    /// Err variant of [`ReaderSession::status`], for `?`-chaining.
    pub fn assert_live(&self) -> VnlResult<()> {
        match self.status() {
            ReadOutcome::Live => Ok(()),
            ReadOutcome::Expired => {
                self.table.note_expiration();
                Err(self.table.expired_error(self.session_vn))
            }
        }
    }

    /// Scan the relation as of this session's version. Uses the per-tuple
    /// expiration detector: a tuple modified out from under the session
    /// raises [`VnlError::SessionExpired`].
    pub fn scan(&self) -> VnlResult<Vec<Row>> {
        let _ts = wh_obs::trace_span_under!("vnl.read.scan", self.span_ctx);
        let _lat = ReadProbe::start();
        self.note_staleness();
        self.table.scan_visible(self.session_vn)
    }

    /// Streaming twin of [`ReaderSession::scan`]: `visit` receives each
    /// visible row in heap order without the session materializing the
    /// relation. Invisible tuples are rejected on their encoded bytes
    /// before any row decode.
    pub fn scan_with<F>(&self, visit: F) -> VnlResult<()>
    where
        F: FnMut(Row) -> VnlResult<()>,
    {
        let _ts = wh_obs::trace_span_under!("vnl.read.scan", self.span_ctx);
        let _lat = ReadProbe::start();
        self.note_staleness();
        match self.pipeline {
            ScanPipeline::Scalar => self.table.scan_visible_with(self.session_vn, None, visit),
            ScanPipeline::Batched => {
                let scanner = self.batch_scanner(None);
                self.table
                    .scan_visible_batched(&scanner, self.session_vn, visit)
            }
        }
    }

    /// [`ReaderSession::scan_with`] with projection pushdown: rows carry
    /// only the base-schema columns listed in `cols`, in that order, and no
    /// other column is ever decoded.
    pub fn scan_projected_with<F>(&self, cols: &[usize], visit: F) -> VnlResult<()>
    where
        F: FnMut(Row) -> VnlResult<()>,
    {
        self.note_staleness();
        match self.pipeline {
            ScanPipeline::Scalar => {
                self.table
                    .scan_visible_with(self.session_vn, Some(cols), visit)
            }
            ScanPipeline::Batched => {
                let scanner = self.batch_scanner(Some(cols));
                self.table
                    .scan_visible_batched(&scanner, self.session_vn, visit)
            }
        }
    }

    /// Materializing form of [`ReaderSession::scan_projected_with`].
    pub fn scan_projected(&self, cols: &[usize]) -> VnlResult<Vec<Row>> {
        let mut out = Vec::new();
        self.scan_projected_with(cols, |row| {
            out.push(row);
            Ok(())
        })?;
        Ok(out)
    }

    /// Parallel partitioned scan: the heap is split into contiguous page
    /// ranges handled by up to `threads` workers, and `visit(worker, row)`
    /// runs on those workers. Exactly the rows of [`ReaderSession::scan`]
    /// are delivered (same Table 1 semantics at this session's version,
    /// including per-tuple expiration), but interleaving across workers is
    /// nondeterministic — within one worker, rows arrive in heap order.
    pub fn scan_parallel<F>(&self, threads: usize, visit: F) -> VnlResult<()>
    where
        F: Fn(usize, Row) -> VnlResult<()> + Sync,
    {
        let _ts = wh_obs::trace_span_under!("vnl.read.scan_parallel", self.span_ctx);
        let _lat = ReadProbe::start();
        self.note_staleness();
        match self.pipeline {
            ScanPipeline::Scalar => {
                self.table
                    .scan_visible_parallel(threads, self.session_vn, None, visit)
            }
            ScanPipeline::Batched => {
                let scanner = self.batch_scanner(None);
                self.table
                    .scan_visible_batched_parallel(threads, &scanner, self.session_vn, visit)
            }
        }
    }

    /// [`ReaderSession::scan_parallel`] with projection pushdown.
    pub fn scan_projected_parallel<F>(
        &self,
        threads: usize,
        cols: &[usize],
        visit: F,
    ) -> VnlResult<()>
    where
        F: Fn(usize, Row) -> VnlResult<()> + Sync,
    {
        self.note_staleness();
        match self.pipeline {
            ScanPipeline::Scalar => {
                self.table
                    .scan_visible_parallel(threads, self.session_vn, Some(cols), visit)
            }
            ScanPipeline::Batched => {
                let scanner = self.batch_scanner(Some(cols));
                self.table
                    .scan_visible_batched_parallel(threads, &scanner, self.session_vn, visit)
            }
        }
    }

    /// Count the rows visible to this session without decoding any of them
    /// — the batch pipeline's classify-only fast path (a selection bitmap
    /// popcount per page). Unaffected by [`ReaderSession::set_pipeline`]:
    /// there is no scalar analogue worth keeping.
    pub fn count(&self) -> VnlResult<u64> {
        self.note_staleness();
        self.table.count_visible(self.session_vn)
    }

    /// Build this session's batch scanner. `cols = None` decodes the full
    /// base row; `Some` decodes exactly those columns in that order.
    fn batch_scanner(&self, cols: Option<&[usize]>) -> BatchScanner {
        BatchScanner::new(self.table.layout(), self.table.storage().codec(), cols)
    }

    /// Point lookup by key (base-schema row whose key columns are set).
    /// `Ok(None)` when the tuple is logically absent at this version.
    pub fn read_by_key(&self, key_row: &[Value]) -> VnlResult<Option<Row>> {
        self.note_staleness_sampled();
        self.table.read_visible_by_key(key_row, self.session_vn)
    }

    /// Equality lookup through a §4.3 secondary index: all *visible* rows
    /// whose indexed columns equal `key` (values in index-column order).
    pub fn lookup_eq(&self, index: &str, key: &[Value]) -> VnlResult<Vec<Row>> {
        self.note_staleness_sampled();
        // The pin spans probe → resolve: GC may retire a probed tuple in
        // between, but cannot release (reuse) its slot while we hold the
        // epoch — the fetch then sees a clean miss, never foreign bytes.
        let _pin = self.table.epochs().pin();
        let rids = self.table.index_lookup_eq(index, key)?;
        self.resolve_rids(rids)
    }

    /// Range lookup through a secondary index: all visible rows whose
    /// indexed columns fall in `[lo, hi]` (inclusive; `None` = unbounded).
    pub fn lookup_range(
        &self,
        index: &str,
        lo: Option<&[Value]>,
        hi: Option<&[Value]>,
    ) -> VnlResult<Vec<Row>> {
        self.note_staleness_sampled();
        // Pin across probe → resolve; see `lookup_eq`.
        let _pin = self.table.epochs().pin();
        let rids = self.table.index_lookup_range(index, lo, hi)?;
        self.resolve_rids(rids)
    }

    /// Fetch + version-extract a set of RIDs, with per-tuple expiration
    /// detection (Table 1 applies at the index leaf exactly as in a scan).
    fn resolve_rids(&self, rids: Vec<wh_storage::Rid>) -> VnlResult<Vec<Row>> {
        let layout = self.table.layout();
        let mut out = Vec::with_capacity(rids.len());
        for rid in rids {
            let ext = match self.table.storage().read(rid) {
                Ok(e) => e,
                // The tuple may have been GC'd between index probe and fetch.
                Err(wh_storage::StorageError::NoSuchSlot { .. }) => continue,
                Err(e) => return Err(e.into()),
            };
            match crate::visibility::extract(layout, &ext, self.session_vn) {
                crate::visibility::Visible::Row(r) => out.push(r),
                crate::visibility::Visible::Ignore => {}
                crate::visibility::Visible::Expired => {
                    self.table.note_expiration();
                    return Err(self.table.expired_error(self.session_vn));
                }
            }
        }
        // Re-check the recovery fence after the resolves: a crash recovery
        // concurrent with this lookup may have reconstructed the slots the
        // resolves read from.
        self.table.fence_check(self.session_vn)?;
        Ok(out)
    }

    /// Run a SELECT over the session's consistent view using programmatic
    /// version extraction (always correct, including per-tuple expiration
    /// detection). The statement references base-schema columns.
    pub fn query(&self, sql: &str) -> VnlResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(VnlError::Sql(SqlError::Unsupported(
                "reader sessions are read-only".into(),
            )));
        };
        self.query_stmt(&select)
    }

    /// Like [`ReaderSession::query`] with a pre-parsed statement. The
    /// executor streams straight off the byte-level scan pipeline — WHERE
    /// is applied per tuple as it is extracted, never against a
    /// materialized snapshot (and on the batched pipeline, pushable WHERE
    /// conjuncts run inside the page classify kernel, before decode).
    pub fn query_stmt(&self, select: &SelectStmt) -> VnlResult<QueryResult> {
        let _ts = wh_obs::trace_span_under!("vnl.read.query", self.span_ctx);
        let _lat = ReadProbe::start();
        self.note_staleness();
        let (source, exec_stmt) = self.source_for(select)?;
        let res = execute_select(&source, &exec_stmt, &Params::new());
        source.settle(res)
    }

    /// Parallel form of [`ReaderSession::query`]: the scan is partitioned
    /// across up to `threads` workers and aggregates are folded into
    /// per-worker partial states merged at the end. Results are identical
    /// to the serial path (worker partitions are contiguous heap ranges
    /// merged in order) up to floating-point reassociation in SUM/AVG.
    pub fn query_parallel(&self, sql: &str, threads: usize) -> VnlResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(VnlError::Sql(SqlError::Unsupported(
                "reader sessions are read-only".into(),
            )));
        };
        self.query_stmt_parallel(&select, threads)
    }

    /// Like [`ReaderSession::query_parallel`] with a pre-parsed statement.
    pub fn query_stmt_parallel(
        &self,
        select: &SelectStmt,
        threads: usize,
    ) -> VnlResult<QueryResult> {
        let _ts = wh_obs::trace_span_under!("vnl.read.query_parallel", self.span_ctx);
        let _lat = ReadProbe::start();
        self.note_staleness();
        let (source, exec_stmt) = self.source_for(select)?;
        let res = execute_select_parallel(&source, &exec_stmt, &Params::new(), threads);
        source.settle(res)
    }

    /// Plan a statement against this session: build the scan source and the
    /// statement the executor should actually run. On the batched pipeline
    /// the two are planned together — pushable WHERE conjuncts move into
    /// the scanner's filter kernel (and out of the executor statement), and
    /// the *residual* statement's referenced columns drive projection
    /// pushdown, so a column referenced only by pushed filters is never
    /// decoded at all.
    fn source_for(&self, select: &SelectStmt) -> VnlResult<(SessionSource<'_>, SelectStmt)> {
        if select.from != self.table.name() {
            return Err(VnlError::Sql(SqlError::NoSuchTable(select.from.clone())));
        }
        let mut exec_stmt = select.clone();
        let scanner = match self.pipeline {
            ScanPipeline::Scalar => None,
            ScanPipeline::Batched => {
                let layout = self.table.layout();
                let codec = self.table.storage().codec();
                let filters: Vec<crate::scan::ColumnFilter> = match &select.where_clause {
                    Some(pred) => {
                        let (pushed, residual) =
                            wh_sql::extract_scan_filters(pred, layout.base_schema());
                        exec_stmt.where_clause = residual;
                        pushed.iter().map(kernel_filter).collect()
                    }
                    None => Vec::new(),
                };
                // Rows keep full base arity (the executor addresses columns
                // by index) but only the residual statement's referenced
                // columns decode.
                Some(match needed_base_cols(&exec_stmt, layout.base_schema()) {
                    Some(needed) => {
                        BatchScanner::new_sparse_filtered(layout, codec, &needed, &filters)
                    }
                    None if filters.is_empty() => BatchScanner::new(layout, codec, None),
                    None => {
                        let all: Vec<usize> = (0..layout.base_schema().arity()).collect();
                        BatchScanner::new_sparse_filtered(layout, codec, &all, &filters)
                    }
                })
            }
        };
        Ok((
            SessionSource {
                table: self.table,
                session_vn: self.session_vn,
                scanner,
                failure: Mutex::new(None),
            },
            exec_stmt,
        ))
    }

    /// Run a SELECT the way §4 deploys 2VNL on a stock DBMS: **rewrite** the
    /// query (CASE expressions + WHERE guard, Example 4.1), execute it
    /// directly against the extended physical table with `:sessionVN` bound,
    /// then apply the §4.1 global expiration check — rewritten SQL cannot
    /// detect expiration per tuple, so the check validates the result.
    pub fn query_via_rewrite(&self, sql: &str) -> VnlResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(VnlError::Sql(SqlError::Unsupported(
                "reader sessions are read-only".into(),
            )));
        };
        if select.from != self.table.name() {
            return Err(VnlError::Sql(SqlError::NoSuchTable(select.from)));
        }
        let _ts = wh_obs::trace_span_under!("vnl.read.query_rewrite", self.span_ctx);
        let _lat = ReadProbe::start();
        self.note_staleness();
        let rewritten = self.table.rewriter().rewrite_select(&select)?;
        let mut params = Params::new();
        params.insert("sessionVN".into(), Value::from(self.session_vn as i64));
        let result = execute_select(self.table.storage(), &rewritten, &params)?;
        self.assert_live()?;
        Ok(result)
    }

    /// End the session, deregistering it (and releasing its lease).
    pub fn finish(mut self) {
        self.release();
        self.finished = true;
    }

    fn release(&mut self) {
        if let Some(lease) = self.lease.take() {
            self.table.version().leases().release(lease);
        }
        self.table.end_session(self.id);
        wh_obs::trace::close_ctx(self.span_ctx, self.session_vn);
    }
}

impl Drop for ReaderSession<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.release();
        }
    }
}

/// Streaming row source over one session's consistent view: the SQL
/// executor pulls rows straight off [`VnlTable::scan_visible_with`] /
/// [`VnlTable::scan_visible_parallel`] — no intermediate snapshot.
///
/// The executor speaks [`SqlError`], but the scan can fail with
/// session-level errors (expiration, storage faults) that must surface as
/// [`VnlError`]. Those are stashed in `failure` and transported out of the
/// executor as [`wh_storage::StorageError::ScanAborted`]; [`Self::settle`]
/// unwraps the stash on the way back to the caller.
struct SessionSource<'a> {
    table: &'a VnlTable,
    session_vn: VersionNo,
    /// Batched pipeline: a statement-specific sparse scanner. `None` runs
    /// the scalar pipeline.
    scanner: Option<BatchScanner>,
    failure: Mutex<Option<VnlError>>,
}

impl SessionSource<'_> {
    /// Convert a scan-level [`VnlError`] into the [`SqlError`] the executor
    /// expects, stashing anything that has no SQL representation.
    fn smuggle(&self, e: VnlError) -> SqlError {
        match e {
            VnlError::Sql(sql) => sql,
            other => {
                let mut slot = self
                    .failure
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if slot.is_none() {
                    *slot = Some(other);
                }
                SqlError::Storage(wh_storage::StorageError::ScanAborted)
            }
        }
    }

    /// Resolve an executor result against the stash: the stashed
    /// [`VnlError`] wins (its paired `ScanAborted` was only the transport).
    fn settle(&self, res: SqlResult<QueryResult>) -> VnlResult<QueryResult> {
        let stashed = self
            .failure
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        match (res, stashed) {
            (_, Some(e)) => Err(e),
            (Err(e), None) => Err(VnlError::Sql(e)),
            (Ok(r), None) => Ok(r),
        }
    }
}

impl RowSource for SessionSource<'_> {
    fn schema(&self) -> &Schema {
        self.table.layout().base_schema()
    }

    fn for_each(&self, visit: &mut dyn FnMut(Row) -> SqlResult<()>) -> SqlResult<()> {
        match &self.scanner {
            Some(scanner) => self
                .table
                .scan_visible_batched(scanner, self.session_vn, |row| {
                    visit(row).map_err(VnlError::Sql)
                }),
            None => self.table.scan_visible_with(self.session_vn, None, |row| {
                visit(row).map_err(VnlError::Sql)
            }),
        }
        .map_err(|e| self.smuggle(e))
    }
}

impl ParallelRowSource for SessionSource<'_> {
    fn for_each_parallel(
        &self,
        threads: usize,
        visit: &(dyn Fn(usize, Row) -> SqlResult<()> + Sync),
    ) -> SqlResult<()> {
        match &self.scanner {
            Some(scanner) => self.table.scan_visible_batched_parallel(
                threads,
                scanner,
                self.session_vn,
                |worker, row| visit(worker, row).map_err(VnlError::Sql),
            ),
            None => {
                self.table
                    .scan_visible_parallel(threads, self.session_vn, None, |worker, row| {
                        visit(worker, row).map_err(VnlError::Sql)
                    })
            }
        }
        .map_err(|e| self.smuggle(e))
    }
}

/// The base-schema columns a SELECT references, for projection pushdown
/// into the batch decoder. `None` means "decode everything": `SELECT *`
/// (empty item list), or any name that does not resolve against the base
/// schema (the executor will fail it with a proper error — the scan must
/// not mask that by handing back a NULL column).
/// Translate a planned `wh_sql` scan filter into the kernel's
/// SQL-type-free form.
fn kernel_filter(f: &wh_sql::ScanFilter) -> crate::scan::ColumnFilter {
    use crate::scan::FilterOp as K;
    crate::scan::ColumnFilter {
        column: f.column,
        op: match f.op {
            wh_sql::FilterOp::Lt => K::Lt,
            wh_sql::FilterOp::LtEq => K::LtEq,
            wh_sql::FilterOp::Gt => K::Gt,
            wh_sql::FilterOp::GtEq => K::GtEq,
            wh_sql::FilterOp::Eq => K::Eq,
            wh_sql::FilterOp::NotEq => K::NotEq,
        },
        literal: f.literal,
    }
}

fn needed_base_cols(select: &SelectStmt, schema: &Schema) -> Option<Vec<usize>> {
    if select.items.is_empty() {
        return None;
    }
    let mut names = Vec::new();
    for item in &select.items {
        item.expr.referenced_columns(&mut names);
    }
    if let Some(w) = &select.where_clause {
        w.referenced_columns(&mut names);
    }
    for g in &select.group_by {
        g.referenced_columns(&mut names);
    }
    if let Some(h) = &select.having {
        h.referenced_columns(&mut names);
    }
    for k in &select.order_by {
        k.expr.referenced_columns(&mut names);
    }
    let mut cols = Vec::with_capacity(names.len());
    for name in &names {
        match schema.column_index(name) {
            Ok(i) => {
                if !cols.contains(&i) {
                    cols.push(i);
                }
            }
            Err(_) => return None,
        }
    }
    cols.sort_unstable();
    Some(cols)
}
