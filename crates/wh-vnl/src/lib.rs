//! **2VNL / nVNL** — the contribution of *On-Line Warehouse View Maintenance*
//! (Quass & Widom, SIGMOD 1997), implemented in full.
//!
//! A data warehouse has one writer — the batch **maintenance transaction** —
//! and many long-running read-only **reader sessions**. 2VNL exploits that
//! asymmetry: each tuple physically carries *two* logical versions (current
//! and pre-update), stamped with the version number (`tupleVN`) and logical
//! operation of the maintenance transaction that last touched it. Readers
//! pick the right version arithmetically — no locks, no blocking, full
//! serializability — and the whole scheme layers on a conventional DBMS via
//! query rewrite. nVNL generalizes to `n` versions so a session can survive
//! `n − 1` overlapping maintenance transactions.
//!
//! Crate map (paper section in parentheses):
//!
//! * [`schema_ext`] — extending a relation schema with version columns
//!   (§3.1, Figure 3) and the storage-overhead model.
//! * [`version`] — the global `currentVN` / `maintenanceActive` state, both
//!   latched in memory and mirrored in the single-tuple `Version` relation
//!   (§3, §4).
//! * [`visibility`] — Table 1 and its §5 generalization: which stored
//!   version a session sees.
//! * [`scan`] — the byte-level scan pipeline: Table 1 evaluated directly on
//!   encoded records with projection pushdown, feeding serial and parallel
//!   partitioned scans.
//! * [`table`] — [`VnlTable`], the versioned relation; sessions and
//!   maintenance transactions hang off it.
//! * [`maintenance`] — Tables 2–4 decision procedures, net effects, the
//!   commit protocol, and log-free rollback (§3.3, §4.2, §7).
//! * [`reader`] — reader sessions, both expiration detectors (§3.2, §4.1).
//! * [`rewrite`] — the query-rewrite implementation (§4, Example 4.1),
//!   generalized to nVNL.
//! * [`gc`] — garbage collection of logically-deleted tuples (§7).
//! * [`recovery`] — log-free crash recovery: reconstructing a consistent
//!   pre-transaction state from the tuple version slots alone (§7).
//! * [`durable`] — the disk tier: fuzzy checkpoints over a steal/no-force
//!   buffer pool and restart recovery from checkpoint + version slots —
//!   no write-ahead log (§7 taken to its durability conclusion).
//! * [`resilience`] — graceful degradation under reader/maintenance
//!   contention: session leases, expiration-aware retry, maintenance
//!   pacing, and the adaptive effective-`n` controller.
//! * [`adapter`] — a `wh_cc::ConcurrencyScheme` implementation so 2VNL runs
//!   head-to-head against S2PL/2V2PL/MV2PL in the §6 experiments.

pub mod adapter;
#[cfg(feature = "failpoints")]
pub mod crashmatrix;
pub mod delta;
pub mod durable;
pub(crate) mod epoch;
pub mod error;
pub mod gc;
pub mod maintenance;
pub mod reader;
pub mod recovery;
pub mod resilience;
pub mod rewrite;
pub mod scan;
pub mod schema_ext;
pub mod table;
pub mod version;
pub mod visibility;
pub mod warehouse;

pub use adapter::VnlStore;
pub use delta::{DeltaBatch, DeltaRow};
pub use durable::{checkpoint, create_durable, recover_from_disk, DiskRecoveryReport};
pub use error::{VnlError, VnlResult};
pub use maintenance::{MaintenanceTxn, PhysicalAction};
pub use reader::ScanPipeline;
pub use reader::{ReadOutcome, ReaderSession};
pub use recovery::{recover, RecoveryReport};
pub use resilience::{
    AdaptiveN, LeaseId, LeaseInfo, LeaseRegistry, MaintenancePacer, PaceReport, PacerPolicy,
    RepairEngine, Repaired, RetryPolicy, RetryStats,
};
pub use rewrite::QueryRewriter;
pub use scan::{
    BatchClasses, BatchScanner, ByteScanner, Classified, ColumnFilter, FilterOp, StrPool,
};
pub use schema_ext::{ExtLayout, StorageOverhead};
pub use table::VnlTable;
pub use version::{Operation, VersionNo, VersionState};
pub use visibility::Visible;
pub use warehouse::{Warehouse, WarehouseBuilder, WarehouseSession, WarehouseTxn};

/// Failpoints compiled into this crate under `--features failpoints`
/// (disarmed and zero-cost otherwise). Names are stable: the crash-matrix
/// driver enumerates this catalog.
pub const FAILPOINTS: &[&str] = &[
    "vnl.txn.insert.fresh",
    "vnl.txn.insert.register",
    "vnl.txn.insert.resurrect",
    "vnl.txn.update.save_pre",
    "vnl.txn.update.in_place",
    "vnl.txn.delete.mark",
    "vnl.txn.delete.remove_own",
    "vnl.txn.delete.mark_own_update",
    "vnl.txn.rollback.step",
    "vnl.version.begin",
    "vnl.version.publish_commit",
    "vnl.version.publish_abort",
    "vnl.gc.reclaim",
    "vnl.gc.unregister",
    "vnl.delta.capture",
    "vnl.delta.evict",
    "vnl.repair.apply",
];

/// §5's never-expire guarantee: with `n` versions, a minimum
/// inter-maintenance gap `i`, and minimum maintenance duration `m` (any time
/// unit), sessions no longer than `(n − 1)·(i + m) − m` are guaranteed never
/// to expire. Experiment E9 validates this against simulation.
pub fn guaranteed_session_length(n: u64, gap: u64, maintenance: u64) -> u64 {
    assert!(n >= 2, "nVNL requires n >= 2");
    (n - 1) * (gap + maintenance) - maintenance
}

/// Tune `n` for a workload (§5: "n can be tuned for the expected pattern of
/// reader sessions and maintenance transactions"): the smallest `n ≥ 2`
/// whose guarantee covers `max_session` given gap `i` and maintenance
/// duration `m`. Returns `None` when no finite `n` helps (`i + m = 0`).
pub fn choose_n(max_session: u64, gap: u64, maintenance: u64) -> Option<u64> {
    if gap + maintenance == 0 {
        return None;
    }
    // (n-1)(i+m) - m >= s  <=>  n >= (s + m)/(i + m) + 1
    let n = (max_session + maintenance).div_ceil(gap + maintenance) + 1;
    Some(n.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper_special_cases() {
        // §5: "2VNL guarantees that reader sessions lasting up to i never
        // expire. 3VNL ... up to 2i + m."
        let (i, m) = (10, 7);
        assert_eq!(guaranteed_session_length(2, i, m), i);
        assert_eq!(guaranteed_session_length(3, i, m), 2 * i + m);
        assert_eq!(guaranteed_session_length(4, i, m), 3 * i + 2 * m);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn formula_rejects_n_below_two() {
        guaranteed_session_length(1, 1, 1);
    }

    #[test]
    fn choose_n_is_tight() {
        for (s, i, m) in [
            (10u64, 10u64, 7u64),
            (100, 10, 7),
            (1, 60, 1380),
            (5000, 60, 1380),
        ] {
            let n = choose_n(s, i, m).unwrap();
            assert!(
                guaranteed_session_length(n, i, m) >= s,
                "n={n} too small for s={s} i={i} m={m}"
            );
            if n > 2 {
                assert!(
                    guaranteed_session_length(n - 1, i, m) < s,
                    "n={n} not minimal for s={s} i={i} m={m}"
                );
            }
        }
    }

    #[test]
    fn choose_n_edge_cases() {
        assert_eq!(choose_n(5, 0, 0), None);
        // Sessions shorter than the gap need only 2VNL.
        assert_eq!(choose_n(9, 10, 1440), Some(2));
        // Degenerate zero-length sessions still need two versions.
        assert_eq!(choose_n(0, 10, 10), Some(2));
    }
}
