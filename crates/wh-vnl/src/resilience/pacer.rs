//! Maintenance admission control: pace `publish_commit` around leased
//! readers.
//!
//! §4's commit protocol flips `currentVN` the instant the data changes are
//! in place — correct, but oblivious: the flip is what expires trailing
//! readers. The pacer inserts a policy decision in front of the flip. It
//! asks the [`super::LeaseRegistry`] which active leases would fail the
//! §4.1 global check *after* the flip (given the table's effective window)
//! and, per [`PacerPolicy`], waits for them to drain, waits a bounded
//! while, or revokes the stalest and proceeds.
//!
//! Pacing trades maintenance latency for reader survival — the on-line
//! counterpart of §5's observation that a larger maintenance gap `i`
//! lengthens the guaranteed session. It never compromises correctness:
//! an unleased or overrun reader still expires exactly as before.

use crate::error::VnlResult;
use crate::maintenance::MaintenanceTxn;
use crate::table::VnlTable;
use crate::version::VersionNo;
use std::time::{Duration, Instant};

/// What to do when committing would expire leased readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacerPolicy {
    /// Never expire a leased reader: poll until no at-risk lease remains.
    /// Bounded by the lease deadlines (a lease that stops renewing drops
    /// out), but a perpetually-renewed lease holds commits indefinitely —
    /// reserve for workloads whose readers are trusted to finish.
    Never,
    /// Wait up to the given duration for at-risk leases to drain, then
    /// commit regardless.
    BoundedDelay(Duration),
    /// Don't wait: revoke every at-risk lease (stalest first) and commit.
    /// Holders observe revocation via
    /// [`crate::ReaderSession::lease_revoked`] or on their next renewal.
    ExpireOldest,
}

/// What one paced commit did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaceReport {
    /// At-risk leases when pacing began.
    pub at_risk_before: usize,
    /// Time spent waiting for leases to drain.
    pub waited: Duration,
    /// Poll iterations while waiting.
    pub polls: u64,
    /// Leases revoked (`ExpireOldest` only).
    pub revoked: usize,
    /// At-risk leases remaining when the commit proceeded anyway (bounded
    /// delay ran out, or the staleness gauge said waiting was pointless).
    pub expired_through: usize,
}

/// Admission controller for maintenance commits.
#[derive(Debug, Clone)]
pub struct MaintenancePacer {
    policy: PacerPolicy,
    poll: Duration,
}

impl MaintenancePacer {
    /// A pacer with the given policy and a 100µs drain-poll interval.
    pub fn new(policy: PacerPolicy) -> Self {
        MaintenancePacer {
            policy,
            poll: Duration::from_micros(100),
        }
    }

    /// Override the drain-poll interval.
    pub fn with_poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// The configured policy.
    pub fn policy(&self) -> PacerPolicy {
        self.policy
    }

    /// Pace, then commit: the pacing decision runs against the txn's table
    /// and `maintenanceVN` immediately before [`MaintenanceTxn::commit`].
    pub fn commit(&self, txn: MaintenanceTxn<'_>) -> VnlResult<PaceReport> {
        let report = self.pace(txn.table(), txn.maintenance_vn());
        txn.commit()?;
        Ok(report)
    }

    /// The pacing decision alone: consult leases (and the wh-obs staleness
    /// gauge) and wait/revoke per policy, for callers owning a multi-table
    /// commit protocol. `vn_after` is the VN the commit will publish.
    pub fn pace(&self, table: &VnlTable, vn_after: VersionNo) -> PaceReport {
        let n = table.effective_n();
        let leases = table.version().leases();
        let mut report = PaceReport {
            at_risk_before: leases.at_risk(vn_after, n).len(),
            ..PaceReport::default()
        };
        if report.at_risk_before == 0 {
            return report;
        }
        match self.policy {
            PacerPolicy::ExpireOldest => {
                for lease in leases.at_risk(vn_after, n) {
                    if leases.revoke(lease.id) {
                        report.revoked += 1;
                    }
                }
                wh_obs::counter!("vnl.resilience.pacer.revoked").add(report.revoked as u64);
            }
            PacerPolicy::Never => {
                let start = Instant::now();
                report.expired_through = self.drain(table, vn_after, n, None, &mut report.polls);
                report.waited = start.elapsed();
            }
            PacerPolicy::BoundedDelay(budget) => {
                // Staleness consult: when the latest reader probe already
                // lags by the full window, a delay cannot save that reader —
                // it is past rescue whether or not this commit waits.
                let observed_lag = wh_obs::gauge!("vnl.reader.staleness").get();
                if observed_lag >= n as i64 {
                    wh_obs::counter!("vnl.resilience.pacer.stale_skips").inc();
                    report.expired_through = report.at_risk_before;
                } else {
                    let start = Instant::now();
                    report.expired_through =
                        self.drain(table, vn_after, n, Some(budget), &mut report.polls);
                    report.waited = start.elapsed();
                }
            }
        }
        if !report.waited.is_zero() {
            wh_obs::counter!("vnl.resilience.pacer.delayed_commits").inc();
            wh_obs::histogram!("vnl.resilience.pacer.delay_ns")
                .record(report.waited.as_nanos() as u64);
        }
        report
    }

    /// Poll until no at-risk lease remains or the budget runs out; returns
    /// how many were still at risk on exit.
    fn drain(
        &self,
        table: &VnlTable,
        vn_after: VersionNo,
        n: usize,
        budget: Option<Duration>,
        polls: &mut u64,
    ) -> usize {
        let start = Instant::now();
        loop {
            let risky = table.version().leases().at_risk(vn_after, n).len();
            if risky == 0 {
                return 0;
            }
            if budget.is_some_and(|b| start.elapsed() >= b) {
                return risky;
            }
            *polls += 1;
            std::thread::sleep(self.poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::{Column, DataType, Schema, Value};

    fn kv_table() -> VnlTable {
        let schema = Schema::with_key_names(
            vec![
                Column::new("key", DataType::Int64),
                Column::updatable("value", DataType::Int64),
            ],
            &["key"],
        )
        .unwrap();
        let t = VnlTable::create_named("kv", schema, 2).unwrap();
        t.load_initial(&[vec![Value::from(1), Value::from(0)]])
            .unwrap();
        t
    }

    #[test]
    fn unleased_readers_never_pace() {
        let t = kv_table();
        let _plain = t.begin_session();
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&vec![Value::from(1), Value::from(5)])
            .unwrap();
        let report = MaintenancePacer::new(PacerPolicy::Never)
            .commit(txn)
            .unwrap();
        assert_eq!(report, PaceReport::default());
    }

    #[test]
    fn fresh_leases_are_not_at_risk() {
        let t = kv_table();
        // A lease at the current VN survives one commit under n = 2.
        let leased = t.begin_leased_session(Duration::from_secs(5));
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&vec![Value::from(1), Value::from(5)])
            .unwrap();
        let report = MaintenancePacer::new(PacerPolicy::Never)
            .commit(txn)
            .unwrap();
        assert_eq!(report.at_risk_before, 0);
        leased.finish();
    }

    #[test]
    fn expire_oldest_revokes_and_commits_immediately() {
        let t = kv_table();
        let leased = t.begin_leased_session(Duration::from_secs(5)); // VN 1
        let txn = t.begin_maintenance().unwrap(); // VN 2
        txn.update_row(&vec![Value::from(1), Value::from(5)])
            .unwrap();
        txn.commit().unwrap();
        // Committing VN 3 would strand the VN-1 lease (3 − 1 ≥ 2).
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&vec![Value::from(1), Value::from(6)])
            .unwrap();
        let report = MaintenancePacer::new(PacerPolicy::ExpireOldest)
            .commit(txn)
            .unwrap();
        assert_eq!(report.at_risk_before, 1);
        assert_eq!(report.revoked, 1);
        assert!(report.waited.is_zero());
        assert!(leased.lease_revoked());
        leased.finish();
    }

    #[test]
    fn bounded_delay_commits_after_budget() {
        let t = kv_table();
        let leased = t.begin_leased_session(Duration::from_secs(5)); // VN 1
        let txn = t.begin_maintenance().unwrap();
        txn.commit().unwrap(); // VN 2
        let txn = t.begin_maintenance().unwrap(); // would publish VN 3
        let pacer = MaintenancePacer::new(PacerPolicy::BoundedDelay(Duration::from_millis(5)))
            .with_poll(Duration::from_micros(200));
        let report = pacer.commit(txn).unwrap();
        assert_eq!(report.at_risk_before, 1);
        // Whether the pacer waited the budget out or short-circuited on the
        // (process-global) staleness gauge, the held lease expires through.
        assert_eq!(report.expired_through, 1, "lease held through the budget");
        assert!(!leased.lease_revoked(), "bounded delay never revokes");
        leased.finish();
    }

    #[test]
    fn never_policy_waits_for_the_lease_to_finish() {
        let t = kv_table();
        let leased = t.begin_leased_session(Duration::from_millis(20)); // VN 1
        let txn = t.begin_maintenance().unwrap();
        txn.commit().unwrap(); // VN 2
        let txn = t.begin_maintenance().unwrap();
        let start = Instant::now();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(3));
                leased.finish();
            });
            let report = MaintenancePacer::new(PacerPolicy::Never)
                .with_poll(Duration::from_micros(200))
                .commit(txn)
                .unwrap();
            assert_eq!(report.at_risk_before, 1);
            assert_eq!(report.expired_through, 0);
        });
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(t.version().snapshot().current_vn, 3);
    }
}
