//! Adaptive nVNL: tune the effective version window on line.
//!
//! §5 tunes `n` statically — [`crate::choose_n`] picks the smallest window
//! covering the expected session length given the maintenance cadence.
//! [`AdaptiveN`] is the on-line counterpart: the table provisions physical
//! slots for some `n_max` up front (slot count is baked into the extended
//! schema and cannot change under live readers), and the controller moves
//! an *effective* window `n_eff ∈ [2, n_max]` from the observed expiration
//! rate.
//!
//! Only the §4.1 global (pessimistic) check and the pacer's at-risk
//! computation read `n_eff` ([`crate::VnlTable::effective_n`]); Table 1
//! extraction, `push_back`, and rollback always use the physical slot
//! count. Growing the window therefore *admits* older sessions the slots
//! already support, and shrinking it merely expires sessions earlier than
//! the slots strictly require — bounding reader staleness — so neither
//! direction can produce a wrong answer.
//!
//! The controller is deliberately simple: count expirations per committed
//! maintenance transaction over a decision window; grow on a high rate,
//! shrink after a quiet window. Hysteresis comes from the window length.

use crate::table::VnlTable;

/// Window-based controller for a table's effective `n`.
#[derive(Debug, Clone)]
pub struct AdaptiveN {
    /// Smallest window the controller will shrink to (≥ 2).
    min_n: usize,
    /// Largest window the controller will grow to (≤ physical `n`).
    max_n: usize,
    /// Commits per decision.
    window: u32,
    /// Expirations-per-commit rate at or above which the window grows.
    grow_at: f64,
    /// Rate at or below which the window shrinks.
    shrink_at: f64,
    commits_in_window: u32,
    expirations_at_window_start: u64,
    transitions: u64,
}

impl AdaptiveN {
    /// Controller spanning `[2, physical n]` for `table`, deciding every 4
    /// commits: grow at ≥ 0.5 expirations/commit, shrink at 0.
    pub fn for_table(table: &VnlTable) -> Self {
        Self::new(2, table.layout().n()).primed(table)
    }

    /// Controller with explicit bounds (clamped to `min ≥ 2`, `max ≥ min`).
    pub fn new(min_n: usize, max_n: usize) -> Self {
        let min_n = min_n.max(2);
        AdaptiveN {
            min_n,
            max_n: max_n.max(min_n),
            window: 4,
            grow_at: 0.5,
            shrink_at: 0.0,
            commits_in_window: 0,
            expirations_at_window_start: 0,
            transitions: 0,
        }
    }

    /// Override the decision window (min 1 commit).
    pub fn with_window(mut self, commits: u32) -> Self {
        self.window = commits.max(1);
        self
    }

    /// Override the grow/shrink rate thresholds (expirations per commit).
    pub fn with_thresholds(mut self, grow_at: f64, shrink_at: f64) -> Self {
        self.grow_at = grow_at;
        self.shrink_at = shrink_at.min(grow_at);
        self
    }

    /// Align the expiration baseline with the table's current counter so
    /// pre-controller expirations don't count against the first window.
    fn primed(mut self, table: &VnlTable) -> Self {
        self.expirations_at_window_start = table.expired_session_count();
        self
    }

    /// Window transitions decided so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Record one committed maintenance transaction and, at each window
    /// boundary, re-decide the table's effective `n`. Returns the new
    /// window when this commit changed it.
    pub fn observe_commit(&mut self, table: &VnlTable) -> Option<usize> {
        self.commits_in_window += 1;
        if self.commits_in_window < self.window {
            return None;
        }
        let expired = table.expired_session_count();
        let rate = expired.saturating_sub(self.expirations_at_window_start) as f64
            / f64::from(self.commits_in_window);
        self.commits_in_window = 0;
        self.expirations_at_window_start = expired;

        // The decision rule itself is a verified kernel (pure, but kept
        // next to the EffectiveWindow cell it drives).
        let target = wh_kernel::adaptive::decide(
            rate,
            table.effective_n(),
            self.min_n,
            self.max_n,
            self.grow_at,
            self.shrink_at,
        );
        if target == table.effective_n() {
            return None;
        }
        table.set_effective_n(target);
        self.transitions += 1;
        wh_obs::counter!("vnl.resilience.adaptive.transitions").inc();
        Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::{Column, DataType, Schema, Value};

    fn kv_table(n: usize) -> VnlTable {
        let schema = Schema::with_key_names(
            vec![
                Column::new("key", DataType::Int64),
                Column::updatable("value", DataType::Int64),
            ],
            &["key"],
        )
        .unwrap();
        let t = VnlTable::create_named("kv", schema, n).unwrap();
        t.load_initial(&[vec![Value::from(1), Value::from(0)]])
            .unwrap();
        t
    }

    fn commit_once(t: &VnlTable) {
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&vec![Value::from(1), Value::from(7)])
            .unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn grows_under_expirations_and_shrinks_when_quiet() {
        let t = kv_table(4);
        t.set_effective_n(2);
        let mut ctl = AdaptiveN::for_table(&t).with_window(1);
        // A noisy window: expirations per commit ≥ grow threshold.
        t.note_expiration();
        commit_once(&t);
        assert_eq!(ctl.observe_commit(&t), Some(3));
        t.note_expiration();
        commit_once(&t);
        assert_eq!(ctl.observe_commit(&t), Some(4));
        // At the physical cap, a noisy window cannot grow further.
        t.note_expiration();
        commit_once(&t);
        assert_eq!(ctl.observe_commit(&t), None);
        assert_eq!(t.effective_n(), 4);
        // Quiet windows walk it back down to the floor.
        commit_once(&t);
        assert_eq!(ctl.observe_commit(&t), Some(3));
        commit_once(&t);
        assert_eq!(ctl.observe_commit(&t), Some(2));
        commit_once(&t);
        assert_eq!(ctl.observe_commit(&t), None);
        assert_eq!(t.effective_n(), 2);
        assert_eq!(ctl.transitions(), 4);
    }

    #[test]
    fn no_decision_before_window_fills() {
        let t = kv_table(4);
        t.set_effective_n(2);
        let mut ctl = AdaptiveN::for_table(&t).with_window(3);
        for _ in 0..2 {
            t.note_expiration();
            commit_once(&t);
            assert_eq!(ctl.observe_commit(&t), None);
        }
        t.note_expiration();
        commit_once(&t);
        assert_eq!(ctl.observe_commit(&t), Some(3));
    }

    #[test]
    fn widened_window_keeps_sessions_alive_within_physical_slots() {
        let t = kv_table(4);
        t.set_effective_n(2);
        let s = t.begin_session(); // VN 1
        commit_once(&t); // VN 2
        commit_once(&t); // VN 3: 2 overlaps ≥ n_eff = 2 → globally expired
        assert!(s.assert_live().is_err());
        // Growing the window readmits the session — sound, because the
        // physical slots (n = 4) still hold its versions.
        t.set_effective_n(4);
        assert!(s.assert_live().is_ok());
        assert!(s.scan().is_ok(), "per-tuple extraction agrees");
        s.finish();
    }
}
