//! Reader-session leases: declared-work hints registered with the
//! warehouse-wide version state.
//!
//! A plain reader session is invisible to maintenance until it *fails* —
//! the version window moves, the session expires, the reader retries. A
//! *leased* session additionally tells the warehouse how much longer it
//! expects to run (the hint), renewable as work progresses. The
//! [`crate::resilience::MaintenancePacer`] reads the registry before the
//! version flip and can hold the flip (or revoke the stalest leases) when
//! committing would expire a load-bearing reader.
//!
//! A lease is advisory: it never blocks maintenance by itself, and an
//! expired or revoked lease degrades to exactly the base-layer behavior —
//! the session's next read raises `SessionExpired` and the retry layer
//! restarts it at a fresh VN.

use crate::version::VersionNo;
use std::time::{Duration, Instant};
// The slot bookkeeping is a verified kernel: `wh_kernel::lease` is the
// same source the wh-kernel model suite explores exhaustively (with
// integer timestamps; this wrapper supplies the wall clock).
use wh_kernel::lease::{LeaseCore, LeaseView};

/// Handle to one registered lease.
pub use wh_kernel::lease::LeaseId;

/// Point-in-time copy of one lease's state.
#[derive(Debug, Clone)]
pub struct LeaseInfo {
    /// The lease handle.
    pub id: LeaseId,
    /// The version the leased session reads.
    pub session_vn: VersionNo,
    /// When the declared work runs out (absent renewal).
    pub deadline: Instant,
    /// How many times the lease has been renewed.
    pub renewals: u64,
    /// Whether a pacer revoked the lease (`ExpireOldest`).
    pub revoked: bool,
}

/// Registry of active leases, owned by [`crate::VersionState`] so leases
/// are warehouse-wide like the version globals they protect.
pub struct LeaseRegistry {
    core: LeaseCore<Instant>,
}

impl Default for LeaseRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LeaseRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        LeaseRegistry {
            core: LeaseCore::new(),
        }
    }

    fn info(view: LeaseView<Instant>) -> LeaseInfo {
        LeaseInfo {
            id: view.id,
            session_vn: view.session_vn,
            deadline: view.deadline,
            renewals: view.renewals,
            revoked: view.revoked,
        }
    }

    /// Register a lease for a session at `session_vn` expecting to run for
    /// about `hint` more.
    pub fn register(&self, session_vn: VersionNo, hint: Duration) -> LeaseId {
        let id = self.core.register(session_vn, Instant::now() + hint);
        wh_obs::counter!("vnl.resilience.lease.granted").inc();
        wh_obs::trace_event!("vnl.lease.grant", id.raw());
        wh_obs::gauge!("vnl.resilience.active_leases").set(self.len() as i64);
        id
    }

    /// Extend a lease's deadline to `hint` from now. Returns `false` when
    /// the lease is gone or revoked — the holder should treat that as
    /// expiration and restart at a fresh VN.
    pub fn renew(&self, id: LeaseId, hint: Duration) -> bool {
        let renewed = self.core.renew(id, Instant::now() + hint);
        if renewed {
            wh_obs::counter!("vnl.resilience.lease.renewals").inc();
            wh_obs::trace_event!("vnl.lease.renew", id.raw());
        }
        renewed
    }

    /// Drop a lease (session finished).
    pub fn release(&self, id: LeaseId) {
        self.core.release(id);
        wh_obs::gauge!("vnl.resilience.active_leases").set(self.len() as i64);
    }

    /// Whether a pacer revoked this lease. Also `true` for a released or
    /// unknown lease — from the holder's perspective both mean "stop
    /// trusting this session".
    pub fn is_revoked(&self, id: LeaseId) -> bool {
        self.core.is_revoked(id)
    }

    /// Revoke a lease (pacer `ExpireOldest`). Returns `false` when already
    /// gone or revoked. Sticky: the wh-kernel model suite proves a renewal
    /// racing this can never resurrect the lease.
    pub fn revoke(&self, id: LeaseId) -> bool {
        let revoked = self.core.revoke(id);
        if revoked {
            wh_obs::counter!("vnl.resilience.lease.revocations").inc();
            wh_obs::trace_event!("vnl.lease.revoke", id.raw());
        }
        revoked
    }

    /// Number of registered leases (including expired/revoked ones whose
    /// sessions have not finished yet).
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// Whether no leases are registered.
    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }

    /// Leases still within their deadline and not revoked.
    pub fn active(&self) -> Vec<LeaseInfo> {
        self.core
            .active(Instant::now())
            .into_iter()
            .map(Self::info)
            .collect()
    }

    /// Active leases that would fail the §4.1 global check right after a
    /// commit publishes `vn_after` with an effective window of `n`:
    /// `vn_after − sessionVN ≥ n`. These are the readers a commit would
    /// expire — the pacer's working set, stalest first.
    pub fn at_risk(&self, vn_after: VersionNo, n: usize) -> Vec<LeaseInfo> {
        self.core
            .at_risk(vn_after, n, Instant::now())
            .into_iter()
            .map(Self::info)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_lifecycle() {
        let reg = LeaseRegistry::new();
        assert!(reg.is_empty());
        let id = reg.register(5, Duration::from_secs(10));
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_revoked(id));
        assert!(reg.renew(id, Duration::from_secs(10)));
        assert_eq!(reg.active()[0].renewals, 1);
        reg.release(id);
        assert!(reg.is_empty());
        // Released leases read as revoked and refuse renewal.
        assert!(reg.is_revoked(id));
        assert!(!reg.renew(id, Duration::from_secs(1)));
    }

    #[test]
    fn expired_deadline_drops_out_of_active() {
        let reg = LeaseRegistry::new();
        let _short = reg.register(1, Duration::ZERO);
        let long = reg.register(2, Duration::from_secs(60));
        let active = reg.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].session_vn, 2);
        assert_eq!(reg.len(), 2, "expired leases stay registered");
        reg.release(long);
    }

    #[test]
    fn revocation_is_sticky() {
        let reg = LeaseRegistry::new();
        let id = reg.register(1, Duration::from_secs(60));
        assert!(reg.revoke(id));
        assert!(!reg.revoke(id), "second revoke is a no-op");
        assert!(reg.is_revoked(id));
        assert!(!reg.renew(id, Duration::from_secs(60)));
        assert!(reg.active().is_empty());
    }

    #[test]
    fn at_risk_orders_stalest_first() {
        let reg = LeaseRegistry::new();
        let hint = Duration::from_secs(60);
        reg.register(3, hint);
        reg.register(1, hint);
        reg.register(5, hint);
        // Committing VN 5 with n = 2 strands sessions at VN ≤ 3.
        let risky = reg.at_risk(5, 2);
        let vns: Vec<u64> = risky.iter().map(|l| l.session_vn).collect();
        assert_eq!(vns, vec![1, 3]);
        // A wider window saves them all.
        assert!(reg.at_risk(5, 5).is_empty());
    }
}
