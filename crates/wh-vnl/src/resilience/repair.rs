//! Session repair: fix up an expired reader from the maintenance delta
//! instead of restarting it.
//!
//! The paper's answer to expiration (§4.1) is restart-and-rescan: throw the
//! partial result away and re-read everything at a fresh VN. But the
//! session's result is wrong by *exactly* the keys the overlapping
//! maintenance transactions touched — and each commit retained its net
//! effect as a [`DeltaBatch`] in the version state's bounded delta log.
//! [`RepairEngine`] replays the window `(sessionVN, currentVN]` against the
//! session's view and re-admits it at `currentVN` under the §4.1 global
//! check, turning an O(relation) restart into an O(delta) patch.
//!
//! Every entry point returns `Ok(None)` — **decline** — whenever repair
//! cannot be proven equivalent to a rescan: the window was evicted, a batch
//! is unrepairable (keyless table), the session predates the recovery
//! floor, a tuple expired past the fetched window, or the current VN kept
//! advancing faster than the engine could chase it. Callers (the
//! [`super::RetryPolicy`] repair-first path) treat a decline as "fall back
//! to restart", never as an answer — the fail-closed discipline the
//! wh-kernel `delta_repair_equals_rescan` model underwrites.
//!
//! Three repair shapes:
//!
//! * **Scans** ([`RepairEngine::scan_at_current`]) — rebuild the visible
//!   row set at `sessionVN` keyed by primary key (tuples whose slots were
//!   overwritten are *reconstructed* from the window's first pre-image),
//!   then roll the key map forward through the deltas.
//! * **Point lookups** ([`RepairEngine::read_key_at_current`]) — if the
//!   window touched the key, the latest post-image is the answer; otherwise
//!   a point read at `currentVN` sees exactly what the session saw.
//! * **Queries** ([`RepairEngine::query_at_current`]) — aggregate
//!   statements patch a streaming per-group partial-aggregate state
//!   ([`wh_sql::AggPatcher`]): SUM/COUNT/AVG retract in place, MIN/MAX fall
//!   back to a per-affected-group rescan of the repaired rows. Anything
//!   else re-executes over the repaired row set.

use crate::delta::DeltaBatch;
use crate::error::{VnlError, VnlResult};
use crate::reader::ReaderSession;
use crate::table::VnlTable;
use crate::version::{Operation, VersionNo};
use crate::visibility::{self, Visible};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use wh_index::IndexKey;
use wh_sql::{execute_select, AggPatcher, Params, QueryResult, RowSource, SelectStmt};
use wh_types::fail_point;
use wh_types::{Row, Schema, Value};

/// How many times [`RepairEngine`] re-fetches an extension window when
/// maintenance commits land while it is rolling forward. A warehouse that
/// outruns eight chase rounds is expiring sessions faster than repair can
/// help; restart is the right call.
const MAX_EXTEND_ROUNDS: usize = 8;

/// A successfully repaired row set.
#[derive(Debug, Clone, PartialEq)]
pub struct Repaired {
    /// The visible rows at [`Repaired::vn`], in **primary-key order** (the
    /// repair map is keyed; heap scan order is not reconstructible).
    pub rows: Vec<Row>,
    /// The VN the rows are consistent at — re-lease the session here.
    pub vn: VersionNo,
    /// Delta rows replayed.
    pub patched: u64,
    /// Tuples whose physical slots had been overwritten (or GC-reclaimed)
    /// and were rebuilt from the window's first pre-image.
    pub reconstructed: u64,
}

/// Outcome of rolling a key map forward through the delta window(s).
struct Roll {
    patched: u64,
    vn: VersionNo,
    /// Every batch applied, in order (initial window plus chase rounds) —
    /// the aggregate path replays these against its per-group state.
    batches: Vec<Arc<DeltaBatch>>,
}

/// Repairs expired reader sessions of one table from the delta log.
pub struct RepairEngine<'t> {
    table: &'t VnlTable,
}

/// Count a decline and hand the caller the restart-fallback signal.
fn decline<T>() -> VnlResult<Option<T>> {
    wh_obs::counter!("vnl.resilience.repair.fallback").add(1);
    Ok(None)
}

/// The single admission gate every repair entry point passes through.
fn repair_admitted() -> bool {
    wh_obs::trace_event!("vnl.repair.apply");
    // trace: repair admission instant; an injected fault at this point
    // forces the restart fallback, which the crash matrix proves safe.
    fail_point!("vnl.repair.apply", false);
    true
}

impl<'t> RepairEngine<'t> {
    /// A repair engine over `table`'s delta log.
    pub fn new(table: &'t VnlTable) -> Self {
        RepairEngine { table }
    }

    /// The table this engine repairs sessions of.
    pub fn table(&self) -> &'t VnlTable {
        self.table
    }

    /// Rebuild the full visible row set of a session at `session_vn`, keyed
    /// by primary key, plus the delta window to `currentVN`. `Ok(None)`
    /// declines to the restart fallback.
    #[allow(clippy::type_complexity)]
    fn complete_at(
        &self,
        session_vn: VersionNo,
    ) -> VnlResult<
        Option<(
            BTreeMap<IndexKey, Row>,
            Vec<Arc<DeltaBatch>>,
            VersionNo,
            u64,
        )>,
    > {
        let base = self.table.layout().base_schema();
        if !base.has_key() {
            return decline();
        }
        let version = self.table.version();
        if session_vn < version.recovery_floor() {
            return decline();
        }
        // Latched read: a batch for every VN this peek observes is already
        // retained (publish_commit_with retains inside the same latch hold).
        let current_vn = version.peek().current_vn;
        let Some(window) = version.delta_window(session_vn, current_vn) else {
            return decline();
        };
        if window.iter().any(|b| !b.repairable) {
            return decline();
        }
        // The earliest pre-image per key in the window is that key's value
        // at `session_vn`: the first commit to touch a key after the
        // session began saved what the session was seeing.
        let mut first_pre: HashMap<IndexKey, Option<Row>> = HashMap::new();
        for b in &window {
            for r in b.rows_for(self.table.name()) {
                first_pre
                    .entry(IndexKey(r.key.clone()))
                    .or_insert_with(|| r.pre.clone());
            }
        }
        let mut map: BTreeMap<IndexKey, Row> = BTreeMap::new();
        let mut reconstructed: u64 = 0;
        for (_rid, ext) in self.table.scan_raw()? {
            match visibility::extract(self.table.layout(), &ext, session_vn) {
                Visible::Row(row) => {
                    map.insert(IndexKey(base.key_of(&row)), row);
                }
                Visible::Ignore => {}
                Visible::Expired => {
                    // Key attributes are never updatable, so the overwritten
                    // tuple's current values still carry its key.
                    let key = IndexKey(base.key_of(&self.table.layout().current_values(&ext)));
                    match first_pre.get(&key) {
                        Some(Some(pre)) => {
                            map.insert(key, pre.clone());
                            reconstructed += 1;
                        }
                        // Net-inserted within the window: absent at
                        // `session_vn`, and the roll-forward re-adds it.
                        Some(None) => reconstructed += 1,
                        // Overwritten by a commit outside the fetched
                        // window (it raced this repair): not provably
                        // reconstructible.
                        None => return decline(),
                    }
                }
            }
        }
        // Tuples GC physically reclaimed leave no extended row to extract;
        // their value at `session_vn` is the window's first pre-image.
        for (key, pre) in first_pre {
            if let Some(pre) = pre {
                if let std::collections::btree_map::Entry::Vacant(e) = map.entry(key) {
                    e.insert(pre);
                    reconstructed += 1;
                }
            }
        }
        Ok(Some((map, window, current_vn, reconstructed)))
    }

    /// Replay `window` (and any extension windows that commit while we
    /// work) against `map`, producing the VN the map is now consistent at.
    fn roll_forward(
        &self,
        map: &mut BTreeMap<IndexKey, Row>,
        mut window: Vec<Arc<DeltaBatch>>,
        mut upto: VersionNo,
    ) -> VnlResult<Option<Roll>> {
        let version = self.table.version();
        let mut applied: Vec<Arc<DeltaBatch>> = Vec::new();
        let mut patched: u64 = 0;
        for _ in 0..MAX_EXTEND_ROUNDS {
            for b in &window {
                for r in b.rows_for(self.table.name()) {
                    patched += 1;
                    match r.op {
                        Operation::Delete => {
                            map.remove(&IndexKey(r.key.clone()));
                        }
                        _ => {
                            // A net insert/update always carries its
                            // post-image; a batch that lost it cannot
                            // drive repair.
                            let Some(post) = r.post.clone() else {
                                return decline();
                            };
                            map.insert(IndexKey(r.key.clone()), post);
                        }
                    }
                }
            }
            applied.append(&mut window);
            // Recovery wipes the delta log (repair state never survives a
            // restart); a raised floor proves one happened mid-repair.
            if upto < version.recovery_floor() {
                return decline();
            }
            let now = version.peek().current_vn;
            if now == upto {
                wh_obs::counter!("vnl.resilience.repair.patched_rows").add(patched);
                return Ok(Some(Roll {
                    patched,
                    vn: upto,
                    batches: applied,
                }));
            }
            // Commits landed while we replayed: chase them.
            let Some(ext) = version.delta_window(upto, now) else {
                return decline();
            };
            if ext.iter().any(|b| !b.repairable) {
                return decline();
            }
            window = ext;
            upto = now;
        }
        decline()
    }

    /// Repair a full-scan session that expired at `session_vn`: the rows it
    /// *would* read if restarted at `currentVN`, without rescanning
    /// unaffected tuples. `Ok(None)` declines to the restart fallback.
    pub fn scan_at_current(&self, session_vn: VersionNo) -> VnlResult<Option<Repaired>> {
        let _span = wh_obs::trace_span!("vnl.repair.scan");
        if !repair_admitted() {
            return decline();
        }
        let Some((mut map, window, current_vn, reconstructed)) = self.complete_at(session_vn)?
        else {
            return Ok(None);
        };
        let Some(roll) = self.roll_forward(&mut map, window, current_vn)? else {
            return Ok(None);
        };
        Ok(Some(Repaired {
            rows: map.into_values().collect(),
            vn: roll.vn,
            patched: roll.patched,
            reconstructed,
        }))
    }

    /// Repair an expired point lookup. Returns the row (or its absence) as
    /// of the returned VN. `Ok(None)` declines to the restart fallback.
    #[allow(clippy::type_complexity)]
    pub fn read_key_at_current(
        &self,
        session_vn: VersionNo,
        key_row: &[Value],
    ) -> VnlResult<Option<(Option<Row>, VersionNo)>> {
        let _span = wh_obs::trace_span!("vnl.repair.lookup");
        if !repair_admitted() {
            return decline();
        }
        let base = self.table.layout().base_schema();
        if !base.has_key() {
            return decline();
        }
        let version = self.table.version();
        if session_vn < version.recovery_floor() {
            return decline();
        }
        let current_vn = version.peek().current_vn;
        let Some(window) = version.delta_window(session_vn, current_vn) else {
            return decline();
        };
        if window.iter().any(|b| !b.repairable) {
            return decline();
        }
        // Touched in the window: the latest post-image is the answer.
        let mut touched = None;
        for b in &window {
            for r in b.rows_for(self.table.name()) {
                if r.key.as_slice() == key_row {
                    touched = Some(r.post.clone());
                }
            }
        }
        if let Some(post) = touched {
            wh_obs::counter!("vnl.resilience.repair.patched_rows").add(1);
            return Ok(Some((post, current_vn)));
        }
        // Untouched by any commit in the window: a point read at
        // `currentVN` sees exactly what the session was seeing.
        match self.table.read_visible_by_key(key_row, current_vn) {
            Ok(row) => Ok(Some((row, current_vn))),
            Err(VnlError::SessionExpired { .. }) => decline(),
            Err(e) => Err(e),
        }
    }

    /// Repair an expired SELECT: re-answer `stmt` as of the returned VN
    /// without a full rescan. Aggregate statements patch per-group partial
    /// aggregates in place (MIN/MAX per-affected-group rescan fallback);
    /// everything else re-executes over the repaired row set. `Ok(None)`
    /// declines to the restart fallback.
    pub fn query_at_current(
        &self,
        session_vn: VersionNo,
        stmt: &SelectStmt,
        params: &Params,
    ) -> VnlResult<Option<(QueryResult, VersionNo)>> {
        let _span = wh_obs::trace_span!("vnl.repair.query");
        if stmt.from != self.table.name() {
            return decline();
        }
        if !repair_admitted() {
            return decline();
        }
        let Some((mut map, window, current_vn, _)) = self.complete_at(session_vn)? else {
            return Ok(None);
        };
        let base = self.table.layout().base_schema();
        // Aggregate path: fold the session's base rows into per-group
        // accumulators, then patch each delta against them. `Unsupported`
        // (non-aggregate, or a shape patching cannot mirror exactly) falls
        // through to plain re-execution over the repaired rows.
        if let Ok(mut patcher) = AggPatcher::new(base, stmt, params) {
            for row in map.values() {
                if patcher.fold(row).is_err() {
                    return decline();
                }
            }
            let Some(roll) = self.roll_forward(&mut map, window, current_vn)? else {
                return Ok(None);
            };
            for b in &roll.batches {
                for r in b.rows_for(self.table.name()) {
                    if patcher.apply(r.pre.as_ref(), r.post.as_ref()).is_err() {
                        return decline();
                    }
                }
            }
            if patcher.has_dirty() {
                // MIN/MAX retracted an extremum: rebuild just those groups
                // from the repaired (current-VN) rows.
                if patcher.rescan_dirty(map.values()).is_err() {
                    return decline();
                }
            }
            return match patcher.finish() {
                Ok(result) => Ok(Some((result, roll.vn))),
                // A restart would surface the same statement error; let it.
                Err(_) => decline(),
            };
        }
        let Some(roll) = self.roll_forward(&mut map, window, current_vn)? else {
            return Ok(None);
        };
        let rows: Vec<Row> = map.into_values().collect();
        let source = MemSource {
            schema: base,
            rows: &rows,
        };
        match execute_select(&source, stmt, params) {
            Ok(result) => Ok(Some((result, roll.vn))),
            // A restart would surface the same statement error; let it.
            Err(_) => decline(),
        }
    }

    /// Roll an already-complete (but stale) row set forward to `currentVN`.
    /// This is the repair primitive for callers that buffered a finished
    /// read at `stale_vn` and only later learned the warehouse moved on.
    pub fn repair_rows(&self, stale_vn: VersionNo, rows: Vec<Row>) -> VnlResult<Option<Repaired>> {
        let _span = wh_obs::trace_span!("vnl.repair.rows");
        if !repair_admitted() {
            return decline();
        }
        let base = self.table.layout().base_schema();
        if !base.has_key() {
            return decline();
        }
        let version = self.table.version();
        if stale_vn < version.recovery_floor() {
            return decline();
        }
        let current_vn = version.peek().current_vn;
        let Some(window) = version.delta_window(stale_vn, current_vn) else {
            return decline();
        };
        if window.iter().any(|b| !b.repairable) {
            return decline();
        }
        let mut map: BTreeMap<IndexKey, Row> = rows
            .into_iter()
            .map(|r| (IndexKey(base.key_of(&r)), r))
            .collect();
        let Some(roll) = self.roll_forward(&mut map, window, current_vn)? else {
            return Ok(None);
        };
        Ok(Some(Repaired {
            rows: map.into_values().collect(),
            vn: roll.vn,
            patched: roll.patched,
            reconstructed: 0,
        }))
    }

    /// Re-admit a repaired session at `vn` under the §4.1 global check.
    /// `None` means the window moved again before the session could
    /// register — the caller should restart after all.
    pub fn resume_session(&self, vn: VersionNo) -> Option<ReaderSession<'t>> {
        let version = self.table.version();
        let n = self.table.effective_n();
        if !version.session_live(vn, n) {
            return None;
        }
        let session = self.table.begin_session_at(vn);
        // Re-check under registration: a flip between the check and the
        // begin could have invalidated `vn`.
        if version.session_live(vn, n) {
            Some(session)
        } else {
            session.finish();
            None
        }
    }
}

/// In-memory [`RowSource`] over repaired rows for plain-path re-execution.
struct MemSource<'a> {
    schema: &'a Schema,
    rows: &'a [Row],
}

impl RowSource for MemSource<'_> {
    fn schema(&self) -> &Schema {
        self.schema
    }

    fn for_each(
        &self,
        visit: &mut dyn FnMut(Row) -> wh_sql::SqlResult<()>,
    ) -> wh_sql::SqlResult<()> {
        for row in self.rows {
            visit(row.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::{Column, DataType, Schema};

    fn kv(n: usize) -> VnlTable {
        let schema = Schema::with_key(
            vec![
                Column::new("k", DataType::Int64),
                Column::updatable("v", DataType::Int64),
            ],
            vec![0],
        )
        .unwrap();
        let t = VnlTable::create_named("t", schema, n).unwrap();
        t.load_initial(
            &(0..8)
                .map(|i| vec![Value::from(i), Value::from(i * 10)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        t
    }

    fn commit_update(t: &VnlTable, k: i64, v: i64) {
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&vec![Value::from(k), Value::from(v)])
            .unwrap();
        txn.commit().unwrap();
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by_key(|a| IndexKey(a.clone()));
        rows
    }

    #[test]
    fn scan_repair_equals_rescan() {
        let t = kv(2);
        let stale = t.begin_session();
        let svn = stale.session_vn();
        stale.finish();
        // Three commits: update, insert, delete.
        commit_update(&t, 3, 999);
        {
            let txn = t.begin_maintenance().unwrap();
            txn.insert(vec![Value::from(100), Value::from(1)]).unwrap();
            txn.commit().unwrap();
        }
        {
            let txn = t.begin_maintenance().unwrap();
            txn.delete_row(&vec![Value::from(0), Value::from(0)])
                .unwrap();
            txn.commit().unwrap();
        }
        let engine = RepairEngine::new(&t);
        let repaired = engine.scan_at_current(svn).unwrap().expect("repairable");
        let fresh = t.begin_session();
        assert_eq!(repaired.vn, fresh.session_vn());
        assert_eq!(sorted(repaired.rows.clone()), sorted(fresh.scan().unwrap()));
        assert!(repaired.patched >= 3);
        fresh.finish();
    }

    #[test]
    fn evicted_window_declines_to_restart() {
        let t = kv(2);
        let stale = t.begin_session();
        let svn = stale.session_vn();
        stale.finish();
        commit_update(&t, 1, 111);
        t.version().clear_deltas();
        let engine = RepairEngine::new(&t);
        assert!(engine.scan_at_current(svn).unwrap().is_none());
    }

    #[test]
    fn lookup_repair_touched_and_untouched() {
        let t = kv(2);
        let svn = {
            let s = t.begin_session();
            let vn = s.session_vn();
            s.finish();
            vn
        };
        commit_update(&t, 5, 555);
        let engine = RepairEngine::new(&t);
        // Touched key: answered from the delta alone.
        let (row, vn) = engine
            .read_key_at_current(svn, &[Value::from(5)])
            .unwrap()
            .expect("repairable");
        assert_eq!(row, Some(vec![Value::from(5), Value::from(555)]));
        // Untouched key: answered by a point read at the new VN.
        let (row, vn2) = engine
            .read_key_at_current(svn, &[Value::from(2)])
            .unwrap()
            .expect("repairable");
        assert_eq!(row, Some(vec![Value::from(2), Value::from(20)]));
        assert_eq!(vn, vn2);
    }

    #[test]
    fn aggregate_query_repair_matches_fresh_execution() {
        let t = kv(2);
        let svn = {
            let s = t.begin_session();
            let vn = s.session_vn();
            s.finish();
            vn
        };
        commit_update(&t, 3, 999);
        commit_update(&t, 4, 1);
        let sql = "SELECT SUM(v), COUNT(*), MIN(v), MAX(v) FROM t";
        let wh_sql::Statement::Select(stmt) = wh_sql::parse_statement(sql).unwrap() else {
            panic!("not a select");
        };
        let engine = RepairEngine::new(&t);
        let (repaired, _) = engine
            .query_at_current(svn, &stmt, &Params::new())
            .unwrap()
            .expect("repairable");
        let fresh = t.begin_session();
        assert_eq!(repaired, fresh.query_stmt(&stmt).unwrap());
        fresh.finish();
    }

    #[test]
    fn repair_rows_rolls_a_stale_buffer_forward() {
        let t = kv(2);
        let s = t.begin_session();
        let svn = s.session_vn();
        let stale_rows = s.scan().unwrap();
        s.finish();
        commit_update(&t, 7, 777);
        let engine = RepairEngine::new(&t);
        let repaired = engine
            .repair_rows(svn, stale_rows)
            .unwrap()
            .expect("repairable");
        let fresh = t.begin_session();
        assert_eq!(sorted(repaired.rows.clone()), sorted(fresh.scan().unwrap()));
        fresh.finish();
    }

    #[test]
    fn resume_session_re_admits_at_current_vn() {
        let t = kv(2);
        commit_update(&t, 1, 11);
        let engine = RepairEngine::new(&t);
        let vn = t.version().peek().current_vn;
        let session = engine.resume_session(vn).expect("current VN is live");
        assert_eq!(session.session_vn(), vn);
        session.finish();
        // A long-dead VN is refused.
        assert!(engine.resume_session(0).is_none() || vn == 0);
    }

    #[test]
    fn expired_tuple_is_reconstructed_from_first_pre_image() {
        // n = 2: two commits to the same key overwrite both version slots,
        // expiring the stale session's view of it — the repair must fall
        // back to the delta's first pre-image.
        let t = kv(2);
        let svn = {
            let s = t.begin_session();
            let vn = s.session_vn();
            s.finish();
            vn
        };
        commit_update(&t, 2, 201);
        commit_update(&t, 2, 202);
        let engine = RepairEngine::new(&t);
        let repaired = engine.scan_at_current(svn).unwrap().expect("repairable");
        assert!(
            repaired.reconstructed >= 1,
            "slot overwrite must reconstruct"
        );
        let fresh = t.begin_session();
        assert_eq!(sorted(repaired.rows.clone()), sorted(fresh.scan().unwrap()));
        fresh.finish();
    }
}
