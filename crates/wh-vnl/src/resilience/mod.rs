//! Graceful degradation under reader/maintenance contention.
//!
//! The paper's central trade-off (§5) is that 2VNL/nVNL never blocks
//! readers but may *expire* a session whose version gets overwritten. The
//! base layer surfaces that as [`crate::VnlError::SessionExpired`] and
//! leaves recovery to the caller. This module closes the loop, treating
//! version-unavailability as a recoverable condition with admission control
//! and bounded retry rather than an error:
//!
//! * [`lease`] — lease-based reader sessions: a session registers an
//!   expected-remaining-work hint with the warehouse-wide
//!   [`crate::VersionState`], so the system knows which VNs are
//!   load-bearing, and renews the lease as work progresses.
//! * [`retry`] — [`RetryPolicy`]: bounded attempts, jittered exponential
//!   backoff, and a deadline budget, transparently re-executing an expired
//!   read or query at a fresh VN. Each attempt buffers its output and
//!   discards it wholesale on expiration (the cursor-restart protocol), so
//!   partial scans never leak mixed-version rows.
//! * [`pacer`] — [`MaintenancePacer`]: admission control in front of
//!   `publish_commit`. Consults the active leases and the wh-obs staleness
//!   gauge, and — per policy — delays the version flip while it would
//!   expire a leased reader, or revokes the stalest leases and proceeds.
//! * [`adaptive`] — [`AdaptiveN`]: grows/shrinks the *effective* version
//!   window (within the physically provisioned slot count) from the
//!   observed expiration rate, the on-line counterpart of §5's static
//!   [`crate::choose_n`].
//! * [`repair`] — [`RepairEngine`]: fixes an expired session up from the
//!   maintenance commits' retained net-effect deltas instead of restarting
//!   it, re-admitting the session at `currentVN`; the retry layer tries
//!   repair first and falls back to restart when repair declines.
//!
//! The effective window governs only the §4.1 *global* (pessimistic)
//! liveness check; the physical slot mechanics — `push_back`, rollback,
//! Table 1 extraction — always use the provisioned `n`, so shrinking the
//! window is strictly conservative and can never cause a wrong answer.

pub mod adaptive;
pub mod lease;
pub mod pacer;
pub mod repair;
pub mod retry;

pub use adaptive::AdaptiveN;
pub use lease::{LeaseId, LeaseInfo, LeaseRegistry};
pub use pacer::{MaintenancePacer, PaceReport, PacerPolicy};
pub use repair::{RepairEngine, Repaired};
pub use retry::{RetryPolicy, RetryStats};
