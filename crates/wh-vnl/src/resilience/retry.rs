//! Expiration-aware retry: re-execute an expired read at a fresh VN.
//!
//! §4.1 prescribes what a reader does when its session expires — "begin a
//! new session" — but leaves the *how* to the application, and every caller
//! in the repo used to hand-roll its own renew loop. [`RetryPolicy`]
//! centralizes the discipline: bounded attempts, jittered exponential
//! backoff (so a herd of expired readers does not re-expire in lockstep
//! with the maintenance cadence), and an optional wall-clock deadline.
//!
//! **Cursor-restart protocol.** An expiration can surface mid-scan, after
//! some rows were already produced at the old version. Re-executing at a
//! fresh VN and *continuing* to emit would interleave rows from two
//! versions — a silent wrong answer. Every retried operation therefore
//! buffers its output per attempt and discards the buffer with the failed
//! attempt; only a fully consistent result ever reaches the caller (see
//! [`RetryPolicy::scan_with`]).

use crate::error::{VnlError, VnlResult};
use crate::reader::ReaderSession;
use crate::resilience::repair::RepairEngine;
use crate::table::VnlTable;
use crate::version::VersionNo;
use std::cell::Cell;
use std::time::{Duration, Instant};
use wh_sql::{parse_statement, Params, QueryResult, SqlError, Statement};
use wh_types::{Row, SplitMix64, Value};

/// Bounded, backed-off re-execution of expired reads.
///
/// A policy is a plain value — cheap to clone, safe to share per thread.
/// The same seed replays the same jitter sequence, keeping seeded
/// experiments reproducible.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    deadline: Option<Duration>,
    lease_hint: Option<Duration>,
    seed: u64,
}

/// What one [`RetryPolicy::run_with_stats`] call did, for harnesses that
/// assert retry counts stay within policy bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (≥ 1; the first execution counts).
    pub attempts: u32,
    /// Expirations observed (= retries + 1 on exhaustion, = attempts − 1 on
    /// eventual success).
    pub expirations: u32,
    /// Expirations recovered by session repair (delta replay) instead of a
    /// restart; every repaired expiration ends the call successfully.
    pub repaired: u32,
    /// Expirations that fell back to restart-and-rescan (repair declined,
    /// or the operation ran without a repair path).
    pub restarted: u32,
    /// Rows produced by expired attempts and thrown away by the
    /// cursor-restart protocol — the work repair exists to avoid. Only the
    /// buffering helpers ([`RetryPolicy::scan_repaired`]) can count this;
    /// plain [`RetryPolicy::run_with_stats`] leaves it 0.
    pub wasted_rows: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 50µs–5ms backoff, no deadline, no lease.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            deadline: None,
            lease_hint: None,
            seed: 0x2e76_4e4c_0004_0001, // arbitrary fixed default
        }
    }
}

impl RetryPolicy {
    /// Cap on attempts, including the first execution (min 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Backoff range: attempt `k` sleeps ~`base · 2^(k−1)` capped at `max`,
    /// jittered to 50–100% of that.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max.max(base);
        self
    }

    /// Total wall-clock budget: once elapsed, no further attempt starts.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Run every attempt under a leased session declaring `hint` of
    /// expected work ([`VnlTable::begin_leased_session`]), making the
    /// retried reader visible to the [`super::MaintenancePacer`].
    pub fn with_lease_hint(mut self, hint: Duration) -> Self {
        self.lease_hint = Some(hint);
        self
    }

    /// Seed for the backoff jitter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Configured attempt cap.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Execute `op` against a fresh session, retrying on expiration within
    /// the policy's bounds.
    ///
    /// Each attempt gets its own session at the then-current VN; `op` must
    /// produce its full result from that one session (buffer, don't leak —
    /// the cursor-restart protocol). Only
    /// [`VnlError::SessionExpired`] retries; any other error is returned
    /// as-is. Exhaustion returns the typed terminal
    /// [`VnlError::RetryExhausted`].
    pub fn run<T>(
        &self,
        table: &VnlTable,
        op: impl FnMut(&ReaderSession<'_>) -> VnlResult<T>,
    ) -> VnlResult<T> {
        self.run_with_stats(table, op).0
    }

    /// [`RetryPolicy::run`] plus a [`RetryStats`] record of what it took.
    /// Every expiration restarts (no repair path); see
    /// [`RetryPolicy::run_repaired`] for the repair-first loop.
    pub fn run_with_stats<T>(
        &self,
        table: &VnlTable,
        op: impl FnMut(&ReaderSession<'_>) -> VnlResult<T>,
    ) -> (VnlResult<T>, RetryStats) {
        self.run_repaired(table, op, |_| None)
    }

    /// The repair-first retry loop. On expiration, `repair(session_vn)` is
    /// consulted **before** any restart: `Some(result)` means the session's
    /// work was fixed up from the maintenance deltas and the call returns
    /// immediately (no extra attempt, no backoff); `None` means repair
    /// declined — evicted window, unrepairable batch, unsupported shape —
    /// and the loop falls back to the paper's restart-and-rescan within the
    /// policy's usual bounds.
    ///
    /// The repair closure must produce a result consistent at the VN it
    /// re-leases (see [`RepairEngine`]); the typed helpers wire this up
    /// correctly.
    pub fn run_repaired<T>(
        &self,
        table: &VnlTable,
        mut op: impl FnMut(&ReaderSession<'_>) -> VnlResult<T>,
        mut repair: impl FnMut(VersionNo) -> Option<T>,
    ) -> (VnlResult<T>, RetryStats) {
        let start = Instant::now();
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut stats = RetryStats::default();
        loop {
            let session = match self.lease_hint {
                Some(hint) => table.begin_leased_session(hint),
                None => table.begin_session(),
            };
            stats.attempts += 1;
            match op(&session) {
                Ok(v) => {
                    session.finish();
                    wh_obs::histogram!("vnl.resilience.retry.attempts")
                        .record(u64::from(stats.attempts));
                    return (Ok(v), stats);
                }
                Err(VnlError::SessionExpired {
                    session_vn,
                    current_vn,
                    ..
                }) => {
                    session.finish();
                    stats.expirations += 1;
                    if let Some(v) = repair(session_vn) {
                        stats.repaired += 1;
                        wh_obs::counter!("vnl.resilience.repair.repaired").inc();
                        wh_obs::slo::note_repair();
                        wh_obs::histogram!("vnl.resilience.retry.attempts")
                            .record(u64::from(stats.attempts));
                        return (Ok(v), stats);
                    }
                    let out_of_attempts = stats.attempts >= self.max_attempts;
                    let out_of_time = self.deadline.is_some_and(|d| start.elapsed() >= d);
                    if out_of_attempts || out_of_time {
                        wh_obs::counter!("vnl.resilience.retry.exhausted").inc();
                        return (
                            Err(VnlError::RetryExhausted {
                                attempts: stats.attempts,
                                session_vn,
                                current_vn,
                            }),
                            stats,
                        );
                    }
                    stats.restarted += 1;
                    wh_obs::counter!("vnl.resilience.repair.restarted").inc();
                    wh_obs::counter!("vnl.resilience.retries").inc();
                    self.back_off(stats.attempts, start, &mut rng);
                }
                Err(other) => {
                    session.finish();
                    return (Err(other), stats);
                }
            }
        }
    }

    /// Sleep before attempt `attempts + 1`: exponential from the base,
    /// capped, jittered to 50–100%, and clipped to the remaining deadline.
    fn back_off(&self, attempts: u32, start: Instant, rng: &mut SplitMix64) {
        let exp = attempts.saturating_sub(1).min(20);
        let scaled = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let jittered = scaled.mul_f64(0.5 + rng.next_f64() / 2.0);
        let clipped = match self.deadline {
            Some(d) => jittered.min(d.saturating_sub(start.elapsed())),
            None => jittered,
        };
        if !clipped.is_zero() {
            wh_obs::histogram!("vnl.resilience.retry.backoff_ns").record(clipped.as_nanos() as u64);
            std::thread::sleep(clipped);
        }
    }

    /// Retried [`ReaderSession::scan`]: the whole relation at one
    /// consistent version.
    // The bare method path fails the `for<'a>` bound the closure satisfies.
    #[allow(clippy::redundant_closure_for_method_calls)]
    pub fn scan(&self, table: &VnlTable) -> VnlResult<Vec<Row>> {
        self.run(table, |s| s.scan())
    }

    /// Retried streaming scan with the cursor-restart protocol made
    /// concrete: rows are buffered per attempt and `visit` only ever sees
    /// the rows of the one attempt that completed — never a partial prefix
    /// from an expired cursor.
    pub fn scan_with<F>(&self, table: &VnlTable, mut visit: F) -> VnlResult<()>
    where
        F: FnMut(Row) -> VnlResult<()>,
    {
        let rows = self.run(table, |s| {
            let mut buf = Vec::new();
            s.scan_with(|row| {
                buf.push(row);
                Ok(())
            })?;
            Ok(buf)
        })?;
        for row in rows {
            visit(row)?;
        }
        Ok(())
    }

    /// Retried [`ReaderSession::query`]: parses once, re-executes the
    /// statement per attempt against a fresh session.
    pub fn query(&self, table: &VnlTable, sql: &str) -> VnlResult<QueryResult> {
        let stmt = parse_statement(sql).map_err(VnlError::Sql)?;
        let Statement::Select(select) = stmt else {
            return Err(VnlError::Sql(SqlError::Unsupported(
                "reader sessions are read-only".into(),
            )));
        };
        self.run(table, |s| s.query_stmt(&select))
    }

    /// Retried [`ReaderSession::read_by_key`].
    pub fn read_by_key(&self, table: &VnlTable, key_row: &[Value]) -> VnlResult<Option<Row>> {
        self.run(table, |s| s.read_by_key(key_row))
    }

    /// Repair-first retried scan. An expired attempt is fixed up from the
    /// maintenance deltas ([`RepairEngine::scan_at_current`]) instead of
    /// rescanning; only when repair declines does the restart fallback run.
    ///
    /// The repaired path returns rows in **primary-key order** (the repair
    /// map is keyed); the first-attempt/restart path returns heap scan
    /// order. Consumers needing order-independence should compare as
    /// multisets — the soak oracle does.
    pub fn scan_repaired(&self, table: &VnlTable) -> (VnlResult<Vec<Row>>, RetryStats) {
        let engine = RepairEngine::new(table);
        let wasted = Cell::new(0u64);
        let (res, mut stats) = self.run_repaired(
            table,
            |s| {
                let mut buf = Vec::new();
                match s.scan_with(|row| {
                    buf.push(row);
                    Ok(())
                }) {
                    Ok(()) => Ok(buf),
                    Err(e) => {
                        // The cursor-restart protocol discards this buffer;
                        // count what the discard cost.
                        wasted.set(wasted.get() + buf.len() as u64);
                        Err(e)
                    }
                }
            },
            |session_vn| {
                engine
                    .scan_at_current(session_vn)
                    .ok()
                    .flatten()
                    .map(|r| r.rows)
            },
        );
        stats.wasted_rows = wasted.get();
        if stats.wasted_rows > 0 {
            wh_obs::counter!("vnl.resilience.repair.wasted_rows").add(stats.wasted_rows);
        }
        (res, stats)
    }

    /// Repair-first retried SELECT: parses once; an expired attempt patches
    /// the statement's result from the deltas (per-group aggregate patching
    /// where the shape allows — [`RepairEngine::query_at_current`]) before
    /// any restart. Uses empty [`Params`], matching
    /// [`ReaderSession::query_stmt`].
    pub fn query_repaired(
        &self,
        table: &VnlTable,
        sql: &str,
    ) -> (VnlResult<QueryResult>, RetryStats) {
        let select = match parse_statement(sql).map_err(VnlError::Sql) {
            Ok(Statement::Select(select)) => select,
            Ok(_) => {
                return (
                    Err(VnlError::Sql(SqlError::Unsupported(
                        "reader sessions are read-only".into(),
                    ))),
                    RetryStats::default(),
                )
            }
            Err(e) => return (Err(e), RetryStats::default()),
        };
        let engine = RepairEngine::new(table);
        let params = Params::new();
        self.run_repaired(
            table,
            |s| s.query_stmt(&select),
            |session_vn| {
                engine
                    .query_at_current(session_vn, &select, &params)
                    .ok()
                    .flatten()
                    .map(|(result, _vn)| result)
            },
        )
    }

    /// Repair-first retried point lookup: a key the delta window touched is
    /// answered from the deltas alone; an untouched key re-reads at the
    /// current VN ([`RepairEngine::read_key_at_current`]).
    pub fn read_by_key_repaired(
        &self,
        table: &VnlTable,
        key_row: &[Value],
    ) -> (VnlResult<Option<Row>>, RetryStats) {
        let engine = RepairEngine::new(table);
        self.run_repaired(
            table,
            |s| s.read_by_key(key_row),
            |session_vn| {
                engine
                    .read_key_at_current(session_vn, key_row)
                    .ok()
                    .flatten()
                    .map(|(row, _vn)| row)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_table(n: usize) -> VnlTable {
        let schema = wh_types::Schema::with_key_names(
            vec![
                wh_types::Column::new("key", wh_types::DataType::Int64),
                wh_types::Column::updatable("value", wh_types::DataType::Int64),
            ],
            &["key"],
        )
        .unwrap();
        let t = VnlTable::create_named("kv", schema, n).unwrap();
        let rows: Vec<Row> = (0..8)
            .map(|k| vec![Value::from(k), Value::from(0)])
            .collect();
        t.load_initial(&rows).unwrap();
        t
    }

    fn bump_all(t: &VnlTable, value: i64) {
        let txn = t.begin_maintenance().unwrap();
        txn.execute_sql(
            &format!("UPDATE kv SET value = {value}"),
            &wh_sql::Params::new(),
        )
        .unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn first_attempt_success_needs_no_retry() {
        let t = kv_table(2);
        let policy = RetryPolicy::default();
        #[allow(clippy::redundant_closure_for_method_calls)]
        let (res, stats) = policy.run_with_stats(&t, |s| s.scan());
        assert_eq!(res.unwrap().len(), 8);
        assert_eq!(
            stats,
            RetryStats {
                attempts: 1,
                expirations: 0,
                ..RetryStats::default()
            }
        );
    }

    #[test]
    fn retries_through_injected_expirations_then_succeeds() {
        let t = kv_table(2);
        let policy = RetryPolicy::default().with_backoff(Duration::ZERO, Duration::ZERO);
        let mut failures_left = 2;
        let (res, stats) = policy.run_with_stats(&t, |s| {
            if failures_left > 0 {
                failures_left -= 1;
                return Err(t.expired_error(s.session_vn()));
            }
            s.scan()
        });
        assert_eq!(res.unwrap().len(), 8);
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.expirations, 2);
    }

    #[test]
    fn exhaustion_returns_typed_terminal_error() {
        let t = kv_table(2);
        let policy = RetryPolicy::default()
            .with_max_attempts(2)
            .with_backoff(Duration::ZERO, Duration::ZERO);
        let (res, stats) = policy.run_with_stats(&t, |s| -> VnlResult<()> {
            Err(t.expired_error(s.session_vn()))
        });
        assert!(matches!(
            res,
            Err(VnlError::RetryExhausted { attempts: 2, .. })
        ));
        assert_eq!(stats.attempts, 2);
    }

    #[test]
    fn non_expiration_errors_pass_through_unretried() {
        let t = kv_table(2);
        let policy = RetryPolicy::default();
        let (res, stats) = policy.run_with_stats(&t, |_| -> VnlResult<()> {
            Err(VnlError::NoSuchIndex("missing".into()))
        });
        assert!(matches!(res, Err(VnlError::NoSuchIndex(_))));
        assert_eq!(stats.attempts, 1, "only SessionExpired retries");
    }

    #[test]
    fn genuinely_expired_session_recovers_at_fresh_vn() {
        let t = kv_table(2);
        // Expire a raw session to prove the workload *would* fail, then show
        // the policy reads the post-maintenance state cleanly.
        let stale = t.begin_session();
        bump_all(&t, 10);
        bump_all(&t, 20);
        assert!(matches!(stale.scan(), Err(VnlError::SessionExpired { .. })));
        stale.finish();
        let rows = RetryPolicy::default().scan(&t).unwrap();
        assert!(rows.iter().all(|r| r[1] == Value::from(20)));
    }

    #[test]
    fn deadline_stops_retrying() {
        let t = kv_table(2);
        let policy = RetryPolicy::default()
            .with_max_attempts(u32::MAX)
            .with_deadline(Duration::ZERO)
            .with_backoff(Duration::ZERO, Duration::ZERO);
        let (res, stats) = policy.run_with_stats(&t, |s| -> VnlResult<()> {
            Err(t.expired_error(s.session_vn()))
        });
        assert!(matches!(res, Err(VnlError::RetryExhausted { .. })));
        assert_eq!(stats.attempts, 1, "zero deadline stops after attempt one");
    }

    #[test]
    fn scan_with_never_delivers_partial_attempts() {
        let t = kv_table(2);
        let policy = RetryPolicy::default().with_backoff(Duration::ZERO, Duration::ZERO);
        let mut poisoned_attempt = true;
        let mut seen = Vec::new();
        policy
            .run(&t, |s| {
                let mut buf = Vec::new();
                s.scan_with(|row| {
                    buf.push(row);
                    // Mid-scan expiration on the first attempt, after rows
                    // were already produced.
                    if poisoned_attempt && buf.len() == 4 {
                        poisoned_attempt = false;
                        return Err(t.expired_error(s.session_vn()));
                    }
                    Ok(())
                })?;
                Ok(buf)
            })
            .map(|rows| seen = rows)
            .unwrap();
        assert_eq!(seen.len(), 8, "only the complete attempt is delivered");
    }

    #[test]
    fn scan_repaired_fixes_expired_session_without_restart() {
        let t = kv_table(2);
        // A stale session whose next scan is guaranteed to expire.
        let stale = t.begin_session();
        let stale_vn = stale.session_vn();
        bump_all(&t, 10);
        bump_all(&t, 20);
        assert!(matches!(stale.scan(), Err(VnlError::SessionExpired { .. })));
        stale.finish();
        // Repair-first: the expiring attempt is patched from the deltas.
        let policy = RetryPolicy::default().with_backoff(Duration::ZERO, Duration::ZERO);
        let expire_once = Cell::new(true);
        let engine = RepairEngine::new(&t);
        let (res, stats) = policy.run_repaired(
            &t,
            |s| {
                if expire_once.replace(false) {
                    // Simulate the stale session's fate deterministically.
                    return Err(t.expired_error(stale_vn));
                }
                s.scan()
            },
            |svn| engine.scan_at_current(svn).ok().flatten().map(|r| r.rows),
        );
        let rows = res.unwrap();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r[1] == Value::from(20)));
        assert_eq!(stats.repaired, 1);
        assert_eq!(stats.restarted, 0);
        assert_eq!(stats.attempts, 1, "repair replaces the restart attempt");
    }

    #[test]
    fn repair_decline_falls_back_to_restart() {
        let t = kv_table(2);
        bump_all(&t, 10);
        t.version().clear_deltas(); // evict the window: repair must decline
        let policy = RetryPolicy::default().with_backoff(Duration::ZERO, Duration::ZERO);
        let expire_once = Cell::new(true);
        let engine = RepairEngine::new(&t);
        let (res, stats) = policy.run_repaired(
            &t,
            |s| {
                if expire_once.replace(false) {
                    return Err(t.expired_error(0));
                }
                s.scan()
            },
            |svn| engine.scan_at_current(svn).ok().flatten().map(|r| r.rows),
        );
        assert_eq!(res.unwrap().len(), 8);
        assert_eq!(stats.repaired, 0);
        assert_eq!(stats.restarted, 1);
        assert_eq!(stats.attempts, 2, "decline costs a full restart attempt");
    }

    #[test]
    fn scan_repaired_counts_wasted_rows() {
        let t = kv_table(2);
        bump_all(&t, 5);
        let (res, stats) = RetryPolicy::default()
            .with_backoff(Duration::ZERO, Duration::ZERO)
            .scan_repaired(&t);
        // No expiration: clean first attempt, nothing wasted.
        assert_eq!(res.unwrap().len(), 8);
        assert_eq!(stats.wasted_rows, 0);
        assert_eq!(stats.repaired, 0);
    }

    #[test]
    fn query_repaired_answers_after_expiration() {
        let t = kv_table(2);
        let policy = RetryPolicy::default().with_backoff(Duration::ZERO, Duration::ZERO);
        let (res, _) = policy.query_repaired(&t, "SELECT SUM(value) FROM kv");
        assert_eq!(res.unwrap().rows[0][0], Value::from(0));
        bump_all(&t, 3);
        let (res, _) = policy.query_repaired(&t, "SELECT SUM(value) FROM kv");
        assert_eq!(res.unwrap().rows[0][0], Value::from(24));
        // Writes rejected up front.
        let (res, stats) = policy.query_repaired(&t, "CREATE TABLE x (a INT)");
        assert!(res.is_err());
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn read_by_key_repaired_round_trips() {
        let t = kv_table(2);
        bump_all(&t, 9);
        let (res, _) = RetryPolicy::default().read_by_key_repaired(&t, &[Value::from(3)]);
        assert_eq!(res.unwrap(), Some(vec![Value::from(3), Value::from(9)]));
        let (res, _) = RetryPolicy::default().read_by_key_repaired(&t, &[Value::from(99)]);
        assert_eq!(res.unwrap(), None);
    }

    #[test]
    fn query_helper_retries_statement() {
        let t = kv_table(2);
        let res = RetryPolicy::default()
            .query(&t, "SELECT COUNT(*) FROM kv")
            .unwrap();
        assert_eq!(res.rows[0][0], Value::from(8));
        // Writes are rejected up front, not retried.
        assert!(RetryPolicy::default()
            .query(&t, "CREATE TABLE x (a INT)")
            .is_err());
    }
}
