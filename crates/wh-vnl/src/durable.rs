//! Disk-backed durability for nVNL tables: fuzzy checkpoints and log-free
//! restart recovery.
//!
//! §7's observation — that a consistent pre-transaction state is always
//! reconstructible from the tuples' own version slots — is usually read as
//! a statement about *crash recovery inside one process*. It is stronger
//! than that: the version slots subsume the undo log entirely, so a
//! disk-backed 2VNL/nVNL table needs **no write-ahead log**. The durable
//! tier here is:
//!
//! * a **steal, no-force** buffer pool ([`wh_storage::BufferPool`]) under
//!   the physical heap — dirty pages may reach disk at any moment
//!   (eviction mid-transaction is fine) and are not forced at commit;
//! * a **fuzzy checkpoint** ([`checkpoint`]) that snapshots the version
//!   state *first*, then flushes dirty pages without quiescing readers or
//!   the maintenance transaction, and finally commits atomically by
//!   renaming the metadata file;
//! * **restart recovery** ([`recover_from_disk`]) that reopens the heap,
//!   restores the `Version` relation from the checkpoint metadata, and
//!   runs the ordinary §7 slot-reconstruction pass — the same code path
//!   used after an in-process abort — to roll back whatever partial
//!   maintenance work the steal policy let reach disk.
//!
//! Why this is sound: the checkpoint records version `V` captured *before*
//! any page was flushed, so every flushed page is at version ≥ `V` — never
//! older. After a crash, tuples stamped `tupleVN > V` are exactly "the
//! crashed maintenance transaction's tuples" from §7's perspective (some
//! may belong to transactions that *committed* after the checkpoint; those
//! commits are lost — a bounded durability lag, not corruption — because
//! rollback restores the consistent state at `V`). Tuples at `tupleVN ≤ V`
//! still physically carry their pre-images in older slots, **provided GC
//! has not reclaimed them** — which is why [`VnlTable::gc_reclaim_ceiling`]
//! caps reclamation at the last completed checkpoint's VN on durable
//! tables: a delete committed after the checkpoint must keep its tombstone
//! until the *next* checkpoint makes it durable.
//!
//! The one-tuple `Version` relation is not persisted as a table; the
//! checkpoint metadata *is* its durable form (two u64 fields in a 56-byte
//! record vs. a page-granularity heap — same information, atomic rename
//! instead of page checksums).

use crate::error::{VnlError, VnlResult};
use crate::recovery::{self, RecoveryReport};
use crate::schema_ext::ExtLayout;
use crate::table::VnlTable;
use crate::version::{VersionNo, VersionState};
use std::path::Path;
use std::sync::Arc;
use wh_storage::{CheckpointMeta, CheckpointStats, IoStats, Table, VersionMeta};
use wh_types::Schema;

/// What [`recover_from_disk`] reconstructed, combining the checkpoint
/// metadata it started from with the §7 slot-reconstruction pass it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRecoveryReport {
    /// The version the checkpoint captured — the state recovery restores.
    pub checkpoint_vn: VersionNo,
    /// Whether the checkpoint recorded an in-flight maintenance
    /// transaction (recovery clears the flag either way).
    pub maintenance_was_active: bool,
    /// Physical pages reopened from the page store.
    pub pages_loaded: u32,
    /// The §7 recovery pass over the reopened tuples.
    pub recovery: RecoveryReport,
}

/// Create an empty disk-backed nVNL table in `dir` with a buffer pool of
/// at most `capacity` resident pages.
///
/// The GC reclamation ceiling starts at 0 — *nothing* may be physically
/// reclaimed until the first [`checkpoint`] completes, because before that
/// no deleted tuple's tombstone is durable.
pub fn create_durable(
    name: impl Into<String>,
    base_schema: Schema,
    n: usize,
    dir: &Path,
    capacity: usize,
) -> VnlResult<VnlTable> {
    let io = Arc::new(IoStats::new());
    let version = Arc::new(VersionState::new(Arc::clone(&io))?);
    let layout = ExtLayout::new(base_schema, n)?;
    let storage = Table::create_backed(
        "ext",
        layout.ext_schema().clone(),
        dir,
        capacity,
        Arc::clone(&io),
    )?;
    let table = VnlTable::from_parts(name, layout, storage, version, io)?;
    table.set_gc_reclaim_ceiling(0);
    Ok(table)
}

/// Take a fuzzy checkpoint of a durable table: flush every dirty page and
/// atomically commit metadata from which [`recover_from_disk`] can restore
/// a consistent state. Readers and the maintenance transaction keep
/// running throughout — no quiescing, no latch held across I/O.
///
/// Ordering is the soundness-critical part: the version snapshot is taken
/// **before** the first page flush. If a maintenance transaction commits
/// mid-flush, some of its pages reach disk and some don't — but its
/// `tupleVN` exceeds the recorded `V`, so restart recovery rolls back
/// whichever half made it. Snapshotting *after* the flush would record a
/// `V` the flushed pages don't fully contain, and recovery would trust
/// tuples that are only partially on disk.
///
/// A crash anywhere inside this function leaves the *previous* checkpoint
/// intact: the metadata commit is a `tmp + fsync + rename`, and the shadow-
/// paired page blocks keep each page's last good image until its
/// replacement is fully written.
pub fn checkpoint(table: &VnlTable) -> VnlResult<CheckpointStats> {
    if !table.is_durable() {
        return Err(VnlError::Storage(wh_storage::StorageError::Io(
            "checkpoint requires a disk-backed table (see durable::create_durable)".into(),
        )));
    }
    // trace: the storage layer's flush spans parent under this one.
    let _ts = wh_obs::trace_span!("vnl.checkpoint");
    // Snapshot first — see the ordering argument above.
    let snap = table.version().snapshot();
    // Reclamation durable through this checkpoint cannot precede the oldest
    // active session's view (GC's own horizon already enforces the live
    // half; this records the durable half for the *next* recovery).
    let gc_horizon = table
        .min_active_session_vn()
        .unwrap_or(snap.current_vn)
        .min(snap.current_vn);
    let stats = table.storage().heap().checkpoint(VersionMeta {
        current_vn: snap.current_vn,
        maintenance_active: snap.maintenance_active,
        recovery_floor: table.version().recovery_floor(),
        gc_horizon,
    })?;
    // Only after the metadata rename is GC allowed to reclaim tombstones up
    // to this checkpoint's VN: their deletion is now durable.
    table.set_gc_reclaim_ceiling(snap.current_vn);
    Ok(stats)
}

/// Reopen a durable table from `dir` after a process restart (or crash),
/// restore the version state from the checkpoint metadata, and run the §7
/// log-free recovery pass to roll back any partially-flushed maintenance
/// work. The recovery fence rises before any reconstructed tuple can be
/// served, so stale leased readers expire rather than read reconstructed
/// values (see [`crate::recovery`]).
///
/// Idempotent: a second call on the same directory finds nothing pending
/// and returns the same state. This makes retry after a transient I/O
/// error during recovery safe.
pub fn recover_from_disk(
    name: impl Into<String>,
    base_schema: Schema,
    n: usize,
    dir: &Path,
    capacity: usize,
) -> VnlResult<(VnlTable, DiskRecoveryReport)> {
    let io = Arc::new(IoStats::new());
    // trace: restart restore + the §7 recovery pass under one root span.
    let _ts = wh_obs::trace_span!("vnl.restart");
    let layout = ExtLayout::new(base_schema, n)?;
    let meta = CheckpointMeta::read(dir)?;
    let storage = Table::open_backed(
        "ext",
        layout.ext_schema().clone(),
        dir,
        capacity,
        Arc::clone(&io),
    )?;
    let version = Arc::new(VersionState::restore(
        Arc::clone(&io),
        meta.current_vn,
        meta.maintenance_active,
        // lint: allow(version-encapsulation) — CheckpointMeta POD field, not the kernel atomic
        meta.recovery_floor,
    )?);
    let table = VnlTable::from_parts(name, layout, storage, version, io)?;
    // The §7 pass: identical to in-process crash recovery — the slots on
    // the reopened pages are the only "log" consulted.
    let report = recovery::recover(&table)?;
    table.set_gc_reclaim_ceiling(meta.current_vn);
    Ok((
        table,
        DiskRecoveryReport {
            checkpoint_vn: meta.current_vn,
            maintenance_was_active: meta.maintenance_active,
            pages_loaded: meta.page_count,
            recovery: report,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wh_types::{Column, DataType, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: id-alloc Relaxed — unique-name counter only
        let dir = std::env::temp_dir().join(format!("wh-durable-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn schema() -> Schema {
        Schema::with_key_names(
            vec![
                Column::new("k", DataType::Int64),
                Column::updatable("v", DataType::Int64),
            ],
            &["k"],
        )
        .unwrap()
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(k), Value::Int(v)]
    }

    fn live(table: &VnlTable, svn: VersionNo) -> Vec<(i64, i64)> {
        let session = table.begin_session_at(svn);
        let mut out: Vec<(i64, i64)> = session
            .scan()
            .unwrap()
            .into_iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn committed_state_survives_restart() {
        let dir = temp_dir("commit");
        let table = create_durable("R", schema(), 2, &dir, 4).unwrap();
        {
            let txn = table.begin_maintenance().unwrap();
            txn.insert(row(1, 10)).unwrap();
            txn.insert(row(2, 20)).unwrap();
            txn.commit().unwrap();
        }
        {
            let txn = table.begin_maintenance().unwrap();
            txn.update_row(&row(1, 11)).unwrap();
            txn.delete_row(&row(2, 0)).unwrap();
            txn.insert(row(3, 30)).unwrap();
            txn.commit().unwrap();
        }
        let stats = checkpoint(&table).unwrap();
        assert_eq!(stats.checkpoint_vn, 3);
        drop(table);

        let (reopened, report) = recover_from_disk("R", schema(), 2, &dir, 4).unwrap();
        assert_eq!(report.checkpoint_vn, 3);
        assert!(!report.maintenance_was_active);
        assert_eq!(report.recovery.pending_found, 0, "clean checkpoint");
        assert_eq!(report.recovery.log_writes, 0);
        assert_eq!(live(&reopened, 3), vec![(1, 11), (3, 30)]);
        assert_eq!(reopened.gc_reclaim_ceiling(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_maintenance_restart_rolls_back_to_checkpoint() {
        let dir = temp_dir("midtxn");
        let table = create_durable("R", schema(), 2, &dir, 2).unwrap();
        {
            let txn = table.begin_maintenance().unwrap();
            txn.insert(row(1, 10)).unwrap();
            txn.insert(row(2, 20)).unwrap();
            txn.commit().unwrap();
        }
        // Checkpoint while a maintenance transaction is mid-flight: the
        // steal pool then pushes its partial work to disk.
        let txn = table.begin_maintenance().unwrap();
        txn.update_row(&row(1, 99)).unwrap();
        txn.insert(row(3, 30)).unwrap();
        let stats = checkpoint(&table).unwrap();
        assert_eq!(stats.checkpoint_vn, 2, "snapshot taken before flush");
        table.storage().heap().flush_all().unwrap();
        // Crash: the txn never commits or aborts in this process.
        std::mem::forget(txn);
        drop(table);

        let (reopened, report) = recover_from_disk("R", schema(), 2, &dir, 2).unwrap();
        assert_eq!(report.checkpoint_vn, 2);
        assert!(report.maintenance_was_active);
        assert!(report.recovery.pending_found > 0, "partial work on disk");
        assert_eq!(report.recovery.log_writes, 0);
        assert!(!reopened.version().snapshot().maintenance_active);
        assert_eq!(live(&reopened, 2), vec![(1, 10), (2, 20)]);
        // Recovery is idempotent: a second pass finds nothing pending.
        let second = recovery::recover(&reopened).unwrap();
        assert_eq!(second.pending_found, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rejects_in_memory_tables() {
        let table = VnlTable::create(schema(), 2).unwrap();
        assert!(checkpoint(&table).is_err());
        assert_eq!(table.gc_reclaim_ceiling(), u64::MAX);
    }

    #[test]
    fn gc_ceiling_holds_tombstones_until_next_checkpoint() {
        let dir = temp_dir("ceiling");
        let table = create_durable("R", schema(), 2, &dir, 4).unwrap();
        {
            let txn = table.begin_maintenance().unwrap();
            txn.insert(row(1, 10)).unwrap();
            txn.insert(row(2, 20)).unwrap();
            txn.commit().unwrap();
        }
        checkpoint(&table).unwrap(); // ceiling = 2
        {
            let txn = table.begin_maintenance().unwrap();
            txn.delete_row(&row(2, 0)).unwrap();
            txn.commit().unwrap(); // delete stamped VN 3 > ceiling
        }
        // No sessions are active, so the *live* horizon alone would allow
        // reclamation — only the durable ceiling holds the tombstone.
        let swept = crate::gc::collect(&table).unwrap();
        assert_eq!(
            swept.reclaimed, 0,
            "tombstone newer than the checkpoint must survive GC"
        );
        // After the next checkpoint the deletion is durable; GC may collect.
        checkpoint(&table).unwrap(); // ceiling = 3
        let swept = crate::gc::collect(&table).unwrap();
        assert_eq!(swept.reclaimed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
