//! Schema extension (§3.1, §5) and the storage-overhead model (Figure 3).
//!
//! For 2VNL, a relation `R(A1..An)` with updatable subset `A'` becomes
//! `{tupleVN, operation, A1..An, Ap1..Apk}` — exactly Figure 3's layout. For
//! nVNL there are `n − 1` `(tupleVN_j, operation_j)` pairs and `n − 1`
//! pre-update sets (§5). [`ExtLayout`] owns the index bookkeeping between
//! base and extended schemas; everything else in the crate goes through it.

use crate::error::VnlResult;
use crate::version::{Operation, VersionNo};
use wh_types::{Column, DataType, Row, Schema, Value};

/// Layout of an nVNL-extended schema over a base schema.
#[derive(Debug, Clone)]
pub struct ExtLayout {
    n: usize,
    base: Schema,
    ext: Schema,
    /// Base indexes of updatable columns, in declaration order.
    updatable: Vec<usize>,
    /// Extended index of `tupleVN_j`, j = 0-based slot (0 = newest).
    vn_cols: Vec<usize>,
    /// Extended index of `operation_j`.
    op_cols: Vec<usize>,
    /// Extended index of base column `i`.
    base_cols: Vec<usize>,
    /// `pre_cols[j][u]` = extended index of the j-th pre-update copy of the
    /// u-th updatable column.
    pre_cols: Vec<Vec<usize>>,
}

impl ExtLayout {
    /// Build the extended layout for `base` with `n ≥ 2` versions.
    ///
    /// Column names follow the paper: for `n = 2` they are `tupleVN`,
    /// `operation`, and `pre_<attr>`; for `n > 2` they carry 1-based slot
    /// suffixes (`tupleVN1` is the most recent, as in Figure 7).
    pub fn new(base: Schema, n: usize) -> VnlResult<Self> {
        assert!(n >= 2, "nVNL requires n >= 2");
        let slots = n - 1;
        let updatable = base.updatable_indexes();
        let mut columns = Vec::new();
        let mut vn_cols = Vec::new();
        let mut op_cols = Vec::new();
        let suffix = |j: usize| {
            if n == 2 {
                String::new()
            } else {
                format!("{}", j + 1)
            }
        };
        for j in 0..slots {
            vn_cols.push(columns.len());
            columns.push(Column::updatable(
                format!("tupleVN{}", suffix(j)),
                DataType::Int32,
            ));
            op_cols.push(columns.len());
            columns.push(Column::updatable(
                format!("operation{}", suffix(j)),
                DataType::Char(1),
            ));
        }
        let mut base_cols = Vec::new();
        for c in base.columns() {
            base_cols.push(columns.len());
            columns.push(c.clone());
        }
        let mut pre_cols = Vec::new();
        for j in 0..slots {
            let mut set = Vec::new();
            for &u in &updatable {
                set.push(columns.len());
                columns.push(Column::updatable(
                    format!("pre_{}{}", base.columns()[u].name, suffix(j)),
                    base.columns()[u].ty,
                ));
            }
            pre_cols.push(set);
        }
        // The unique key carries over, re-indexed into the extended schema.
        let key: Vec<usize> = base.key().iter().map(|&k| base_cols[k]).collect();
        let ext = Schema::with_key(columns, key)?;
        Ok(ExtLayout {
            n,
            base,
            ext,
            updatable,
            vn_cols,
            op_cols,
            base_cols,
            pre_cols,
        })
    }

    /// Number of versions (`n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of version slots (`n − 1`).
    pub fn slots(&self) -> usize {
        self.n - 1
    }

    /// The base (logical) schema.
    pub fn base_schema(&self) -> &Schema {
        &self.base
    }

    /// The extended (physical) schema.
    pub fn ext_schema(&self) -> &Schema {
        &self.ext
    }

    /// Base indexes of the updatable columns.
    pub fn updatable(&self) -> &[usize] {
        &self.updatable
    }

    /// Extended index of `tupleVN_j` (0-based slot; 0 = most recent).
    pub fn vn_col(&self, j: usize) -> usize {
        self.vn_cols[j]
    }

    /// Extended index of `operation_j`.
    pub fn op_col(&self, j: usize) -> usize {
        self.op_cols[j]
    }

    /// Extended index of base column `i`.
    pub fn base_col(&self, i: usize) -> usize {
        self.base_cols[i]
    }

    /// Extended indexes of the j-th pre-update set (parallel to
    /// [`ExtLayout::updatable`]).
    pub fn pre_set(&self, j: usize) -> &[usize] {
        &self.pre_cols[j]
    }

    /// Read slot `j`'s `(tupleVN, operation)` from an extended row; `None`
    /// when the slot is empty (NULL).
    pub fn slot(&self, ext_row: &[Value], j: usize) -> Option<(VersionNo, Operation)> {
        let vn = ext_row[self.vn_cols[j]].as_int()?;
        let op = Operation::from_value(&ext_row[self.op_cols[j]])?;
        Some((vn as VersionNo, op))
    }

    /// Project the current (base-schema) values out of an extended row.
    pub fn current_values(&self, ext_row: &[Value]) -> Row {
        self.base_cols.iter().map(|&i| ext_row[i].clone()).collect()
    }

    /// Project the pre-update version stored in slot `j`: pre-update values
    /// for updatable columns, current values for the rest (Table 1's note).
    pub fn pre_values(&self, ext_row: &[Value], j: usize) -> Row {
        let mut row = self.current_values(ext_row);
        for (u_pos, &u) in self.updatable.iter().enumerate() {
            row[u] = ext_row[self.pre_cols[j][u_pos]].clone();
        }
        row
    }

    /// Assemble a brand-new extended row for a physically inserted tuple:
    /// slot 0 = `(vn, insert)`, all pre-update sets NULL (Table 2 row 3).
    pub fn new_insert_row(&self, base_row: &[Value], vn: VersionNo) -> Row {
        let mut ext = vec![Value::Null; self.ext.arity()];
        ext[self.vn_cols[0]] = Value::from(vn as i64);
        ext[self.op_cols[0]] = Operation::Insert.value();
        for (i, v) in base_row.iter().enumerate() {
            ext[self.base_cols[i]] = v.clone();
        }
        ext
    }

    /// Shift version slots back by one (`set_{j+1} ← set_j`, §5's
    /// "push back"), dropping the oldest when all `n − 1` slots are full.
    /// Slot 0 is left for the caller to overwrite.
    pub fn push_back(&self, ext_row: &mut Row) {
        for j in (1..self.slots()).rev() {
            ext_row[self.vn_cols[j]] = ext_row[self.vn_cols[j - 1]].clone();
            ext_row[self.op_cols[j]] = ext_row[self.op_cols[j - 1]].clone();
            for u in 0..self.updatable.len() {
                ext_row[self.pre_cols[j][u]] = ext_row[self.pre_cols[j - 1][u]].clone();
            }
        }
    }

    /// Inverse of [`ExtLayout::push_back`] (`set_j ← set_{j+1}`), used by the
    /// nVNL same-transaction delete-of-resurrected-tuple case and by log-free
    /// rollback. The last slot becomes NULL.
    pub fn shift_forward(&self, ext_row: &mut Row) {
        for j in 0..self.slots() - 1 {
            ext_row[self.vn_cols[j]] = ext_row[self.vn_cols[j + 1]].clone();
            ext_row[self.op_cols[j]] = ext_row[self.op_cols[j + 1]].clone();
            for u in 0..self.updatable.len() {
                ext_row[self.pre_cols[j][u]] = ext_row[self.pre_cols[j + 1][u]].clone();
            }
        }
        let last = self.slots() - 1;
        ext_row[self.vn_cols[last]] = Value::Null;
        ext_row[self.op_cols[last]] = Value::Null;
        for u in 0..self.updatable.len() {
            ext_row[self.pre_cols[last][u]] = Value::Null;
        }
    }

    /// Storage-overhead accounting (Figure 3 and §3.1's worst-case claim).
    pub fn overhead(&self) -> StorageOverhead {
        let base_bytes = self.base.payload_width();
        let ext_bytes = self.ext.payload_width();
        StorageOverhead {
            n: self.n,
            base_tuple_bytes: base_bytes,
            ext_tuple_bytes: ext_bytes,
            updatable_columns: self.updatable.len(),
            total_columns: self.base.arity(),
        }
    }
}

/// Per-tuple storage cost of the extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageOverhead {
    /// Number of versions.
    pub n: usize,
    /// Bytes per tuple in the base schema (Figure 3: 42 for DailySales).
    pub base_tuple_bytes: usize,
    /// Bytes per tuple in the extended schema (Figure 3: 51).
    pub ext_tuple_bytes: usize,
    /// How many columns are updatable.
    pub updatable_columns: usize,
    /// Total base columns.
    pub total_columns: usize,
}

impl StorageOverhead {
    /// Relative growth, e.g. `0.214...` for DailySales (§3.1's "approximately
    /// 20%").
    pub fn ratio(&self) -> f64 {
        (self.ext_tuple_bytes - self.base_tuple_bytes) as f64 / self.base_tuple_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;

    fn layout2() -> ExtLayout {
        ExtLayout::new(daily_sales_schema(), 2).unwrap()
    }

    #[test]
    fn figure_3_schema_shape() {
        // Figure 3: {tupleVN, operation, city, state, product_line, date,
        // total_sales, pre_total_sales} with widths 4,1,20,2,12,4,4,4.
        let l = layout2();
        let names: Vec<&str> = l
            .ext_schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "tupleVN",
                "operation",
                "city",
                "state",
                "product_line",
                "date",
                "total_sales",
                "pre_total_sales"
            ]
        );
        let widths: Vec<usize> = l
            .ext_schema()
            .columns()
            .iter()
            .map(|c| c.ty.byte_width())
            .collect();
        assert_eq!(widths, vec![4, 1, 20, 2, 12, 4, 4, 4]);
    }

    #[test]
    fn figure_3_byte_counts() {
        // "Before modification, the DailySales relation required 42 bytes
        // per tuple. After modification it requires 51 bytes, an increase of
        // approximately 20%."
        let o = layout2().overhead();
        assert_eq!(o.base_tuple_bytes, 42);
        assert_eq!(o.ext_tuple_bytes, 51);
        assert!((o.ratio() - 0.214).abs() < 0.01);
    }

    #[test]
    fn worst_case_doubles_storage() {
        // §3.1: "when every attribute is updatable, representing two versions
        // requires approximately doubling the storage space".
        let all_updatable = Schema::new(vec![
            Column::updatable("a", DataType::Int64),
            Column::updatable("b", DataType::Float64),
            Column::updatable("c", DataType::Char(16)),
        ])
        .unwrap();
        let o = ExtLayout::new(all_updatable, 2).unwrap().overhead();
        let growth = o.ext_tuple_bytes as f64 / o.base_tuple_bytes as f64;
        assert!(growth > 1.9 && growth < 2.3, "growth was {growth}");
    }

    #[test]
    fn key_carries_over() {
        let l = layout2();
        // Base key columns 0..=3 map to extended positions 2..=5.
        assert_eq!(l.ext_schema().key(), &[2, 3, 4, 5]);
    }

    #[test]
    fn nvnl_naming_matches_figure_7() {
        let l = ExtLayout::new(daily_sales_schema(), 4).unwrap();
        let names: Vec<&str> = l
            .ext_schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert!(names.contains(&"tupleVN1"));
        assert!(names.contains(&"tupleVN3"));
        assert!(names.contains(&"operation2"));
        assert!(names.contains(&"pre_total_sales1"));
        assert!(names.contains(&"pre_total_sales3"));
        assert_eq!(l.slots(), 3);
    }

    #[test]
    fn new_insert_row_shape() {
        let l = layout2();
        let base = vec![
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(wh_types::Date::ymd(1996, 10, 14)),
            Value::from(10_000),
        ];
        let ext = l.new_insert_row(&base, 3);
        assert_eq!(ext[l.vn_col(0)], Value::from(3));
        assert_eq!(ext[l.op_col(0)], Operation::Insert.value());
        assert_eq!(l.current_values(&ext), base);
        assert_eq!(ext[l.pre_set(0)[0]], Value::Null);
        assert_eq!(l.slot(&ext, 0), Some((3, Operation::Insert)));
    }

    #[test]
    fn pre_values_merge_current_non_updatable() {
        let l = layout2();
        let base = vec![
            Value::from("Berkeley"),
            Value::from("CA"),
            Value::from("racquetball"),
            Value::from(wh_types::Date::ymd(1996, 10, 14)),
            Value::from(12_000),
        ];
        let mut ext = l.new_insert_row(&base, 4);
        ext[l.op_col(0)] = Operation::Update.value();
        ext[l.pre_set(0)[0]] = Value::from(10_000);
        let pre = l.pre_values(&ext, 0);
        assert_eq!(pre[0], Value::from("Berkeley")); // non-updatable: current
        assert_eq!(pre[4], Value::from(10_000)); // updatable: pre-update
    }

    #[test]
    fn push_back_and_shift_forward_are_inverse() {
        let l = ExtLayout::new(daily_sales_schema(), 4).unwrap();
        let base = vec![
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(wh_types::Date::ymd(1996, 10, 14)),
            Value::from(10_000),
        ];
        let mut ext = l.new_insert_row(&base, 3);
        let original = ext.clone();
        l.push_back(&mut ext);
        // Slot 1 now holds the old slot 0.
        assert_eq!(l.slot(&ext, 1), Some((3, Operation::Insert)));
        l.shift_forward(&mut ext);
        assert_eq!(ext, original);
    }

    #[test]
    fn push_back_drops_oldest_when_full() {
        let l = ExtLayout::new(daily_sales_schema(), 3).unwrap(); // 2 slots
        let base = vec![
            Value::from("X"),
            Value::from("CA"),
            Value::from("p"),
            Value::from(wh_types::Date::ymd(1996, 1, 1)),
            Value::from(1),
        ];
        let mut ext = l.new_insert_row(&base, 3);
        // Fill slot 1 artificially.
        l.push_back(&mut ext);
        ext[l.vn_col(0)] = Value::from(5);
        ext[l.op_col(0)] = Operation::Update.value();
        // Push again: slot-1 content (vn 3) moves out of existence.
        l.push_back(&mut ext);
        assert_eq!(l.slot(&ext, 1), Some((5, Operation::Update)));
    }

    #[test]
    fn slot_empty_when_null() {
        let l = ExtLayout::new(daily_sales_schema(), 4).unwrap();
        let base = vec![
            Value::from("X"),
            Value::from("CA"),
            Value::from("p"),
            Value::from(wh_types::Date::ymd(1996, 1, 1)),
            Value::from(1),
        ];
        let ext = l.new_insert_row(&base, 3);
        assert!(l.slot(&ext, 0).is_some());
        assert!(l.slot(&ext, 1).is_none());
        assert!(l.slot(&ext, 2).is_none());
    }
}
