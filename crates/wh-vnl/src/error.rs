//! Errors raised by the 2VNL/nVNL layer.

use crate::version::Operation;
use std::fmt;

/// 2VNL/nVNL errors.
#[derive(Debug, Clone, PartialEq)]
pub enum VnlError {
    /// A maintenance operation hit an "impossible" cell of Tables 2–4 —
    /// the incoming batch is not a valid transaction (e.g. updating a tuple
    /// already deleted in the same transaction).
    InvalidTransition {
        /// The attempted logical operation.
        attempted: Operation,
        /// The tuple's recorded previous operation.
        previous: Operation,
        /// Whether the previous operation belongs to the same maintenance
        /// transaction (`tupleVN = maintenanceVN`).
        same_txn: bool,
    },
    /// The reader session can no longer see a consistent state (Table 1
    /// case 3 / §5 case 3, or the global check of §4.1 failed).
    SessionExpired {
        /// The session's version number.
        session_vn: u64,
        /// `currentVN` when the expiration was detected — how far the
        /// warehouse had moved past the session. Retry policies use the gap
        /// to decide whether re-reading at a fresh VN is worthwhile.
        current_vn: u64,
        /// The relation whose read detected the expiration, when known
        /// (`None` for expirations detected against the bare version state).
        table: Option<String>,
    },
    /// A [`crate::resilience::RetryPolicy`] gave up: every attempt within
    /// its budget expired. This is the *typed terminal* form of
    /// [`VnlError::SessionExpired`] — callers seeing it know the retry layer
    /// already did its job and the workload is outpacing the version window.
    RetryExhausted {
        /// Attempts made (including the first, non-retry execution).
        attempts: u32,
        /// The last attempt's session version.
        session_vn: u64,
        /// `currentVN` at the last detected expiration.
        current_vn: u64,
    },
    /// `begin_maintenance` while another maintenance transaction is active;
    /// the paper's external protocol allows one at a time (§2.2).
    MaintenanceAlreadyActive,
    /// A maintenance operation targeted a key with no live tuple.
    NoSuchTuple(String),
    /// An operation needed a unique key but the relation declares none.
    KeyRequired(&'static str),
    /// The maintenance transaction was already finished (committed/aborted).
    TxnFinished,
    /// An index with this name already exists.
    DuplicateIndex(String),
    /// No index with this name exists.
    NoSuchIndex(String),
    /// §4.3: secondary indexes are supported on non-updatable attributes
    /// only (updatable attributes live inside CASE expressions after the
    /// rewrite, which a stock optimizer cannot index).
    IndexOnUpdatable(String),
    /// An armed failpoint injected a fault at the named site (fault-injection
    /// testing only; sites compile in under the `failpoints` feature).
    FaultInjected(&'static str),
    /// Storage failure.
    Storage(wh_storage::StorageError),
    /// SQL failure (rewrite or execution).
    Sql(wh_sql::SqlError),
    /// Data-model failure.
    Type(wh_types::TypeError),
}

impl fmt::Display for VnlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VnlError::InvalidTransition {
                attempted,
                previous,
                same_txn,
            } => write!(
                f,
                "impossible maintenance transition: {attempted} after {previous} ({})",
                if *same_txn {
                    "same transaction"
                } else {
                    "earlier transaction"
                }
            ),
            VnlError::SessionExpired {
                session_vn,
                current_vn,
                table,
            } => {
                write!(
                    f,
                    "reader session at version {session_vn} has expired (currentVN {current_vn}"
                )?;
                if let Some(t) = table {
                    write!(f, ", table {t}")?;
                }
                write!(f, "); begin a new session")
            }
            VnlError::RetryExhausted {
                attempts,
                session_vn,
                current_vn,
            } => write!(
                f,
                "retry budget exhausted after {attempts} attempts: session at version \
                 {session_vn} kept expiring (currentVN {current_vn})"
            ),
            VnlError::MaintenanceAlreadyActive => {
                write!(f, "a maintenance transaction is already active (one at a time)")
            }
            VnlError::NoSuchTuple(key) => write!(f, "no live tuple with key {key}"),
            VnlError::KeyRequired(what) => {
                write!(f, "{what} requires the relation to declare a unique key")
            }
            VnlError::TxnFinished => write!(f, "maintenance transaction already finished"),
            VnlError::DuplicateIndex(name) => write!(f, "index already exists: {name}"),
            VnlError::NoSuchIndex(name) => write!(f, "no such index: {name}"),
            VnlError::IndexOnUpdatable(col) => write!(
                f,
                "cannot index updatable attribute {col} (§4.3: it is hidden inside CASE expressions after the rewrite)"
            ),
            VnlError::FaultInjected(point) => {
                write!(f, "injected fault at failpoint '{point}'")
            }
            VnlError::Storage(e) => write!(f, "{e}"),
            VnlError::Sql(e) => write!(f, "{e}"),
            VnlError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VnlError {}

impl From<wh_types::fault::FaultError> for VnlError {
    fn from(e: wh_types::fault::FaultError) -> Self {
        VnlError::FaultInjected(e.point)
    }
}

impl From<wh_storage::StorageError> for VnlError {
    fn from(e: wh_storage::StorageError) -> Self {
        VnlError::Storage(e)
    }
}

impl From<wh_sql::SqlError> for VnlError {
    fn from(e: wh_sql::SqlError) -> Self {
        VnlError::Sql(e)
    }
}

impl From<wh_types::TypeError> for VnlError {
    fn from(e: wh_types::TypeError) -> Self {
        VnlError::Type(e)
    }
}

/// Result alias for 2VNL operations.
pub type VnlResult<T> = Result<T, VnlError>;
