//! The maintenance transaction: decision Tables 2–4, net effects, commit,
//! and log-free rollback.
//!
//! Every logical insert/update/delete consults the tuple's `(tupleVN,
//! operation)` slot and translates into the physical action the tables
//! prescribe — preserving both tuple versions and recording the **net
//! effect** of multiple operations on one tuple within the transaction
//! (\[SP89\]): insert∘update = insert, delete∘insert = update, insert∘delete =
//! nothing, update∘delete = delete.
//!
//! **Rollback without logging** (§7 future work): because a touched tuple
//! still carries its pre-update version, an aborting maintenance transaction
//! restores tuples from their own version slots. The only thing the tuple
//! cannot remember is whatever `push_back` squeezed out of the oldest slot
//! (for 2VNL, the single slot's previous `(tupleVN, operation, pre-values)`);
//! those few bytes are kept in a transaction-private in-memory map — no
//! before-image log of data pages is ever written.

use crate::error::{VnlError, VnlResult};
use crate::table::VnlTable;
use crate::version::{Operation, VersionNo};
use std::collections::HashMap;
use std::sync::Mutex;
use wh_sql::{parse_statement, EvalContext, Expr, Params, Statement};
use wh_storage::Rid;
use wh_types::fail_point;
use wh_types::{Row, Value};

/// What a logical maintenance operation physically did to a tuple — one
/// variant per non-impossible cell of Tables 2–4. The per-transaction trace
/// of these reproduces Examples 4.2–4.4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysicalAction {
    /// Table 2 row 3: no conflicting tuple — physical insert.
    InsertTuple,
    /// Table 2 row 1 (previous = delete): resurrect a logically-deleted
    /// tuple in place (`PV ← nulls, CV ← MV, op ← insert`).
    ResurrectTuple,
    /// Table 2 row 2 (previous = delete, same txn): delete∘insert = update
    /// (`CV ← MV, op ← update`).
    UpdateAfterOwnDelete,
    /// Table 3 row 1: first update by this txn (`PV ← CV, CV ← MV`).
    UpdateSavingPre,
    /// Table 3 row 2: repeat update in the same txn (`CV ← MV` only).
    UpdateInPlace,
    /// Table 4 row 1: logical delete (`PV ← CV, op ← delete`).
    MarkDeleted,
    /// Table 4 row 2 (previous = insert): insert∘delete = nothing —
    /// physical delete of the txn's own insert.
    RemoveOwnInsert,
    /// Table 4 row 2 (previous = insert that resurrected an old tuple):
    /// restore the pre-resurrection tuple instead of physically deleting.
    RestoreResurrected,
    /// Table 4 row 2 (previous = update): update∘delete = delete
    /// (`op ← delete` only).
    MarkOwnUpdateDeleted,
}

impl PhysicalAction {
    /// Stable registry-metric suffix for this decision-table arm, used as
    /// `vnl.maintenance.arm.<suffix>` so a single snapshot shows which
    /// Tables 2–4 cells a workload actually exercises.
    pub fn metric_suffix(&self) -> &'static str {
        match self {
            PhysicalAction::InsertTuple => "insert_tuple",
            PhysicalAction::ResurrectTuple => "resurrect_tuple",
            PhysicalAction::UpdateAfterOwnDelete => "update_after_own_delete",
            PhysicalAction::UpdateSavingPre => "update_saving_pre",
            PhysicalAction::UpdateInPlace => "update_in_place",
            PhysicalAction::MarkDeleted => "mark_deleted",
            PhysicalAction::RemoveOwnInsert => "remove_own_insert",
            PhysicalAction::RestoreResurrected => "restore_resurrected",
            PhysicalAction::MarkOwnUpdateDeleted => "mark_own_update_deleted",
        }
    }

    /// Cached `vnl.maintenance.arm.<suffix>` counter for this arm. Each
    /// variant resolves through its own `counter!` call site, so after the
    /// first hit this is a single static load — no registry lock.
    fn arm_counter(&self) -> &'static wh_obs::Counter {
        match self {
            PhysicalAction::InsertTuple => wh_obs::counter!("vnl.maintenance.arm.insert_tuple"),
            PhysicalAction::ResurrectTuple => {
                wh_obs::counter!("vnl.maintenance.arm.resurrect_tuple")
            }
            PhysicalAction::UpdateAfterOwnDelete => {
                wh_obs::counter!("vnl.maintenance.arm.update_after_own_delete")
            }
            PhysicalAction::UpdateSavingPre => {
                wh_obs::counter!("vnl.maintenance.arm.update_saving_pre")
            }
            PhysicalAction::UpdateInPlace => {
                wh_obs::counter!("vnl.maintenance.arm.update_in_place")
            }
            PhysicalAction::MarkDeleted => wh_obs::counter!("vnl.maintenance.arm.mark_deleted"),
            PhysicalAction::RemoveOwnInsert => {
                wh_obs::counter!("vnl.maintenance.arm.remove_own_insert")
            }
            PhysicalAction::RestoreResurrected => {
                wh_obs::counter!("vnl.maintenance.arm.restore_resurrected")
            }
            PhysicalAction::MarkOwnUpdateDeleted => {
                wh_obs::counter!("vnl.maintenance.arm.mark_own_update_deleted")
            }
        }
    }
}

impl std::fmt::Display for PhysicalAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PhysicalAction::InsertTuple => "insert tuple (PV<-nulls, CV<-MV)",
            PhysicalAction::ResurrectTuple => "update tuple (PV<-nulls, CV<-MV, op<-insert)",
            PhysicalAction::UpdateAfterOwnDelete => "update tuple (CV<-MV, op<-update)",
            PhysicalAction::UpdateSavingPre => "update tuple (PV<-CV, CV<-MV, op<-update)",
            PhysicalAction::UpdateInPlace => "update tuple (CV<-MV)",
            PhysicalAction::MarkDeleted => "update tuple (PV<-CV, op<-delete)",
            PhysicalAction::RemoveOwnInsert => "delete tuple",
            PhysicalAction::RestoreResurrected => "restore pre-resurrection tuple",
            PhysicalAction::MarkOwnUpdateDeleted => "update tuple (op<-delete)",
        };
        write!(f, "{s}")
    }
}

/// Undo record for one touched tuple, kept in memory for abort only.
#[derive(Debug, Clone)]
enum UndoEntry {
    /// Physically inserted by this txn: abort = physical delete.
    Fresh,
    /// Existing tuple whose `push_back` dropped its oldest slot (always the
    /// case for 2VNL): abort restores the slot from here.
    Dropped {
        vn: VersionNo,
        op: Operation,
        /// Pre-update values of the dropped slot (parallel to
        /// `layout.updatable()`).
        pre: Vec<Value>,
    },
    /// Existing tuple with a spare slot (nVNL): abort = `shift_forward`.
    Shifted,
}

/// The single active maintenance transaction on a [`VnlTable`].
/// Records the elapsed time of one maintenance phase into a histogram when
/// dropped, so early returns (`?`) and error paths are timed like successes.
struct PhaseTimer {
    hist: &'static wh_obs::Histogram,
    timer: wh_obs::Timer,
}

impl PhaseTimer {
    fn new(hist: &'static wh_obs::Histogram) -> Self {
        PhaseTimer {
            hist,
            timer: wh_obs::Timer::start(),
        }
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        self.hist.record(self.timer.elapsed_ns());
    }
}

pub struct MaintenanceTxn<'t> {
    table: &'t VnlTable,
    vn: VersionNo,
    finished: Mutex<bool>,
    undo: Mutex<HashMap<Rid, UndoEntry>>,
    trace: Mutex<Vec<(PhysicalAction, Row)>>,
    tracing: std::sync::atomic::AtomicBool,
    /// Root trace span covering the whole transaction; per-phase spans
    /// parent under it so one trace id is the txn's causal story. Closed
    /// by `Drop` — a forgotten txn (crash) leaves it open, which is
    /// exactly what the flight recorder should show at recovery time.
    span_ctx: wh_obs::TraceCtx,
}

impl<'t> MaintenanceTxn<'t> {
    pub(crate) fn new(table: &'t VnlTable, vn: VersionNo) -> Self {
        MaintenanceTxn {
            table,
            vn,
            finished: Mutex::new(false),
            undo: Mutex::new(HashMap::new()),
            trace: Mutex::new(Vec::new()),
            tracing: std::sync::atomic::AtomicBool::new(false),
            span_ctx: wh_obs::trace::open_ctx(wh_obs::trace_name!("vnl.txn"), 0, vn),
        }
    }

    /// This transaction's `maintenanceVN` (= `currentVN + 1`).
    pub fn maintenance_vn(&self) -> VersionNo {
        self.vn
    }

    /// The table this transaction maintains (the pacer consults its leases
    /// and effective window right before commit).
    pub(crate) fn table(&self) -> &VnlTable {
        self.table
    }

    /// Enable recording of per-tuple physical actions (Examples 4.2–4.4
    /// traces). Off by default.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, std::sync::atomic::Ordering::Relaxed); // ordering: trace-toggle Relaxed — advisory trace toggle; no data is published through it
    }

    /// Drain the recorded `(action, key-values)` trace.
    pub fn take_trace(&self) -> Vec<(PhysicalAction, Row)> {
        std::mem::take(
            &mut *self
                .trace
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn record(&self, action: PhysicalAction, ext_row: &[Value]) {
        // Decision-table arm counters fire regardless of the tracing flag:
        // they are one relaxed atomic add each, and the arm distribution is
        // exactly what E20's snapshot wants from a production-shaped run.
        action.arm_counter().inc();
        // ordering: trace-toggle Relaxed — advisory trace toggle; no data is published through it
        if self.tracing.load(std::sync::atomic::Ordering::Relaxed) {
            let key = self.table.layout().ext_schema().key_of(ext_row);
            self.trace
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((action, key));
        }
    }

    fn check_open(&self) -> VnlResult<()> {
        if *self
            .finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Err(VnlError::TxnFinished)
        } else {
            Ok(())
        }
    }

    /// Save undo info for the first touch of an existing tuple, *before* its
    /// slots are pushed back.
    fn save_undo_existing(&self, rid: Rid, ext_row: &[Value]) {
        let mut undo = self
            .undo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if undo.contains_key(&rid) {
            return;
        }
        let layout = self.table.layout();
        let last = layout.slots() - 1;
        let entry = match layout.slot(ext_row, last) {
            // Oldest slot occupied: push_back will drop it — save it.
            Some((vn, op)) => UndoEntry::Dropped {
                vn,
                op,
                pre: layout
                    .pre_set(last)
                    .iter()
                    .map(|&i| ext_row[i].clone())
                    .collect(),
            },
            None => UndoEntry::Shifted,
        };
        undo.insert(rid, entry);
    }

    /// Read the maintenance transaction's own view: always the current
    /// version of every live tuple (Table 1 row 1, §3.3).
    pub fn scan_current(&self) -> VnlResult<Vec<Row>> {
        self.check_open()?;
        // Pin: the scan walks RIDs; a concurrent GC pass must not recycle
        // slots mid-walk.
        let _pin = self.table.epochs().pin();
        let layout = self.table.layout();
        let mut out = Vec::new();
        self.table.storage().scan(|_, ext| {
            let (_, op) = layout.slot(&ext, 0).expect("slot 0 populated"); // lint: allow(no-panic) — invariant documented in the expect message
            if op != Operation::Delete {
                out.push(layout.current_values(&ext));
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Point-read the current version of the tuple keyed by `key_row`
    /// (`None` when logically absent). The maintenance transaction's own
    /// uncommitted changes are visible to itself.
    pub fn read_current(&self, key_row: &[Value]) -> VnlResult<Option<Row>> {
        self.check_open()?;
        // Pin: find_physical probes the key directory's RIDs against raw
        // tuple memory; hold the epoch across probe + read.
        let _pin = self.table.epochs().pin();
        let layout = self.table.layout();
        let Some(rid) = self
            .table
            .find_physical(&self.table.base_to_ext_positions(key_row))
        else {
            return Ok(None);
        };
        let ext = match self.table.storage().read(rid) {
            Ok(e) => e,
            // Reclaimed by a concurrent GC pass: logically absent.
            Err(wh_storage::StorageError::NoSuchSlot { .. }) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (_, op) = layout.slot(&ext, 0).expect("slot 0 populated"); // lint: allow(no-panic) — invariant documented in the expect message
        if op == Operation::Delete {
            return Ok(None);
        }
        Ok(Some(layout.current_values(&ext)))
    }

    // ------------------------------------------------------------------
    // Table 2: logical INSERT
    // ------------------------------------------------------------------

    /// Logically insert `base_row` (Table 2).
    pub fn insert(&self, base_row: Row) -> VnlResult<()> {
        let _phase = PhaseTimer::new(wh_obs::histogram!("vnl.maintenance.insert_ns"));
        // trace: phase span parented under the txn's root span.
        let _ts = wh_obs::trace_span_under!("vnl.txn.insert", self.span_ctx);
        self.check_open()?;
        self.table.layout().base_schema().validate(&base_row)?;
        let layout = self.table.layout();

        // Pin: the conflict probe and the physical insert below touch RIDs
        // a concurrent GC pass could otherwise recycle.
        let _pin = self.table.epochs().pin();
        // Key conflict detection (rows 1–2 of Table 2) — only for keyed
        // relations; keyless relations always take row 3.
        let conflict = self
            .table
            .find_physical(&self.table.base_to_ext_positions(&base_row));
        let Some(rid) = conflict else {
            // Row 3: physical insert.
            fail_point!("vnl.txn.insert.fresh");
            let ext = layout.new_insert_row(&base_row, self.vn);
            let new_rid = self.table.storage().insert(&ext)?;
            // Crash window: the tuple exists but is not yet key-registered
            // (an orphan until rollback or recovery reclaims it).
            fail_point!("vnl.txn.insert.register");
            if let Some(dir) = self.table.key_dir() {
                dir.register(&ext, new_rid)
                    .expect("no conflict was found just above"); // lint: allow(no-panic) — invariant documented in the expect message
            }
            self.table.on_physical_insert(&ext, new_rid);
            self.undo
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(new_rid, UndoEntry::Fresh);
            self.record(PhysicalAction::InsertTuple, &ext);
            return Ok(());
        };

        let ext = match self.table.storage().read(rid) {
            Ok(e) => e,
            // The concurrent GC daemon may reclaim a logically-deleted tuple
            // between the key probe and this read; clear any stale key
            // registration (GC unregisters after its physical delete) and
            // retry as a fresh insert.
            Err(wh_storage::StorageError::NoSuchSlot { .. }) => {
                if let Some(dir) = self.table.key_dir() {
                    let _ = dir.unregister(&self.table.base_to_ext_positions(&base_row), rid);
                }
                return self.insert(base_row);
            }
            Err(e) => return Err(e.into()),
        };
        let (tuple_vn, prev_op) = layout.slot(&ext, 0).expect("slot 0 populated"); // lint: allow(no-panic) — invariant documented in the expect message
        match (tuple_vn < self.vn, prev_op) {
            // Row 1: earlier transaction. Insert over a live tuple is
            // impossible; over a logically-deleted tuple it resurrects.
            (true, Operation::Insert | Operation::Update) => Err(VnlError::InvalidTransition {
                attempted: Operation::Insert,
                previous: prev_op,
                same_txn: false,
            }),
            (true, Operation::Delete) => {
                self.save_undo_existing(rid, &ext);
                fail_point!("vnl.txn.insert.resurrect");
                let mut new_ext = None;
                let modified = self.table.storage().modify(rid, |mut row| {
                    layout.push_back(&mut row);
                    row[layout.vn_col(0)] = Value::from(self.vn as i64);
                    row[layout.op_col(0)] = Operation::Insert.value();
                    for &i in layout.pre_set(0) {
                        row[i] = Value::Null;
                    }
                    for (i, v) in base_row.iter().enumerate() {
                        row[layout.base_col(i)] = v.clone();
                    }
                    new_ext = Some(row.clone());
                    Ok(row)
                });
                match modified {
                    Ok(()) => {}
                    // Same race as above, one step later: GC reclaimed the
                    // logically-deleted tuple after our read but before the
                    // resurrecting write. Undo entry and key registration
                    // are stale; drop both and retry as a fresh insert.
                    Err(wh_storage::StorageError::NoSuchSlot { .. }) => {
                        self.undo
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .remove(&rid);
                        if let Some(dir) = self.table.key_dir() {
                            let _ =
                                dir.unregister(&self.table.base_to_ext_positions(&base_row), rid);
                        }
                        return self.insert(base_row);
                    }
                    Err(e) => return Err(e.into()),
                }
                // CV ← MV may have moved non-updatable indexed attributes.
                self.table
                    .on_physical_update(&ext, new_ext.as_ref().expect("modify ran"), rid); // lint: allow(no-panic) — invariant documented in the expect message
                self.record(
                    PhysicalAction::ResurrectTuple,
                    &self.table.base_to_ext_positions(&base_row),
                );
                Ok(())
            }
            // Row 2: same transaction. Only delete∘insert is valid: the net
            // effect is an update.
            (false, Operation::Insert | Operation::Update) => Err(VnlError::InvalidTransition {
                attempted: Operation::Insert,
                previous: prev_op,
                same_txn: true,
            }),
            (false, Operation::Delete) => {
                let mut new_ext = None;
                self.table.storage().modify(rid, |mut row| {
                    row[layout.op_col(0)] = Operation::Update.value();
                    for (i, v) in base_row.iter().enumerate() {
                        row[layout.base_col(i)] = v.clone();
                    }
                    new_ext = Some(row.clone());
                    Ok(row)
                })?;
                self.table
                    .on_physical_update(&ext, new_ext.as_ref().expect("modify ran"), rid); // lint: allow(no-panic) — invariant documented in the expect message
                self.record(
                    PhysicalAction::UpdateAfterOwnDelete,
                    &self.table.base_to_ext_positions(&base_row),
                );
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Table 3: logical UPDATE
    // ------------------------------------------------------------------

    fn apply_update(&self, rid: Rid, new_updatable: &[Value]) -> VnlResult<()> {
        let _phase = PhaseTimer::new(wh_obs::histogram!("vnl.maintenance.update_ns"));
        // trace: phase span parented under the txn's root span.
        let _ts = wh_obs::trace_span_under!("vnl.txn.update", self.span_ctx);
        let layout = self.table.layout();
        let ext = match self.table.storage().read(rid) {
            Ok(e) => e,
            Err(wh_storage::StorageError::NoSuchSlot { .. }) => {
                return Err(VnlError::NoSuchTuple(format!("{rid}")));
            }
            Err(e) => return Err(e.into()),
        };
        let (tuple_vn, prev_op) = layout.slot(&ext, 0).expect("slot 0 populated"); // lint: allow(no-panic) — invariant documented in the expect message
        match (tuple_vn < self.vn, prev_op) {
            (true, Operation::Insert | Operation::Update) => {
                // Row 1: save pre-update values, stamp the new slot.
                self.save_undo_existing(rid, &ext);
                fail_point!("vnl.txn.update.save_pre");
                self.table.storage().modify(rid, |mut row| {
                    layout.push_back(&mut row);
                    for (u_pos, &u) in layout.updatable().iter().enumerate() {
                        row[layout.pre_set(0)[u_pos]] = row[layout.base_col(u)].clone();
                        row[layout.base_col(u)] = new_updatable[u_pos].clone();
                    }
                    row[layout.vn_col(0)] = Value::from(self.vn as i64);
                    row[layout.op_col(0)] = Operation::Update.value();
                    Ok(row)
                })?;
                self.record(PhysicalAction::UpdateSavingPre, &ext);
                Ok(())
            }
            (false, Operation::Insert | Operation::Update) => {
                // Row 2: overwrite current values only; net effect keeps the
                // recorded operation (insert stays insert).
                fail_point!("vnl.txn.update.in_place");
                self.table.storage().modify(rid, |mut row| {
                    for (u_pos, &u) in layout.updatable().iter().enumerate() {
                        row[layout.base_col(u)] = new_updatable[u_pos].clone();
                    }
                    Ok(row)
                })?;
                self.record(PhysicalAction::UpdateInPlace, &ext);
                Ok(())
            }
            (same_txn_is_false, Operation::Delete) => Err(VnlError::InvalidTransition {
                attempted: Operation::Update,
                previous: Operation::Delete,
                same_txn: !same_txn_is_false,
            }),
        }
    }

    /// Logically update every visible tuple matching `predicate` (over base
    /// columns), applying `assignments` to **updatable** columns (Table 3,
    /// cursor approach of §4.2.2). Returns the number of tuples updated.
    pub fn update_where(
        &self,
        predicate: Option<&Expr>,
        assignments: &[(String, Expr)],
        params: &Params,
    ) -> VnlResult<u64> {
        self.check_open()?;
        let layout = self.table.layout();
        let base_schema = layout.base_schema();
        // Resolve assignment targets: must be updatable columns.
        let mut targets: Vec<usize> = Vec::with_capacity(assignments.len());
        for (name, _) in assignments {
            let idx = base_schema.column_index(name)?;
            if !base_schema.columns()[idx].updatable {
                return Err(VnlError::KeyRequired(
                    "maintenance UPDATE may only assign updatable columns",
                ));
            }
            targets.push(idx);
        }
        let ctx = EvalContext::new(base_schema, params);
        let mut count = 0;
        for (rid, current) in self.visible_cursor(predicate, params)? {
            let mut new_row = current.clone();
            for (t, (_, expr)) in targets.iter().zip(assignments) {
                new_row[*t] = ctx.eval(expr, &current)?;
            }
            let new_updatable: Vec<Value> = layout
                .updatable()
                .iter()
                .map(|&u| new_row[u].clone())
                .collect();
            self.apply_update(rid, &new_updatable)?;
            count += 1;
        }
        Ok(count)
    }

    /// Logically update the tuple whose key matches `key_row` (a base-schema
    /// row whose key columns are set), replacing its updatable columns with
    /// those of `key_row`.
    pub fn update_row(&self, base_row: &Row) -> VnlResult<()> {
        self.check_open()?;
        // Pin: find_physical probes RIDs; hold the epoch across probe +
        // in-place shift.
        let _pin = self.table.epochs().pin();
        let layout = self.table.layout();
        let rid = self
            .table
            .find_physical(&self.table.base_to_ext_positions(base_row))
            .ok_or_else(|| {
                VnlError::NoSuchTuple(format!("{:?}", layout.base_schema().key_of(base_row)))
            })?;
        let new_updatable: Vec<Value> = layout
            .updatable()
            .iter()
            .map(|&u| base_row[u].clone())
            .collect();
        self.apply_update(rid, &new_updatable)
    }

    // ------------------------------------------------------------------
    // Table 4: logical DELETE
    // ------------------------------------------------------------------

    fn apply_delete(&self, rid: Rid) -> VnlResult<()> {
        let _phase = PhaseTimer::new(wh_obs::histogram!("vnl.maintenance.delete_ns"));
        // trace: phase span parented under the txn's root span.
        let _ts = wh_obs::trace_span_under!("vnl.txn.delete", self.span_ctx);
        let layout = self.table.layout();
        let ext = match self.table.storage().read(rid) {
            Ok(e) => e,
            Err(wh_storage::StorageError::NoSuchSlot { .. }) => {
                return Err(VnlError::NoSuchTuple(format!("{rid}")));
            }
            Err(e) => return Err(e.into()),
        };
        let (tuple_vn, prev_op) = layout.slot(&ext, 0).expect("slot 0 populated"); // lint: allow(no-panic) — invariant documented in the expect message
        match (tuple_vn < self.vn, prev_op) {
            (true, Operation::Insert | Operation::Update) => {
                // Row 1: logical delete — preserve current values as the
                // pre-delete version, keep CV (Figure 6's Berkeley row).
                self.save_undo_existing(rid, &ext);
                fail_point!("vnl.txn.delete.mark");
                self.table.storage().modify(rid, |mut row| {
                    layout.push_back(&mut row);
                    for (u_pos, &u) in layout.updatable().iter().enumerate() {
                        row[layout.pre_set(0)[u_pos]] = row[layout.base_col(u)].clone();
                    }
                    row[layout.vn_col(0)] = Value::from(self.vn as i64);
                    row[layout.op_col(0)] = Operation::Delete.value();
                    Ok(row)
                })?;
                self.record(PhysicalAction::MarkDeleted, &ext);
                Ok(())
            }
            (false, Operation::Insert) => {
                // Row 2, previous insert: the tuple was created (or
                // resurrected) by this very transaction.
                let undo_entry = self
                    .undo
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get(&rid)
                    .cloned();
                match undo_entry {
                    Some(UndoEntry::Fresh) | None => {
                        // Net effect insert∘delete = nothing: physical delete.
                        if let Some(dir) = self.table.key_dir() {
                            let _ = dir.unregister(&ext, rid);
                        }
                        // Crash window: key unregistered, tuple still stored.
                        fail_point!("vnl.txn.delete.remove_own");
                        self.table.storage().delete(rid)?;
                        self.table.on_physical_delete(&ext, rid);
                        self.undo
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .remove(&rid);
                        self.record(PhysicalAction::RemoveOwnInsert, &ext);
                        Ok(())
                    }
                    Some(entry) => {
                        // The insert resurrected an older tuple: restore it
                        // rather than destroying the still-needed pre-delete
                        // version.
                        self.restore_touched(rid, &entry)?;
                        self.undo
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .remove(&rid);
                        self.record(PhysicalAction::RestoreResurrected, &ext);
                        Ok(())
                    }
                }
            }
            (false, Operation::Update) => {
                // Row 2, previous update: update∘delete = delete.
                fail_point!("vnl.txn.delete.mark_own_update");
                self.table.storage().modify(rid, |mut row| {
                    row[layout.op_col(0)] = Operation::Delete.value();
                    Ok(row)
                })?;
                self.record(PhysicalAction::MarkOwnUpdateDeleted, &ext);
                Ok(())
            }
            (same_txn_is_false, Operation::Delete) => Err(VnlError::InvalidTransition {
                attempted: Operation::Delete,
                previous: Operation::Delete,
                same_txn: !same_txn_is_false,
            }),
        }
    }

    /// Logically delete every visible tuple matching `predicate` (Table 4,
    /// §4.2.3 cursor approach). Returns the number of tuples deleted.
    pub fn delete_where(&self, predicate: Option<&Expr>, params: &Params) -> VnlResult<u64> {
        self.check_open()?;
        let mut count = 0;
        for (rid, _) in self.visible_cursor(predicate, params)? {
            self.apply_delete(rid)?;
            count += 1;
        }
        Ok(count)
    }

    /// Logically delete the tuple whose key matches `base_row`.
    pub fn delete_row(&self, base_row: &Row) -> VnlResult<()> {
        self.check_open()?;
        // Pin: find_physical probes RIDs; hold the epoch across probe +
        // delete marking.
        let _pin = self.table.epochs().pin();
        let rid = self
            .table
            .find_physical(&self.table.base_to_ext_positions(base_row))
            .ok_or_else(|| {
                VnlError::NoSuchTuple(format!(
                    "{:?}",
                    self.table.layout().base_schema().key_of(base_row)
                ))
            })?;
        // A key pointing at a tuple already logically deleted by an earlier
        // transaction is "not there" for deletion purposes.
        let ext = self.table.storage().read(rid)?;
        let (tuple_vn, op) = self.table.layout().slot(&ext, 0).expect("slot 0"); // lint: allow(no-panic) — invariant documented in the expect message
        if op == Operation::Delete && tuple_vn < self.vn {
            return Err(VnlError::NoSuchTuple(format!(
                "{:?}",
                self.table.layout().base_schema().key_of(base_row)
            )));
        }
        self.apply_delete(rid)
    }

    /// Stable cursor over tuples this transaction can see (current versions,
    /// excluding logically-deleted), filtered by an optional base-schema
    /// predicate — the §4.2 cursor.
    fn visible_cursor(
        &self,
        predicate: Option<&Expr>,
        params: &Params,
    ) -> VnlResult<Vec<(Rid, Row)>> {
        let layout = self.table.layout();
        let ctx = EvalContext::new(layout.base_schema(), params);
        let mut matches = Vec::new();
        let mut eval_err = None;
        self.table.storage().scan(|rid, ext| {
            if eval_err.is_some() {
                return Ok(());
            }
            let (_, op) = layout.slot(&ext, 0).expect("slot 0 populated"); // lint: allow(no-panic) — invariant documented in the expect message
            if op == Operation::Delete {
                return Ok(());
            }
            let current = layout.current_values(&ext);
            let keep = match predicate {
                Some(p) => match ctx.eval_predicate(p, &current) {
                    Ok(b) => b,
                    Err(e) => {
                        eval_err = Some(e);
                        false
                    }
                },
                None => true,
            };
            if keep {
                matches.push((rid, current));
            }
            Ok(())
        })?;
        if let Some(e) = eval_err {
            return Err(e.into());
        }
        Ok(matches)
    }

    // ------------------------------------------------------------------
    // SQL front door (§4.2): the rewrite executed as cursor logic.
    // ------------------------------------------------------------------

    /// Execute a base-schema DML statement (`INSERT`/`UPDATE`/`DELETE` on
    /// this relation) through the decision tables — the runtime counterpart
    /// of the §4.2 statement rewrite. Returns affected-row count.
    pub fn execute_sql(&self, sql: &str, params: &Params) -> VnlResult<u64> {
        self.check_open()?;
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Insert(ins) => {
                if ins.table != self.table.name() {
                    return Err(VnlError::Sql(wh_sql::SqlError::NoSuchTable(ins.table)));
                }
                let base_schema = self.table.layout().base_schema().clone();
                let empty = wh_types::Schema::new(vec![])?;
                let ctx = EvalContext::new(&empty, params);
                let mut n = 0;
                for row_exprs in &ins.rows {
                    let values: Vec<Value> = row_exprs
                        .iter()
                        .map(|e| ctx.eval(e, &[]))
                        .collect::<Result<_, _>>()?;
                    let row = if ins.columns.is_empty() {
                        values
                    } else {
                        let mut row = vec![Value::Null; base_schema.arity()];
                        for (name, v) in ins.columns.iter().zip(values) {
                            row[base_schema.column_index(name)?] = v;
                        }
                        row
                    };
                    self.insert(row)?;
                    n += 1;
                }
                Ok(n)
            }
            Statement::Update(upd) => {
                if upd.table != self.table.name() {
                    return Err(VnlError::Sql(wh_sql::SqlError::NoSuchTable(upd.table)));
                }
                self.update_where(upd.where_clause.as_ref(), &upd.assignments, params)
            }
            Statement::Delete(del) => {
                if del.table != self.table.name() {
                    return Err(VnlError::Sql(wh_sql::SqlError::NoSuchTable(del.table)));
                }
                self.delete_where(del.where_clause.as_ref(), params)
            }
            Statement::Select(_) => Err(VnlError::Sql(wh_sql::SqlError::Unsupported(
                "maintenance transactions read via scan_current()".into(),
            ))),
            Statement::CreateTable(_) | Statement::DropTable(_) => {
                Err(VnlError::Sql(wh_sql::SqlError::Unsupported(
                    "DDL is not part of a maintenance transaction".into(),
                )))
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commit: data changes are already in place; publishing the new
    /// `currentVN` happens as its own latched step (§4's abort-safe order),
    /// retaining the transaction's net-effect batch for session repair in
    /// the same latched step.
    pub fn commit(self) -> VnlResult<()> {
        let _phase = PhaseTimer::new(wh_obs::histogram!("vnl.maintenance.commit_ns"));
        let _ts = wh_obs::trace_span_under!("vnl.txn.commit", self.span_ctx);
        self.check_open()?;
        // Capture before `finished` flips: a fault here leaves the txn
        // open, so Drop rolls everything back and nothing — data or delta —
        // is published.
        let batch = self.capture_net_effect()?;
        *self
            .finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.table
            .version()
            .publish_commit_with(self.vn, Some(batch))?;
        wh_obs::slo::note_commit();
        Ok(())
    }

    /// Derive this transaction's net-effect batch ([`crate::delta`]): scan
    /// for tuples whose slot 0 carries `maintenanceVN` — the same discovery
    /// log-free rollback uses — and read the net logical operation straight
    /// from the version slots. Table 4's discipline makes this exact by
    /// construction: an insert-then-update tuple carries `(vn, insert)`, a
    /// physically-removed own insert and a restored resurrection leave no
    /// slot-0 trace, so each touched key yields exactly its net effect.
    pub(crate) fn capture_net_effect(&self) -> VnlResult<crate::delta::DeltaBatch> {
        let layout = self.table.layout();
        let base = layout.base_schema();
        // No primary key → rows cannot be addressed for patching; retain an
        // unrepairable batch so the repair window fails closed to restart.
        if base.key().is_empty() {
            return Ok(crate::delta::DeltaBatch {
                vn: self.vn,
                rows: Vec::new(),
                repairable: false,
            });
        }
        wh_obs::trace_event!("vnl.delta.capture", self.vn);
        // trace: capture sits inside the commit span's causal story.
        fail_point!("vnl.delta.capture");
        let table_name = self.table.name().to_string();
        let mut rows = Vec::new();
        // Pin: the capture scan walks RIDs; GC must not recycle slots
        // while the net effect is being assembled.
        let _pin = self.table.epochs().pin();
        self.table.storage().scan(|_, ext| {
            let Some((vn, op)) = layout.slot(&ext, 0) else {
                return Ok(());
            };
            if vn != self.vn {
                return Ok(());
            }
            let (pre, post) = match op {
                // Net insert (including resurrections): no prior version.
                Operation::Insert => (None, Some(layout.current_values(&ext))),
                // Slot 0 stashed the pre-update values; non-updatable
                // columns are unchanged by construction.
                Operation::Update => (
                    Some(layout.pre_values(&ext, 0)),
                    Some(layout.current_values(&ext)),
                ),
                // MarkDeleted leaves the current values as the pre-image.
                Operation::Delete => (Some(layout.pre_values(&ext, 0)), None),
            };
            let keyed = pre
                .as_ref()
                .or(post.as_ref())
                .expect("net effect has a side"); // lint: allow(no-panic) — every arm above fills pre or post
            rows.push(crate::delta::DeltaRow {
                table: table_name.clone(),
                key: base.key_of(keyed),
                op,
                pre,
                post,
            });
            Ok(())
        })?;
        Ok(crate::delta::DeltaBatch {
            vn: self.vn,
            rows,
            repairable: true,
        })
    }

    /// Commit only once no reader sessions are active — the §2.1 alternative
    /// policy that trades possible writer starvation for sessions that never
    /// expire. Polls the session registry; returns the number of polls.
    pub fn commit_when_quiescent(self, poll: std::time::Duration) -> VnlResult<u64> {
        self.check_open()?;
        let mut polls = 0;
        while self.table.active_session_count() > 0 {
            polls += 1;
            std::thread::sleep(poll);
        }
        self.commit()?;
        Ok(polls)
    }

    /// Abort by reverting every touched tuple from its own version slots
    /// (§7's log-free rollback), then clearing the maintenance flag.
    pub fn abort(self) -> VnlResult<()> {
        let _phase = PhaseTimer::new(wh_obs::histogram!("vnl.maintenance.abort_ns"));
        let _ts = wh_obs::trace_span_under!("vnl.txn.abort", self.span_ctx);
        self.check_open()?;
        *self
            .finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.rollback_changes()?;
        self.table.version().publish_abort()?;
        Ok(())
    }

    /// Mark finished without publishing — the warehouse-wide transaction
    /// publishes once for all tables.
    pub(crate) fn commit_local(&self) -> VnlResult<()> {
        self.check_open()?;
        *self
            .finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        Ok(())
    }

    /// Roll back and mark finished without publishing (warehouse abort).
    pub(crate) fn abort_local(&self) -> VnlResult<()> {
        self.check_open()?;
        *self
            .finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.rollback_changes()?;
        Ok(())
    }

    fn rollback_changes(&self) -> VnlResult<()> {
        let _phase = PhaseTimer::new(wh_obs::histogram!("vnl.maintenance.rollback_ns"));
        // trace: phase span parented under the txn's root span.
        let _ts = wh_obs::trace_span_under!("vnl.txn.rollback", self.span_ctx);
        let layout = self.table.layout();
        // Pin: the rollback scan collects RIDs it later mutates; GC must
        // not recycle them in between.
        let _pin = self.table.epochs().pin();
        // Collect this txn's tuples first (stable iteration while mutating).
        let mut touched = Vec::new();
        self.table.storage().scan(|rid, ext| {
            if let Some((vn, _)) = layout.slot(&ext, 0) {
                if vn == self.vn {
                    touched.push(rid);
                }
            }
            Ok(())
        })?;
        let undo = std::mem::take(
            &mut *self
                .undo
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for rid in touched {
            // Per-tuple crash window: a fault mid-rollback leaves some
            // tuples restored and others still carrying maintenanceVN.
            fail_point!("vnl.txn.rollback.step");
            let ext = self.table.storage().read(rid)?;
            match undo.get(&rid) {
                Some(UndoEntry::Fresh) | None => {
                    // Physically inserted by this txn (None can only happen
                    // for Fresh entries consumed by RemoveOwnInsert, which
                    // also removed the tuple — so None here means Fresh).
                    if let Some(dir) = self.table.key_dir() {
                        let _ = dir.unregister(&ext, rid);
                    }
                    self.table.storage().delete(rid)?;
                    self.table.on_physical_delete(&ext, rid);
                }
                Some(entry) => self.restore_touched(rid, entry)?,
            }
        }
        Ok(())
    }

    /// Restore a touched existing tuple to its pre-transaction state using
    /// its own version slots plus the in-memory undo entry.
    fn restore_touched(&self, rid: Rid, entry: &UndoEntry) -> VnlResult<()> {
        let layout = self.table.layout();
        self.table.storage().modify(rid, |mut row| {
            let (_, op) = layout.slot(&row, 0).expect("slot 0 populated"); // lint: allow(no-panic) — invariant documented in the expect message
                                                                           // Current values: updates stashed the pre-txn values in
                                                                           // pre_set(0); resurrections destroyed CV but deleted tuples have
                                                                           // CV == pre-delete values, recoverable from the undo entry or
                                                                           // slot 1; deletes left CV untouched.
            match op {
                Operation::Update => {
                    for (u_pos, &u) in layout.updatable().iter().enumerate() {
                        row[layout.base_col(u)] = row[layout.pre_set(0)[u_pos]].clone();
                    }
                }
                Operation::Insert => {
                    // Resurrection: pre-txn CV equals the old pre-delete
                    // values.
                    let source: Vec<Value> = match entry {
                        UndoEntry::Dropped { pre, .. } if layout.slots() == 1 => pre.clone(),
                        _ => layout
                            .pre_set(1.min(layout.slots() - 1))
                            .iter()
                            .map(|&i| row[i].clone())
                            .collect(),
                    };
                    for (u_pos, &u) in layout.updatable().iter().enumerate() {
                        row[layout.base_col(u)] = source[u_pos].clone();
                    }
                }
                Operation::Delete => {}
            }
            // Version slots: undo the push_back.
            match entry {
                UndoEntry::Shifted => layout.shift_forward(&mut row),
                UndoEntry::Dropped { vn, op, pre } => {
                    layout.shift_forward(&mut row);
                    let last = layout.slots() - 1;
                    // For 2VNL, shift_forward emptied the only slot; for
                    // nVNL it emptied the last. Either way the dropped slot
                    // goes back in at the oldest position... unless the
                    // tuple only ever had one slot (2VNL), where it goes to
                    // slot 0.
                    let dest = if layout.slots() == 1 { 0 } else { last };
                    row[layout.vn_col(dest)] = Value::from(*vn as i64);
                    row[layout.op_col(dest)] = op.value();
                    for (u_pos, &i) in layout.pre_set(dest).iter().enumerate() {
                        row[i] = pre[u_pos].clone();
                    }
                }
                UndoEntry::Fresh => unreachable!("handled by caller"), // lint: allow(no-panic) — unreachable by construction (see message)
            }
            Ok(row)
        })?;
        Ok(())
    }
}

impl std::fmt::Debug for MaintenanceTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceTxn")
            .field("vn", &self.vn)
            .field(
                "finished",
                &*self
                    .finished
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            )
            .finish()
    }
}

impl Drop for MaintenanceTxn<'_> {
    fn drop(&mut self) {
        let mut finished = self
            .finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !*finished {
            *finished = true;
            // Best-effort auto-abort so a dropped transaction cannot wedge
            // the one-writer protocol.
            let _ = self.rollback_changes();
            let _ = self.table.version().publish_abort();
        }
        // Close the txn's root trace span only here: a transaction that is
        // `mem::forget`-ten (the crash-matrix fault model) never reaches
        // this Drop, so its span stays open and the flight recorder shows
        // the interrupted causal chain at recovery time.
        wh_obs::trace::close_ctx(self.span_ctx, self.vn);
    }
}
