//! Query rewrite (§4): 2VNL on top of a stock DBMS.
//!
//! Reader queries over the base schema are mechanically rewritten to run
//! against the extended schema (Example 4.1):
//!
//! * every reference to an **updatable** attribute becomes a `CASE`
//!   expression choosing the current or pre-update copy by comparing
//!   `:sessionVN` with `tupleVN`;
//! * a guard is added to the `WHERE` clause so logically-absent tuples
//!   (deleted at the session's version, or not yet inserted) drop out.
//!
//! For `n = 2` the output is exactly the paper's shape. The same machinery
//! generalizes to nVNL: the `CASE` walks the version slots newest-to-oldest
//! and the guard enumerates which slot is decisive for the session
//! (`tupleVNⱼ > :sessionVN` and slot `j+1` is empty or `≤ :sessionVN`).
//!
//! Expiration is *not* expressible in the rewritten SQL — an expired row
//! would silently produce its oldest pre-update values — which is why §4.1
//! pairs rewritten queries with the global Version-relation check
//! (`ReaderSession::query_via_rewrite` does this automatically).
//!
//! Operation codes are stored as 1-byte `CHAR(1)` values (`'i'`/`'u'`/`'d'`)
//! to keep Figure 3's byte counts; the paper's `operation <> 'delete'`
//! renders here as `operation <> 'd'`.

use crate::error::VnlResult;
use crate::schema_ext::ExtLayout;
use crate::version::Operation;
use wh_sql::{BinOp, Expr, SelectStmt};

/// Rewrites base-schema SELECTs into extended-schema SELECTs.
#[derive(Debug, Clone)]
pub struct QueryRewriter {
    layout: ExtLayout,
}

impl QueryRewriter {
    /// Build a rewriter for `layout`.
    pub fn new(layout: ExtLayout) -> Self {
        QueryRewriter { layout }
    }

    fn session_param() -> Expr {
        Expr::param("sessionVN")
    }

    fn vn_name(&self, j: usize) -> String {
        self.layout.ext_schema().columns()[self.layout.vn_col(j)]
            .name
            .clone()
    }

    fn op_name(&self, j: usize) -> String {
        self.layout.ext_schema().columns()[self.layout.op_col(j)]
            .name
            .clone()
    }

    fn pre_name(&self, j: usize, updatable_pos: usize) -> String {
        self.layout.ext_schema().columns()[self.layout.pre_set(j)[updatable_pos]]
            .name
            .clone()
    }

    /// The CASE expression substituted for updatable column `name`
    /// (Example 4.1's `CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE
    /// pre_total_sales END`, generalized over slots).
    pub fn value_case(&self, name: &str) -> VnlResult<Expr> {
        let base_idx = self.layout.base_schema().column_index(name)?;
        let u_pos = self
            .layout
            .updatable()
            .iter()
            .position(|&u| u == base_idx)
            .expect("value_case called for an updatable column"); // lint: allow(no-panic) — invariant documented in the expect message
        let slots = self.layout.slots();
        let mut branches = Vec::new();
        // Slot-0 current branch.
        branches.push((
            Expr::binary(
                BinOp::GtEq,
                Self::session_param(),
                Expr::col(self.vn_name(0)),
            ),
            Expr::col(name),
        ));
        // Pre branches: slot j decisive when vn_{j+1} is empty or <= :s.
        for j in 0..slots {
            let pre = Expr::col(self.pre_name(j, u_pos));
            if j + 1 == slots {
                // Oldest slot: the ELSE arm.
                return Ok(Expr::Case {
                    branches,
                    else_expr: Some(Box::new(pre)),
                });
            }
            let next_empty_or_le = Expr::IsNull {
                expr: Box::new(Expr::col(self.vn_name(j + 1))),
                negated: false,
            }
            .or(Expr::binary(
                BinOp::GtEq,
                Self::session_param(),
                Expr::col(self.vn_name(j + 1)),
            ));
            branches.push((next_empty_or_le, pre));
        }
        unreachable!("loop always returns at the oldest slot") // lint: allow(no-panic) — unreachable by construction (see message)
    }

    /// The WHERE guard selecting visible tuples (Example 4.1's
    /// `(:sessionVN >= tupleVN AND operation <> 'd') OR
    /// (:sessionVN < tupleVN AND operation <> 'i')`, generalized).
    pub fn visibility_guard(&self) -> Expr {
        let slots = self.layout.slots();
        let not_op = |j: usize, op: Operation| {
            Expr::binary(
                BinOp::NotEq,
                Expr::col(self.op_name(j)),
                Expr::lit(op.code()),
            )
        };
        // Current-version term.
        let mut guard = Expr::binary(
            BinOp::GtEq,
            Self::session_param(),
            Expr::col(self.vn_name(0)),
        )
        .and(not_op(0, Operation::Delete));
        // Pre-version terms, one per slot.
        for j in 0..slots {
            let mut term =
                Expr::binary(BinOp::Lt, Self::session_param(), Expr::col(self.vn_name(j)));
            if j + 1 < slots {
                term = term.and(
                    Expr::IsNull {
                        expr: Box::new(Expr::col(self.vn_name(j + 1))),
                        negated: false,
                    }
                    .or(Expr::binary(
                        BinOp::GtEq,
                        Self::session_param(),
                        Expr::col(self.vn_name(j + 1)),
                    )),
                );
            }
            term = term.and(not_op(j, Operation::Insert));
            guard = guard.or(term);
        }
        guard
    }

    /// Rewrite a base-schema SELECT into its extended-schema form.
    pub fn rewrite_select(&self, stmt: &SelectStmt) -> VnlResult<SelectStmt> {
        let mut out = stmt.clone();
        // SELECT * expands to the base columns explicitly (the physical
        // table has more columns than the reader should see).
        if out.items.is_empty() {
            out.items = self
                .layout
                .base_schema()
                .columns()
                .iter()
                .map(|c| wh_sql::SelectItem {
                    expr: Expr::col(c.name.clone()),
                    alias: Some(c.name.clone()),
                })
                .collect();
        }
        for item in &mut out.items {
            item.expr = self.rewrite_expr(item.expr.clone())?;
        }
        for g in &mut out.group_by {
            *g = self.rewrite_expr(g.clone())?;
        }
        if let Some(h) = out.having.take() {
            out.having = Some(self.rewrite_expr(h)?);
        }
        for k in &mut out.order_by {
            k.expr = self.rewrite_expr(k.expr.clone())?;
        }
        let guard = self.visibility_guard();
        out.where_clause = Some(match out.where_clause.take() {
            Some(w) => {
                // Guard first (paper's rendering), then the original
                // predicate with its column references rewritten.
                let rewritten = self.rewrite_expr(w)?;
                guard.and(rewritten)
            }
            None => guard,
        });
        Ok(out)
    }

    /// Rewrite one expression: swap updatable column references for their
    /// CASE extraction.
    pub fn rewrite_expr(&self, expr: Expr) -> VnlResult<Expr> {
        let updatable_names: Vec<String> = self
            .layout
            .updatable()
            .iter()
            .map(|&u| self.layout.base_schema().columns()[u].name.clone())
            .collect();
        let mut failure = None;
        let out = expr.transform(&mut |node| match node {
            Expr::Column(ref name) if updatable_names.contains(name) => {
                match self.value_case(name) {
                    Ok(case) => case,
                    Err(e) => {
                        failure = Some(e);
                        node
                    }
                }
            }
            other => other,
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_sql::parse_statement;
    use wh_types::schema::daily_sales_schema;

    fn rewriter(n: usize) -> QueryRewriter {
        QueryRewriter::new(ExtLayout::new(daily_sales_schema(), n).unwrap())
    }

    #[test]
    fn example_4_1_rewrite_text() {
        // The paper's Example 4.1, with our 1-byte operation codes.
        let r = rewriter(2);
        let wh_sql::Statement::Select(q) = parse_statement(
            "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state",
        )
        .unwrap() else {
            panic!()
        };
        let rewritten = r.rewrite_select(&q).unwrap();
        assert_eq!(
            rewritten.to_string(),
            "SELECT city, state, \
             SUM(CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE pre_total_sales END) \
             FROM DailySales \
             WHERE :sessionVN >= tupleVN AND operation <> 'd' \
             OR :sessionVN < tupleVN AND operation <> 'i' \
             GROUP BY city, state"
        );
    }

    #[test]
    fn non_updatable_columns_untouched() {
        let r = rewriter(2);
        let e = r.rewrite_expr(Expr::col("city")).unwrap();
        assert_eq!(e, Expr::col("city"));
    }

    #[test]
    fn updatable_column_in_predicate_rewritten() {
        let r = rewriter(2);
        let wh_sql::Statement::Select(q) =
            parse_statement("SELECT city FROM DailySales WHERE total_sales > 5000").unwrap()
        else {
            panic!()
        };
        let rewritten = r.rewrite_select(&q).unwrap();
        let w = rewritten.where_clause.unwrap().to_string();
        assert!(
            w.contains(
                "CASE WHEN :sessionVN >= tupleVN THEN total_sales ELSE pre_total_sales END > 5000"
            ),
            "got: {w}"
        );
        // The guard is parenthesized as the left operand of the AND.
        assert!(
            w.starts_with("(:sessionVN >= tupleVN AND operation <> 'd'"),
            "got: {w}"
        );
    }

    #[test]
    fn select_star_expands_to_base_columns() {
        let r = rewriter(2);
        let wh_sql::Statement::Select(q) = parse_statement("SELECT * FROM DailySales").unwrap()
        else {
            panic!()
        };
        let rewritten = r.rewrite_select(&q).unwrap();
        assert_eq!(rewritten.items.len(), 5);
        assert_eq!(rewritten.items[0].label(), "city");
        // total_sales expands to its CASE but keeps its alias.
        assert_eq!(rewritten.items[4].label(), "total_sales");
        assert!(matches!(rewritten.items[4].expr, Expr::Case { .. }));
    }

    #[test]
    fn nvnl_case_walks_slots() {
        let r = rewriter(4);
        let case = r.value_case("total_sales").unwrap();
        let text = case.to_string();
        assert!(text.contains(":sessionVN >= tupleVN1 THEN total_sales"));
        assert!(text.contains("tupleVN2 IS NULL OR :sessionVN >= tupleVN2 THEN pre_total_sales1"));
        assert!(text.contains("tupleVN3 IS NULL OR :sessionVN >= tupleVN3 THEN pre_total_sales2"));
        assert!(text.contains("ELSE pre_total_sales3"));
    }

    #[test]
    fn nvnl_guard_enumerates_slots() {
        let r = rewriter(3);
        let g = r.visibility_guard().to_string();
        assert!(g.contains(":sessionVN >= tupleVN1 AND operation1 <> 'd'"));
        assert!(g.contains(":sessionVN < tupleVN1"));
        assert!(g.contains("operation1 <> 'i'"));
        assert!(g.contains(":sessionVN < tupleVN2 AND operation2 <> 'i'"));
    }

    #[test]
    fn group_by_and_order_by_rewritten() {
        let r = rewriter(2);
        let wh_sql::Statement::Select(q) = parse_statement(
            "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY SUM(total_sales) DESC",
        )
        .unwrap() else {
            panic!()
        };
        let rewritten = r.rewrite_select(&q).unwrap();
        let order = rewritten.order_by[0].expr.to_string();
        assert!(order.contains("CASE WHEN"));
    }
}
