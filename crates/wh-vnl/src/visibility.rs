//! Version visibility: Table 1 (§3.2) and its nVNL generalization (§5).
//!
//! A reader at `sessionVN` must see the tuple state that was current in
//! database version `sessionVN` — the effects of all maintenance
//! transactions with `maintenanceVN ≤ sessionVN` and no others. Given a
//! tuple's recorded version slots (newest first), the rules are:
//!
//! 1. `sessionVN ≥ tupleVN₁`: read the **current** attribute values, unless
//!    `operation₁ = delete` (then the tuple is logically absent).
//! 2. otherwise, find the least recorded `tupleVNⱼ > sessionVN` (the
//!    *oldest* slot still newer than the session): read that slot's
//!    **pre-update** values, unless `operationⱼ = insert` (the tuple did not
//!    exist yet).
//! 3. if every slot is occupied and `sessionVN < tupleVN₍ₙ₋₁₎ − 1`, the
//!    session has **expired** — the needed state was pushed out of the tuple.
//!
//! When the oldest slot is empty the tuple's full history is present
//! (tuples are born by insert), so case 3 can only fire on a full tuple.

use crate::schema_ext::ExtLayout;
use crate::version::{Operation, VersionNo};
use wh_types::{Row, Value};

/// What a reader session sees of one stored tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Visible {
    /// The tuple is visible with these (base-schema) values.
    Row(Row),
    /// The tuple is logically absent at the session's version.
    Ignore,
    /// The session has expired (case 3): the needed version is gone.
    Expired,
}

impl Visible {
    /// Unwrap a visible row, `None` otherwise.
    pub fn into_row(self) -> Option<Row> {
        match self {
            Visible::Row(r) => Some(r),
            _ => None,
        }
    }
}

/// Apply Table 1 / §5 to one extended row.
pub fn extract(layout: &ExtLayout, ext_row: &[Value], session_vn: VersionNo) -> Visible {
    let (vn1, op1) = layout
        .slot(ext_row, 0)
        .expect("slot 0 is always populated for live tuples"); // lint: allow(no-panic) — invariant documented in the expect message
                                                               // Case 1: the session is at or past the tuple's newest modification.
    if session_vn >= vn1 {
        return match op1 {
            Operation::Delete => Visible::Ignore,
            _ => Visible::Row(layout.current_values(ext_row)),
        };
    }
    // Case 2: find j* = the oldest recorded slot with tupleVN_j > sessionVN.
    let mut j_star = 0;
    let mut oldest_recorded = 0;
    for j in 1..layout.slots() {
        match layout.slot(ext_row, j) {
            Some((vn_j, _)) => {
                oldest_recorded = j;
                if vn_j > session_vn {
                    j_star = j;
                }
            }
            None => break,
        }
    }
    // Case 3: expired — all slots full, and the session predates even the
    // oldest recorded pre-update version's validity window.
    let slots_full = oldest_recorded == layout.slots() - 1;
    if slots_full && j_star == oldest_recorded {
        let (vn_oldest, _) = layout.slot(ext_row, oldest_recorded).expect("recorded"); // lint: allow(no-panic) — invariant documented in the expect message
        if session_vn + 1 < vn_oldest {
            return Visible::Expired;
        }
    }
    let (_, op_j) = layout.slot(ext_row, j_star).expect("j* is recorded"); // lint: allow(no-panic) — invariant documented in the expect message
    match op_j {
        Operation::Insert => Visible::Ignore,
        _ => Visible::Row(layout.pre_values(ext_row, j_star)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;
    use wh_types::Date;

    fn layout(n: usize) -> ExtLayout {
        ExtLayout::new(daily_sales_schema(), n).unwrap()
    }

    /// Build an extended DailySales row directly (column order per Fig. 3).
    fn row2(vn: i64, op: &str, city: &str, pl: &str, day: u8, sales: Value, pre: Value) -> Row {
        vec![
            Value::from(vn),
            Value::from(op),
            Value::from(city),
            Value::from("CA"),
            Value::from(pl),
            Value::from(Date::ymd(1996, 10, day)),
            sales,
            pre,
        ]
    }

    /// The Figure 4 relation.
    fn figure_4() -> Vec<Row> {
        vec![
            row2(
                3,
                "i",
                "San Jose",
                "golf equip",
                14,
                Value::from(10_000),
                Value::Null,
            ),
            row2(
                4,
                "i",
                "San Jose",
                "golf equip",
                15,
                Value::from(1_500),
                Value::Null,
            ),
            row2(
                4,
                "u",
                "Berkeley",
                "racquetball",
                14,
                Value::from(12_000),
                Value::from(10_000),
            ),
            row2(
                4,
                "d",
                "Novato",
                "rollerblades",
                13,
                Value::from(8_000),
                Value::from(8_000),
            ),
        ]
    }

    #[test]
    fn example_3_2_session_vn_3() {
        // Example 3.2: a reader with sessionVN = 3 sees exactly these rows.
        let l = layout(2);
        let visible: Vec<Row> = figure_4()
            .iter()
            .filter_map(|r| extract(&l, r, 3).into_row())
            .collect();
        assert_eq!(
            visible,
            vec![
                vec![
                    Value::from("San Jose"),
                    Value::from("CA"),
                    Value::from("golf equip"),
                    Value::from(Date::ymd(1996, 10, 14)),
                    Value::from(10_000),
                ],
                vec![
                    Value::from("Berkeley"),
                    Value::from("CA"),
                    Value::from("racquetball"),
                    Value::from(Date::ymd(1996, 10, 14)),
                    Value::from(10_000), // pre-update value
                ],
                vec![
                    Value::from("Novato"),
                    Value::from("CA"),
                    Value::from("rollerblades"),
                    Value::from(Date::ymd(1996, 10, 13)),
                    Value::from(8_000), // pre-delete value
                ],
            ]
        );
    }

    #[test]
    fn session_vn_4_sees_current_state() {
        let l = layout(2);
        let rows = figure_4();
        // Insert at 4: visible with current values.
        assert_eq!(
            extract(&l, &rows[1], 4),
            Visible::Row(vec![
                Value::from("San Jose"),
                Value::from("CA"),
                Value::from("golf equip"),
                Value::from(Date::ymd(1996, 10, 15)),
                Value::from(1_500),
            ])
        );
        // Update at 4: current values.
        assert!(
            matches!(extract(&l, &rows[2], 4), Visible::Row(ref r) if r[4] == Value::from(12_000))
        );
        // Delete at 4: logically absent.
        assert_eq!(extract(&l, &rows[3], 4), Visible::Ignore);
    }

    #[test]
    fn table_1_all_cells_2vnl() {
        let l = layout(2);
        let mk = |op: &str| row2(5, op, "X", "p", 1, Value::from(2), Value::from(1));
        // Current version row of Table 1.
        assert!(matches!(extract(&l, &mk("i"), 5), Visible::Row(_)));
        assert!(matches!(extract(&l, &mk("u"), 5), Visible::Row(_)));
        assert_eq!(extract(&l, &mk("d"), 5), Visible::Ignore);
        // Pre-update version row (sessionVN = tupleVN - 1).
        assert_eq!(extract(&l, &mk("i"), 4), Visible::Ignore);
        let pre_u = extract(&l, &mk("u"), 4).into_row().unwrap();
        assert_eq!(pre_u[4], Value::from(1));
        let pre_d = extract(&l, &mk("d"), 4).into_row().unwrap();
        assert_eq!(pre_d[4], Value::from(1));
        // Case 3: expired.
        assert_eq!(extract(&l, &mk("u"), 3), Visible::Expired);
        assert_eq!(extract(&l, &mk("i"), 3), Visible::Expired);
        assert_eq!(extract(&l, &mk("d"), 3), Visible::Expired);
    }

    /// The Figure 7 tuple: insert at VN 3 (10,000), update at VN 5 (10,200),
    /// delete at VN 6, under 4VNL.
    fn figure_7(l: &ExtLayout) -> Row {
        let mut ext = vec![Value::Null; l.ext_schema().arity()];
        for (i, v) in [
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(10_200),
        ]
        .into_iter()
        .enumerate()
        {
            ext[l.base_col(i)] = v;
        }
        let slots = [
            (6i64, "d", Value::from(10_200)),
            (5, "u", Value::from(10_000)),
            (3, "i", Value::Null),
        ];
        for (j, (vn, op, pre)) in slots.into_iter().enumerate() {
            ext[l.vn_col(j)] = Value::from(vn);
            ext[l.op_col(j)] = Value::from(op);
            ext[l.pre_set(j)[0]] = pre;
        }
        ext
    }

    #[test]
    fn example_5_1_4vnl_visibility() {
        // Example 5.1's complete case analysis.
        let l = layout(4);
        let ext = figure_7(&l);
        // sessionVN >= 6: ignore (deleted).
        assert_eq!(extract(&l, &ext, 6), Visible::Ignore);
        assert_eq!(extract(&l, &ext, 9), Visible::Ignore);
        // sessionVN = 5: pre-update of the delete = 10,200.
        let r5 = extract(&l, &ext, 5).into_row().unwrap();
        assert_eq!(r5[4], Value::from(10_200));
        // sessionVN in {3, 4}: logical tuple with total_sales = 10,000.
        for s in [3, 4] {
            let r = extract(&l, &ext, s).into_row().unwrap();
            assert_eq!(r[4], Value::from(10_000), "sessionVN {s}");
        }
        // sessionVN = 2: ignore (pre-insert).
        assert_eq!(extract(&l, &ext, 2), Visible::Ignore);
        // sessionVN < 2: expired.
        assert_eq!(extract(&l, &ext, 1), Visible::Expired);
        assert_eq!(extract(&l, &ext, 0), Visible::Expired);
    }

    #[test]
    fn partial_history_never_expires() {
        // Only 2 of 3 slots used: full history known, so any old session
        // resolves to Ignore (pre-insert), never Expired.
        let l = layout(4);
        let mut ext = vec![Value::Null; l.ext_schema().arity()];
        for (i, v) in [
            Value::from("X"),
            Value::from("CA"),
            Value::from("p"),
            Value::from(Date::ymd(1996, 1, 1)),
            Value::from(200),
        ]
        .into_iter()
        .enumerate()
        {
            ext[l.base_col(i)] = v;
        }
        ext[l.vn_col(0)] = Value::from(9);
        ext[l.op_col(0)] = Value::from("u");
        ext[l.pre_set(0)[0]] = Value::from(100);
        ext[l.vn_col(1)] = Value::from(7);
        ext[l.op_col(1)] = Value::from("i");
        assert_eq!(extract(&l, &ext, 0), Visible::Ignore);
        assert_eq!(extract(&l, &ext, 6), Visible::Ignore);
        // Sessions between insert and update see the pre-update value.
        let r = extract(&l, &ext, 7).into_row().unwrap();
        assert_eq!(r[4], Value::from(100));
        let r = extract(&l, &ext, 8).into_row().unwrap();
        assert_eq!(r[4], Value::from(100));
        // Sessions at/after the update see current.
        let r = extract(&l, &ext, 9).into_row().unwrap();
        assert_eq!(r[4], Value::from(200));
    }

    #[test]
    fn boundary_of_expiration_is_exact() {
        // With a full 4VNL tuple whose oldest slot is VN v, sessions at
        // v - 1 are fine and v - 2 are expired.
        let l = layout(4);
        let ext = figure_7(&l); // oldest slot VN 3
        assert_ne!(extract(&l, &ext, 2), Visible::Expired); // 3 - 1
        assert_eq!(extract(&l, &ext, 1), Visible::Expired); // 3 - 2
    }
}
