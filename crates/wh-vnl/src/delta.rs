//! Net-effect delta batches: what a maintenance commit retains so expired
//! reader sessions can be *repaired* instead of restarted.
//!
//! The paper's protocol expires a session once its version window moves out
//! from under it, and §4.1's answer is restart-and-rescan. Veldhuizen's
//! transaction-repair observation (PAPERS.md) is that the session's partial
//! result is only wrong by exactly the tuples the overlapping maintenance
//! transactions touched — and the maintenance transaction knows precisely
//! which those are. At commit, [`crate::MaintenanceTxn`] derives its **net
//! effect** per key (the same per-tuple net-effect discipline Table 4 keeps
//! inside the version slots) and publishes it as a [`DeltaBatch`] into the
//! version state's bounded delta log ([`wh_kernel::delta::DeltaLogCore`]).
//! The [`crate::resilience::RepairEngine`] later replays the window
//! `(sessionVN, currentVN]` against the stale partial result; the kernel
//! model suite proves replay-of-a-complete-window ≡ rescan.
//!
//! A batch is retained even when it cannot drive repair (`repairable =
//! false`, e.g. a keyless table): retention must stay *contiguous* per VN or
//! every later window containing that VN would be indistinguishable from an
//! evicted one. Unrepairable batches make the window fail closed into the
//! restart fallback instead.

use crate::version::{Operation, VersionNo};
use wh_types::{Row, Value};

/// How many net-effect batches the delta log retains before evicting from
/// the front. Sized for the §5 regime the log exists for: a session that
/// falls more than this many maintenance transactions behind is far past
/// any tuned `n` and restarting it is the right call anyway.
pub const DELTA_LOG_CAPACITY: usize = 64;

/// The net effect of one maintenance transaction on one key of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Table the row belongs to (a warehouse commit spans tables).
    pub table: String,
    /// Primary-key values ([`wh_types::Schema::key_of`]).
    pub key: Vec<Value>,
    /// Net logical operation: what a reader at the pre-commit VN must do to
    /// its copy of this key to reach the post-commit state.
    pub op: Operation,
    /// Base-schema row before the transaction (`None` for a net insert).
    pub pre: Option<Row>,
    /// Base-schema row after the transaction (`None` for a net delete).
    pub post: Option<Row>,
}

/// Everything one maintenance commit changed, keyed by its `maintenanceVN`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    /// The `maintenanceVN` that committed this batch.
    pub vn: VersionNo,
    /// Net-effect rows, across all tables the commit touched.
    pub rows: Vec<DeltaRow>,
    /// Whether the batch can drive repair. `false` (e.g. a touched table
    /// has no primary key) forces the restart fallback while keeping the
    /// log contiguous.
    pub repairable: bool,
}

impl DeltaBatch {
    /// An empty, repairable batch for `vn` (a commit that touched nothing).
    pub fn empty(vn: VersionNo) -> Self {
        DeltaBatch {
            vn,
            rows: Vec::new(),
            repairable: true,
        }
    }

    /// The rows touching `table`, in capture order.
    pub fn rows_for<'a>(&'a self, table: &'a str) -> impl Iterator<Item = &'a DeltaRow> {
        self.rows.iter().filter(move |r| r.table == table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_repairable_and_rowless() {
        let b = DeltaBatch::empty(7);
        assert_eq!(b.vn, 7);
        assert!(b.repairable);
        assert_eq!(b.rows_for("t").count(), 0);
    }

    #[test]
    fn rows_for_filters_by_table() {
        let row = |table: &str| DeltaRow {
            table: table.into(),
            key: vec![Value::from(1)],
            op: Operation::Insert,
            pre: None,
            post: Some(vec![Value::from(1)]),
        };
        let b = DeltaBatch {
            vn: 2,
            rows: vec![row("a"), row("b"), row("a")],
            repairable: true,
        };
        assert_eq!(b.rows_for("a").count(), 2);
        assert_eq!(b.rows_for("b").count(), 1);
        assert_eq!(b.rows_for("c").count(), 0);
    }
}
