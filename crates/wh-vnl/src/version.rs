//! Global version state: `currentVN`, `maintenanceActive`, and the
//! single-tuple `Version` relation.
//!
//! §3 keeps two globals — the current database version number and a flag
//! saying whether a maintenance transaction is running — guarded by "a
//! simple latching mechanism", and §4 shows how to host them in a
//! single-tuple relation read by readers and written by maintenance
//! transactions. [`VersionState`] does both: a `parking_lot` mutex is the
//! latch, and every read/write also touches a real one-tuple heap table so
//! the I/O cost of the global checks shows up in the experiment counters.
//!
//! §4 also flags an abort hazard: if `currentVN` were advanced *inside* the
//! maintenance transaction and the transaction then aborted, readers could
//! observe an inconsistent state while it backs out. The fix — publishing
//! `currentVN` "in a separate transaction that runs just after the
//! maintenance transaction commits" — is how [`VersionState::publish_commit`]
//! behaves: the in-place data changes are complete before the version flip
//! happens, atomically, under the latch.

use crate::delta::{DeltaBatch, DELTA_LOG_CAPACITY};
use crate::error::{VnlError, VnlResult};
use crate::resilience::LeaseRegistry;
use std::fmt;
use std::sync::Arc;
// The latched/lock-free cores are verified kernels: `wh_kernel::version`
// and `wh_kernel::delta` are the same source the wh-kernel model suite
// explores exhaustively.
use wh_kernel::delta::DeltaLogCore;
use wh_kernel::version::{BeginError, VersionCore};
use wh_storage::{IoStats, Rid, Table};
use wh_types::fail_point;
use wh_types::{Column, DataType, Schema, Value};

/// Database / maintenance-transaction version numbers.
pub type VersionNo = u64;

/// The logical operation recorded in a tuple's `operation` column.
///
/// Stored as a 1-byte `CHAR(1)` (`'i'`/`'u'`/`'d'`) so the extended schema
/// matches Figure 3's 1-byte `operation` column exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Logical insert.
    Insert,
    /// Logical update.
    Update,
    /// Logical delete.
    Delete,
}

impl Operation {
    /// The stored `CHAR(1)` code.
    pub fn code(&self) -> &'static str {
        match self {
            Operation::Insert => "i",
            Operation::Update => "u",
            Operation::Delete => "d",
        }
    }

    /// The stored code as a [`Value`].
    pub fn value(&self) -> Value {
        Value::Str(self.code().into())
    }

    /// Decode a stored code.
    pub fn from_value(v: &Value) -> Option<Operation> {
        match v.as_str()? {
            "i" => Some(Operation::Insert),
            "u" => Some(Operation::Update),
            "d" => Some(Operation::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Insert => write!(f, "insert"),
            Operation::Update => write!(f, "update"),
            Operation::Delete => write!(f, "delete"),
        }
    }
}

/// Global version state, latched in memory and mirrored in a one-tuple
/// `Version` relation.
///
/// The latch, the relaxed `currentVN` mirror, and the recovery fence all
/// live in [`wh_kernel::version::VersionCore`]; this wrapper adds the §4
/// relation I/O, the failpoints (passed back in as `under_latch` closures
/// so their position relative to the state mutations is exactly the
/// kernel-verified one), and telemetry.
pub struct VersionState {
    core: VersionCore,
    /// The single-tuple Version relation of §4.
    relation: Table,
    relation_rid: Rid,
    /// Reader-session leases ([`crate::resilience`]): warehouse-wide, like
    /// the version globals they protect, so a multi-table pacer sees every
    /// load-bearing VN in one place.
    leases: LeaseRegistry,
    /// The session-repair delta log ([`crate::delta`]): net-effect batches
    /// keyed by committing VN, bounded and front-evicted. Warehouse-wide
    /// for the same reason the leases are — a commit's batch spans tables.
    deltas: DeltaLogCore<Arc<DeltaBatch>>,
}

/// Point-in-time copy of the version globals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionSnapshot {
    /// The current database version number.
    pub current_vn: VersionNo,
    /// Whether a maintenance transaction is active.
    pub maintenance_active: bool,
}

fn version_relation_schema() -> Schema {
    Schema::new(vec![
        Column::updatable("currentVN", DataType::Int64),
        Column::updatable("maintenanceActive", DataType::UInt8),
    ])
    .expect("version relation schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
}

impl VersionState {
    /// Fresh state: `currentVN = 1`, no maintenance active (§3: "Variable
    /// currentVN is 1 initially").
    pub fn new(io: Arc<IoStats>) -> VnlResult<Self> {
        let relation = Table::create("Version", version_relation_schema(), io)?;
        let relation_rid = relation.insert(&[Value::from(1), Value::from(0)])?;
        Ok(VersionState {
            core: VersionCore::new(),
            relation,
            relation_rid,
            leases: LeaseRegistry::new(),
            deltas: DeltaLogCore::new(DELTA_LOG_CAPACITY),
        })
    }

    /// Rebuild the version state from a checkpoint record: the checkpoint
    /// meta *is* the durable form of the one-tuple `Version` relation (it
    /// is not persisted as a table), so recovery reconstructs both the
    /// kernel state and the mirror tuple from those fields. A stuck
    /// `maintenance_active` flag is restored as-is — the §7 recovery pass
    /// clears it through [`VersionState::publish_abort`], exactly as it
    /// would after an in-memory crash.
    pub(crate) fn restore(
        io: Arc<IoStats>,
        current_vn: VersionNo,
        maintenance_active: bool,
        recovery_floor: VersionNo,
    ) -> VnlResult<Self> {
        let relation = Table::create("Version", version_relation_schema(), io)?;
        let relation_rid = relation.insert(&[
            Value::from(current_vn as i64),
            Value::from(i64::from(maintenance_active)),
        ])?;
        Ok(VersionState {
            core: VersionCore::resume(current_vn, maintenance_active, recovery_floor),
            relation,
            relation_rid,
            leases: LeaseRegistry::new(),
            // Fresh and empty: repair state never survives a restart —
            // post-crash sessions restart from durable slots, never from a
            // delta log whose tail the crash may have cut.
            deltas: DeltaLogCore::new(DELTA_LOG_CAPACITY),
        })
    }

    /// The warehouse-wide lease registry.
    pub fn leases(&self) -> &LeaseRegistry {
        &self.leases
    }

    /// The current recovery fence: sessions with `sessionVN` below this
    /// fail the global check (and the per-scan fence), because a crash
    /// recovery reconstructed version slots it cannot serve exactly.
    pub fn recovery_floor(&self) -> VersionNo {
        self.core.recovery_floor()
    }

    /// Raise the recovery fence to `floor` (monotone; lowering is a no-op).
    /// Called by [`crate::recover`] *before* it mutates any tuple, so a
    /// scan in flight across the recovery re-checks the fence when it
    /// completes and expires instead of returning reconstructed values.
    /// (The wh-kernel model suite proves this ordering sound and the
    /// reverse one unsound.)
    pub(crate) fn raise_recovery_floor(&self, floor: VersionNo) {
        self.core.raise_recovery_floor(floor);
    }

    /// Read both globals under the latch (also reads the Version relation,
    /// charging the reader one page read, as the §4.1 global check would).
    pub fn snapshot(&self) -> VersionSnapshot {
        let view = self.core.snapshot_with(|_| {
            // Mirror read — the I/O a query-rewrite reader would pay.
            let _ = self.relation.read(self.relation_rid);
        });
        VersionSnapshot {
            current_vn: view.current_vn,
            maintenance_active: view.maintenance_active,
        }
    }

    /// Read both globals under the latch *without* the mirror-relation
    /// read. This is the instrumentation form: telemetry (e.g. the
    /// per-reader staleness gauge) must not charge the experiment's I/O
    /// counters, whose exact values the paper claims are about.
    pub fn peek(&self) -> VersionSnapshot {
        // (Latched form; see `current_vn_relaxed` for the lock-free read.)
        let view = self.core.peek();
        VersionSnapshot {
            current_vn: view.current_vn,
            maintenance_active: view.maintenance_active,
        }
    }

    /// Lock-free read of `currentVN` alone — the telemetry form: no latch,
    /// no mirror-relation I/O charge. May trail the latched value by an
    /// instant, never leads it (model-verified).
    pub fn current_vn_relaxed(&self) -> VersionNo {
        self.core.current_vn_relaxed()
    }

    /// Begin a maintenance transaction: returns `maintenanceVN =
    /// currentVN + 1` and sets the active flag. Enforces the one-at-a-time
    /// external protocol.
    pub fn begin_maintenance(&self) -> VnlResult<VersionNo> {
        self.core
            .begin_maintenance(|current_vn| {
                // Placed after the flag flip: a crash here leaves
                // maintenanceActive stuck on, exactly the state recovery
                // must be able to clear.
                wh_obs::trace_event!("vnl.version.begin", current_vn);
                // trace: the flip instant lands in the ambient txn span.
                fail_point!("vnl.version.begin");
                self.relation.update(
                    self.relation_rid,
                    &[Value::from(current_vn as i64), Value::from(1)],
                )?;
                Ok(())
            })
            .map_err(|e| match e {
                BeginError::AlreadyActive => VnlError::MaintenanceAlreadyActive,
                BeginError::Effect(effect) => effect,
            })
    }

    /// Publish a maintenance commit: `currentVN ← maintenanceVN`, flag off.
    /// Runs as its own latched step *after* all data changes are in place,
    /// per the §4 abort-safety note.
    pub fn publish_commit(&self, maintenance_vn: VersionNo) -> VnlResult<()> {
        self.publish_commit_with(maintenance_vn, None)
    }

    /// [`VersionState::publish_commit`] plus delta retention: the commit's
    /// net-effect batch is retained in the delta log *inside the same latch
    /// hold* that flips `currentVN`, so a latched snapshot that observes
    /// the new VN is guaranteed to find its batch retained (the ordering
    /// the wh-kernel repair-≡-rescan model verifies). `None` retains an
    /// empty repairable batch, keeping the log contiguous per committed VN.
    pub fn publish_commit_with(
        &self,
        maintenance_vn: VersionNo,
        batch: Option<DeltaBatch>,
    ) -> VnlResult<()> {
        self.core.publish_commit(
            maintenance_vn,
            || {
                // Before any mutation: a crash here commits nothing —
                // readers keep the old currentVN and never see a
                // half-published flip.
                wh_obs::trace_event!("vnl.version.publish_commit", maintenance_vn);
                // trace: the flip instant lands in the ambient txn span.
                fail_point!("vnl.version.publish_commit");
                Ok(())
            },
            |vn| {
                let batch = batch.unwrap_or_else(|| DeltaBatch::empty(vn));
                let spilled = self.deltas.retain(vn, Arc::new(batch));
                if !spilled.is_empty() {
                    wh_obs::counter!("vnl.delta.evicted").add(spilled.len() as u64);
                }
                self.relation
                    .update(self.relation_rid, &[Value::from(vn as i64), Value::from(0)])?;
                wh_obs::gauge!("vnl.version.current_vn").set(vn as i64);
                wh_obs::gauge!("vnl.delta.retained").set(self.deltas.len() as i64);
                Ok(())
            },
        )
    }

    /// The complete repair window `(from_exclusive, to_inclusive]`, or
    /// `None` when any VN in it has been evicted — the caller must fall
    /// back to restart (all-or-nothing serving, model-verified).
    pub fn delta_window(
        &self,
        from_exclusive: VersionNo,
        to_inclusive: VersionNo,
    ) -> Option<Vec<Arc<DeltaBatch>>> {
        self.deltas.window(from_exclusive, to_inclusive)
    }

    /// Evict batches no live session can still need (`vn < keep_from`,
    /// driven by the GC horizon). Returns how many were dropped.
    pub(crate) fn evict_deltas_below(&self, keep_from: VersionNo) -> usize {
        let dropped = self.deltas.evict_below(keep_from).len();
        if dropped > 0 {
            wh_obs::counter!("vnl.delta.evicted").add(dropped as u64);
            wh_obs::gauge!("vnl.delta.retained").set(self.deltas.len() as i64);
        }
        dropped
    }

    /// Forget all retained deltas. Crash recovery calls this so repair
    /// state never survives into a recovered process: the slots are the
    /// only durable truth, and a log built before the crash may describe
    /// commits the rollback pass has since undone.
    pub(crate) fn clear_deltas(&self) -> usize {
        let dropped = self.deltas.clear().len();
        wh_obs::gauge!("vnl.delta.retained").set(0);
        dropped
    }

    /// Retained delta-batch count (introspection/tests).
    pub fn delta_log_len(&self) -> usize {
        self.deltas.len()
    }

    /// Record a maintenance abort: flag off, `currentVN` unchanged.
    pub fn publish_abort(&self) -> VnlResult<()> {
        self.core.publish_abort(
            || {
                // Before any mutation, mirroring `publish_commit`.
                wh_obs::trace_event!("vnl.version.publish_abort");
                // trace: the flip instant lands in the ambient txn span.
                fail_point!("vnl.version.publish_abort");
                Ok(())
            },
            |current_vn| {
                self.relation.update(
                    self.relation_rid,
                    &[Value::from(current_vn as i64), Value::from(0)],
                )?;
                Ok(())
            },
        )
    }

    /// The §4.1 global (pessimistic) session-liveness check:
    /// `(sessionVN = currentVN) ∨ (sessionVN = currentVN − 1 ∧ ¬maintenanceActive)`,
    /// generalized for nVNL to `sessionVN ≥ currentVN − (n − 1)` plus the
    /// boundary case, fenced by the recovery floor. Returns `true` when
    /// the session is still guaranteed consistent.
    pub fn session_live(&self, session_vn: VersionNo, n: usize) -> bool {
        self.core.session_live_with(session_vn, n, |_| {
            // The snapshot's mirror read — the I/O the global check pays.
            let _ = self.relation.read(self.relation_rid);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> VersionState {
        VersionState::new(Arc::new(IoStats::new())).unwrap()
    }

    #[test]
    fn initial_state() {
        let s = state();
        let snap = s.snapshot();
        assert_eq!(snap.current_vn, 1);
        assert!(!snap.maintenance_active);
    }

    #[test]
    fn maintenance_lifecycle() {
        let s = state();
        let vn = s.begin_maintenance().unwrap();
        assert_eq!(vn, 2);
        assert!(s.snapshot().maintenance_active);
        // One at a time.
        assert_eq!(
            s.begin_maintenance().unwrap_err(),
            VnlError::MaintenanceAlreadyActive
        );
        s.publish_commit(vn).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.current_vn, 2);
        assert!(!snap.maintenance_active);
        // Next maintenance gets the next VN.
        assert_eq!(s.begin_maintenance().unwrap(), 3);
    }

    #[test]
    fn abort_keeps_current_vn() {
        let s = state();
        let _vn = s.begin_maintenance().unwrap();
        s.publish_abort().unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.current_vn, 1);
        assert!(!snap.maintenance_active);
        // The same VN is handed out again.
        assert_eq!(s.begin_maintenance().unwrap(), 2);
    }

    #[test]
    fn paper_global_check_for_2vnl() {
        // §4.1: live iff sessionVN = currentVN, or sessionVN = currentVN-1
        // and no maintenance is active.
        let s = state();
        assert!(s.session_live(1, 2)); // session at current version
        let vn = s.begin_maintenance().unwrap();
        assert!(s.session_live(1, 2)); // overlapping its first maintenance txn
        s.publish_commit(vn).unwrap();
        assert!(s.session_live(1, 2)); // sessionVN = currentVN - 1, idle
        assert!(s.session_live(2, 2));
        let vn = s.begin_maintenance().unwrap();
        assert!(!s.session_live(1, 2)); // second overlap: expired
        assert!(s.session_live(2, 2));
        s.publish_commit(vn).unwrap();
        assert!(!s.session_live(1, 2));
        assert!(s.session_live(2, 2)); // currentVN - 1, idle
    }

    #[test]
    fn global_check_generalizes_to_nvnl() {
        let s = state();
        // Run three maintenance transactions; a session from VN 1 stays live
        // under 4VNL (overlaps 3) but expires under 3VNL when the third runs.
        for expected in [2, 3] {
            let vn = s.begin_maintenance().unwrap();
            assert_eq!(vn, expected);
            s.publish_commit(vn).unwrap();
        }
        assert!(s.session_live(1, 3)); // overlapped 2 = n-1
        assert!(s.session_live(1, 4));
        let _vn = s.begin_maintenance().unwrap(); // third overlap begins
        assert!(!s.session_live(1, 3));
        assert!(s.session_live(1, 4));
    }

    #[test]
    fn peek_matches_snapshot_without_io_charge() {
        let io = Arc::new(IoStats::new());
        let s = VersionState::new(Arc::clone(&io)).unwrap();
        let before = io.snapshot();
        let peeked = s.peek();
        assert_eq!(io.snapshot(), before, "peek must not charge any I/O");
        let snapped = s.snapshot();
        assert!(io.snapshot().page_reads > before.page_reads);
        assert_eq!(peeked, snapped);
    }

    #[test]
    fn version_relation_mirrors_state() {
        let s = state();
        let vn = s.begin_maintenance().unwrap();
        let row = s.relation.read(s.relation_rid).unwrap();
        assert_eq!(row[0], Value::from(1)); // currentVN still old during txn
        assert_eq!(row[1], Value::from(1)); // maintenanceActive
        s.publish_commit(vn).unwrap();
        let row = s.relation.read(s.relation_rid).unwrap();
        assert_eq!(row[0], Value::from(2));
        assert_eq!(row[1], Value::from(0));
    }

    #[test]
    fn operation_codes_round_trip() {
        for op in [Operation::Insert, Operation::Update, Operation::Delete] {
            assert_eq!(Operation::from_value(&op.value()), Some(op));
        }
        assert_eq!(Operation::from_value(&Value::from("x")), None);
        assert_eq!(Operation::from_value(&Value::Null), None);
        assert_eq!(Operation::Delete.to_string(), "delete");
    }
}
