//! Garbage collection of logically-deleted tuples (§3.3, §7).
//!
//! A logical delete keeps the physical tuple so readers of earlier versions
//! can still extract the pre-delete state. Once no active (or future) reader
//! can need it, the tuple is physically removed. A tuple whose newest slot
//! is `(tupleVN, delete)` is needed only by sessions with
//! `sessionVN < tupleVN`; every future session starts at
//! `currentVN ≥ tupleVN`, so the tuple is dead as soon as every *active*
//! session satisfies `sessionVN ≥ tupleVN`.

use crate::error::VnlResult;
use crate::table::VnlTable;
use crate::version::Operation;
use wh_types::fail_point;

/// Result of one collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Tuples examined.
    pub scanned: u64,
    /// Logically-deleted tuples found.
    pub deleted_found: u64,
    /// Tuples physically reclaimed.
    pub reclaimed: u64,
    /// Bytes freed (tuple width × reclaimed).
    pub bytes_reclaimed: u64,
}

/// Run one garbage-collection pass over `table`.
///
/// Safe to run at any time, including while a maintenance transaction is
/// active: tuples deleted by the uncommitted transaction carry
/// `tupleVN = maintenanceVN > currentVN ≥` every active `sessionVN`, so the
/// liveness test below never selects them... unless no sessions constrain
/// us, in which case we still must not touch uncommitted work — the pass
/// therefore also requires `tupleVN ≤ currentVN`.
pub fn collect(table: &VnlTable) -> VnlResult<GcReport> {
    let layout = table.layout().clone();
    let snap = table.version().snapshot();
    // The horizon: the oldest version any active session reads. Future
    // sessions begin at currentVN.
    let horizon = table
        .min_active_session_vn()
        .unwrap_or(snap.current_vn)
        .min(snap.current_vn);
    let mut report = GcReport::default();
    let tuple_bytes = table.storage().codec().encoded_len() as u64;
    // Collect victims first; mutate after the scan.
    let mut victims = Vec::new();
    table.storage().scan(|rid, ext| {
        report.scanned += 1;
        if let Some((vn, Operation::Delete)) = layout.slot(&ext, 0) {
            report.deleted_found += 1;
            if vn <= horizon && vn <= snap.current_vn {
                victims.push((rid, ext));
            }
        }
        Ok(())
    })?;
    for (rid, ext) in victims {
        // Per-victim crash window: a fault mid-pass leaves the remaining
        // victims unreclaimed — a later pass picks them up.
        fail_point!("vnl.gc.reclaim");
        // Re-verify under the page latch: a maintenance transaction may have
        // resurrected the tuple since the scan (Table 2 row 1), in which
        // case it must not be touched.
        let deleted = table.storage().delete_if(rid, |row| {
            matches!(
                layout.slot(row, 0),
                Some((vn, Operation::Delete)) if vn <= horizon && vn <= snap.current_vn
            )
        })?;
        if !deleted {
            continue;
        }
        // Crash window: tuple physically gone, key/index entries still
        // registered — readers and maintenance already tolerate the stale
        // entries (NoSuchSlot is skipped; inserts unregister and retry).
        fail_point!("vnl.gc.unregister");
        if let Some(dir) = table.key_dir() {
            let _ = dir.unregister(&ext, rid);
        }
        table.on_physical_delete(&ext, rid);
        report.reclaimed += 1;
        report.bytes_reclaimed += tuple_bytes;
    }
    Ok(report)
}

/// A background collector: §3.3's "periodically running a process to
/// physically delete" logically-deleted tuples, as a stoppable thread.
pub struct Collector {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    reclaimed: std::sync::Arc<std::sync::atomic::AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Collector {
    /// Spawn a collector over `table`, sweeping every `interval`.
    pub fn spawn(table: std::sync::Arc<VnlTable>, interval: std::time::Duration) -> Self {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reclaimed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let stop2 = std::sync::Arc::clone(&stop);
        let reclaimed2 = std::sync::Arc::clone(&reclaimed);
        let handle = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                if let Ok(report) = collect(&table) {
                    reclaimed2.fetch_add(report.reclaimed, std::sync::atomic::Ordering::Relaxed);
                }
                std::thread::sleep(interval);
            }
        });
        Collector {
            stop,
            reclaimed,
            handle: Some(handle),
        }
    }

    /// Tuples reclaimed so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Stop the collector and wait for its thread.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.reclaimed()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;
    use wh_types::{Date, Row, Value};

    fn row(city: &str, sales: i64) -> Row {
        vec![
            Value::from(city),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(sales),
        ]
    }

    #[test]
    fn deleted_tuples_reclaimed_when_no_reader_needs_them() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1), row("Berkeley", 2)])
            .unwrap();
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap();
        // Tuple still physically present (pre-delete version readable).
        assert_eq!(t.storage().len(), 2);
        let report = collect(&t).unwrap();
        assert_eq!(report.deleted_found, 1);
        assert_eq!(report.reclaimed, 1);
        assert_eq!(t.storage().len(), 1);
        assert!(report.bytes_reclaimed > 0);
    }

    #[test]
    fn active_old_reader_blocks_reclamation() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1)]).unwrap();
        let old_session = t.begin_session(); // sessionVN = 1
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap(); // delete at VN 2
        let report = collect(&t).unwrap();
        assert_eq!(
            report.reclaimed, 0,
            "old reader still needs the pre-delete version"
        );
        // The old session can still read it.
        let rows = old_session.scan().unwrap();
        assert_eq!(rows.len(), 1);
        old_session.finish();
        // Now it is collectable.
        assert_eq!(collect(&t).unwrap().reclaimed, 1);
    }

    #[test]
    fn uncommitted_deletes_never_collected() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1)]).unwrap();
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        // GC during the active transaction must not touch its work.
        let report = collect(&t).unwrap();
        assert_eq!(report.reclaimed, 0);
        txn.abort().unwrap();
        assert_eq!(t.storage().len(), 1);
        // After abort the tuple is live again — nothing to collect.
        assert_eq!(collect(&t).unwrap().deleted_found, 0);
    }

    #[test]
    fn background_collector_reclaims() {
        let t = std::sync::Arc::new(VnlTable::create(daily_sales_schema(), 2).unwrap());
        t.load_initial(&[row("San Jose", 1), row("Berkeley", 2)])
            .unwrap();
        let collector = Collector::spawn(
            std::sync::Arc::clone(&t),
            std::time::Duration::from_millis(5),
        );
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap();
        // Wait for the daemon to sweep.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while t.storage().len() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(t.storage().len(), 1);
        assert_eq!(collector.stop(), 1);
    }

    #[test]
    fn collector_stops_cleanly_when_dropped() {
        let t = std::sync::Arc::new(VnlTable::create(daily_sales_schema(), 2).unwrap());
        let collector = Collector::spawn(
            std::sync::Arc::clone(&t),
            std::time::Duration::from_millis(1),
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(collector); // must join without hanging
        t.load_initial(&[row("San Jose", 1)]).unwrap();
    }

    #[test]
    fn collector_races_maintenance_safely() {
        // Delete/re-insert the same key across many transactions while the
        // collector sweeps aggressively: every insert must land, whether it
        // resurrects the tuple or recreates it after reclamation.
        let t = std::sync::Arc::new(VnlTable::create(daily_sales_schema(), 2).unwrap());
        t.load_initial(&[row("San Jose", 0)]).unwrap();
        let collector = Collector::spawn(
            std::sync::Arc::clone(&t),
            std::time::Duration::from_micros(200),
        );
        for i in 1..60i64 {
            let txn = t.begin_maintenance().unwrap();
            txn.delete_row(&row("San Jose", 0)).unwrap();
            txn.commit().unwrap();
            let txn = t.begin_maintenance().unwrap();
            txn.insert(row("San Jose", i)).unwrap();
            txn.commit().unwrap();
        }
        collector.stop();
        let s = t.begin_session();
        let rows = s.scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::from(59));
        s.finish();
    }

    #[test]
    fn reclaimed_key_is_reinsertable_as_fresh() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1)]).unwrap();
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap();
        collect(&t).unwrap();
        // Re-insert goes down Table 2 row 3 (no conflict), not resurrection.
        let txn = t.begin_maintenance().unwrap();
        txn.set_tracing(true);
        txn.insert(row("San Jose", 5)).unwrap();
        let trace = txn.take_trace();
        assert_eq!(trace[0].0, crate::maintenance::PhysicalAction::InsertTuple);
        txn.commit().unwrap();
    }
}
