//! Garbage collection of logically-deleted tuples (§3.3, §7).
//!
//! A logical delete keeps the physical tuple so readers of earlier versions
//! can still extract the pre-delete state. Once no active (or future) reader
//! can need it, the tuple is physically removed. A tuple whose newest slot
//! is `(tupleVN, delete)` is needed only by sessions with
//! `sessionVN < tupleVN`; every future session starts at
//! `currentVN ≥ tupleVN`, so the tuple is dead as soon as every *active*
//! session satisfies `sessionVN ≥ tupleVN`.

use crate::error::VnlResult;
use crate::table::VnlTable;
use crate::version::{Operation, VersionNo};
use wh_types::fail_point;

/// Result of one collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Tuples examined.
    pub scanned: u64,
    /// Logically-deleted tuples found.
    pub deleted_found: u64,
    /// Tuples reclaimed this pass: retired from the heap (unlinked from
    /// key directory and indexes, invisible to every scan) and queued for
    /// slot release after the epoch grace period.
    pub reclaimed: u64,
    /// Bytes freed (tuple width × reclaimed).
    pub bytes_reclaimed: u64,
    /// Retired slots whose grace period elapsed and whose pages returned
    /// to the free list this pass (may include retires from earlier
    /// passes; equals `reclaimed` when no reader held an epoch pin).
    pub released: u64,
}

/// Run one garbage-collection pass over `table`.
///
/// Safe to run at any time, including while a maintenance transaction is
/// active: tuples deleted by the uncommitted transaction carry
/// `tupleVN = maintenanceVN > currentVN ≥` every active `sessionVN`, so the
/// liveness test below never selects them... unless no sessions constrain
/// us, in which case we still must not touch uncommitted work — the pass
/// therefore also requires `tupleVN ≤ currentVN`.
pub fn collect(table: &VnlTable) -> VnlResult<GcReport> {
    // trace: each GC pass is its own trace — usually nothing ambient is
    // running on the collector thread, and a pass is a complete story.
    let _ts = wh_obs::trace_span!("vnl.gc.pass");
    let pass = wh_obs::Timer::start();
    let layout = table.layout().clone();
    let snap = table.version().snapshot();
    // The horizon: the oldest version any active session reads. Future
    // sessions begin at currentVN.
    let horizon = table
        .min_active_session_vn()
        .unwrap_or(snap.current_vn)
        .min(snap.current_vn);
    // Durable tables additionally cap reclamation at the last completed
    // checkpoint's VN: a delete not yet durable in the checkpoint image
    // must keep its physical tuple, or a crash would resurrect the tuple
    // from the checkpoint with no newer slot history to re-delete it.
    // In-memory tables see `u64::MAX` here (no constraint).
    let ceiling = table.gc_reclaim_ceiling();
    // How far the oldest live session holds reclamation behind the present:
    // 0 means GC can reach everything committed, k means k generations of
    // logically-deleted tuples are pinned by readers.
    wh_obs::gauge!("vnl.gc.horizon_lag").set(snap.current_vn.saturating_sub(horizon) as i64);
    let mut report = GcReport::default();
    let tuple_bytes = table.storage().codec().encoded_len() as u64;
    // Registry snapshot taken outside any page latch (see
    // `indexes_snapshot` for the lock-order constraint). An index created
    // mid-pass may keep a stale entry for a reclaimed rid; readers already
    // tolerate those.
    let index_snap = table.indexes_snapshot();
    // Collect victims first; mutate after the scan.
    let mut victims = Vec::new();
    let mut occupied_slots: u64 = 0;
    // lint: allow(epoch-discipline) — the collector is the epoch's writer side: victims are re-verified under the page latch before unlinking, and pinning would stall its own grace advances
    table.storage().scan(|rid, ext| {
        report.scanned += 1;
        // Version-slot occupancy: how many older version slots (beyond the
        // always-populated newest slot 0) actually hold a saved version
        // (§5's space-in-use measure). Piggybacked on the GC scan so it
        // costs no extra pass.
        if wh_obs::is_enabled() {
            occupied_slots += (1..layout.slots())
                .filter(|&j| layout.slot(&ext, j).is_some())
                .count() as u64;
        }
        if let Some((vn, Operation::Delete)) = layout.slot(&ext, 0) {
            report.deleted_found += 1;
            if vn <= horizon && vn <= snap.current_vn && vn <= ceiling {
                victims.push((rid, ext));
            }
        }
        Ok(())
    })?;
    wh_obs::gauge!("vnl.storage.occupied_version_slots").set(occupied_slots as i64);
    for (rid, ext) in victims {
        let reclaim = wh_obs::Timer::start();
        // Per-victim crash window: a fault mid-pass leaves the remaining
        // victims unreclaimed — a later pass picks them up.
        fail_point!("vnl.gc.reclaim");
        // Re-verify under the page latch: a maintenance transaction may have
        // resurrected the tuple since the scan (Table 2 row 1), in which
        // case it must not be touched. The key-directory and index entries
        // are retired inside the same latch hold: a concurrent insert of
        // the same key must find the directory slot free the moment the
        // tuple goes invisible, and a late unregister could tear down the
        // *new* tuple's entries, orphaning the key.
        //
        // The tuple is *retired*, not deleted: its slot stays unusable
        // until the epoch grace period below proves no reader gathered its
        // RID before the unlink. Readers never take a GC-side lock for
        // this protection — they only pin an epoch.
        let retired = table.storage().retire_if_then(
            rid,
            |row| {
                matches!(
                    layout.slot(row, 0),
                    Some((vn, Operation::Delete))
                        if vn <= horizon && vn <= snap.current_vn && vn <= ceiling
                )
            },
            || {
                if let Some(dir) = table.key_dir() {
                    let _ = dir.unregister(&ext, rid);
                }
                for idx in &index_snap {
                    idx.remove_entry(&ext, rid);
                }
            },
        )?;
        if !retired {
            continue;
        }
        table.epochs().retire(rid);
        table.note_physical_delete();
        // Crash window: reclamation fully applied, stats not yet counted —
        // a fault here under-reports the pass but leaves the table sound.
        fail_point!("vnl.gc.unregister");
        report.reclaimed += 1;
        report.bytes_reclaimed += tuple_bytes;
        wh_obs::histogram!("vnl.gc.reclaim_ns").record(reclaim.elapsed_ns());
        wh_obs::counter!("vnl.gc.reclaimed").inc();
        wh_obs::counter!("vnl.gc.bytes_reclaimed").add(tuple_bytes);
    }
    // Delta-log eviction rides the same horizon: a repair window is
    // `(sessionVN, currentVN]`, so batches at or below the oldest active
    // sessionVN can never be part of one again.
    evict_deltas(table, horizon);
    report.released = release_after_grace(table)?;
    wh_obs::histogram!("vnl.gc.pass_ns").record(pass.elapsed_ns());
    Ok(report)
}

/// Drop retained delta batches no live session can still replay
/// (`vn ≤ horizon`). Failing to evict is always safe — the log is
/// capacity-bounded regardless — so an injected fault merely skips this
/// pass's eviction.
fn evict_deltas(table: &VnlTable, horizon: VersionNo) {
    wh_obs::trace_event!("vnl.delta.evict", horizon);
    // trace: eviction is part of the GC pass's causal story.
    fail_point!("vnl.delta.evict", ());
    table.version().evict_deltas_below(horizon + 1);
}

/// The epoch half of a pass: advance the global epoch toward the grace
/// bound and physically release every retired slot whose grace period has
/// elapsed. With no reader pinned, the two advances succeed immediately and
/// this pass's own retires release synchronously; a pinned reader holds
/// the epoch back and the retires simply wait for a later pass — the
/// deferred-release analogue of the old "active reader blocks reclamation"
/// rule, but enforced without readers taking any lock.
fn release_after_grace(table: &VnlTable) -> VnlResult<u64> {
    // trace: runs inside `collect`'s pass span on the same thread.
    let _ts = wh_obs::trace_span!("vnl.gc.release");
    if wh_obs::is_enabled() {
        wh_obs::gauge!("vnl.gc.epoch").set(table.epochs().epoch() as i64);
        wh_obs::gauge!("vnl.gc.pinned_readers").set(table.epochs().pinned() as i64);
    }
    let advance = wh_obs::Timer::start();
    table.epochs().advance_for_grace();
    let drained = table.epochs().drain_safe();
    wh_obs::histogram!("vnl.gc.epoch_advance_ns").record(advance.elapsed_ns());
    let mut released = 0u64;
    let mut pending = drained.into_iter();
    while let Some(rid) = pending.next() {
        if let Err(e) = table.storage().release(rid) {
            // The release failpoint sits past the page mutation, so on a
            // fault only the free-list hint is lost for `rid`. Requeue the
            // rest (retagged at the current epoch — release is only ever
            // delayed, never hastened) so a later pass retries them.
            for rest in pending {
                table.epochs().retire(rest);
            }
            return Err(e.into());
        }
        released += 1;
        wh_obs::counter!("vnl.gc.released").inc();
    }
    Ok(released)
}

/// A background collector: §3.3's "periodically running a process to
/// physically delete" logically-deleted tuples, as a stoppable thread.
pub struct Collector {
    shared: std::sync::Arc<CollectorShared>,
    reclaimed: std::sync::Arc<std::sync::atomic::AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Stop flag under a mutex + condvar so `stop()` interrupts the
/// inter-pass wait immediately instead of letting the thread finish a
/// full `interval` sleep.
struct CollectorShared {
    stopped: std::sync::Mutex<bool>,
    wake: std::sync::Condvar,
}

impl Collector {
    /// Spawn a collector over `table`, sweeping every `interval`.
    pub fn spawn(table: std::sync::Arc<VnlTable>, interval: std::time::Duration) -> Self {
        let shared = std::sync::Arc::new(CollectorShared {
            stopped: std::sync::Mutex::new(false),
            wake: std::sync::Condvar::new(),
        });
        let reclaimed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let shared2 = std::sync::Arc::clone(&shared);
        let reclaimed2 = std::sync::Arc::clone(&reclaimed);
        let handle = std::thread::spawn(move || loop {
            // The pass's count is published before the stop flag is
            // re-checked, so a pass in flight when `stop()` is called is
            // always included (exactly once) in the total that `stop()`
            // returns after joining.
            if let Ok(report) = collect(&table) {
                // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                reclaimed2.fetch_add(report.reclaimed, std::sync::atomic::Ordering::Relaxed);
            }
            let guard = shared2
                .stopped
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if *guard {
                break;
            }
            let (guard, _) = shared2
                .wake
                .wait_timeout(guard, interval)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if *guard {
                break;
            }
        });
        Collector {
            shared,
            reclaimed,
            handle: Some(handle),
        }
    }

    /// Tuples reclaimed so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(std::sync::atomic::Ordering::Relaxed) // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
    }

    /// Stop the collector and wait for its thread. The returned total
    /// includes any pass that was in flight at stop time, exactly once:
    /// the worker publishes each pass's count before re-checking the stop
    /// flag, and this joins the thread before reading the total.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.reclaimed()
    }

    fn shutdown(&mut self) {
        {
            let mut stopped = self
                .shared
                .stopped
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *stopped = true;
            self.shared.wake.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;
    use wh_types::{Date, Row, Value};

    fn row(city: &str, sales: i64) -> Row {
        vec![
            Value::from(city),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(sales),
        ]
    }

    #[test]
    fn deleted_tuples_reclaimed_when_no_reader_needs_them() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1), row("Berkeley", 2)])
            .unwrap();
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap();
        // Tuple still physically present (pre-delete version readable).
        assert_eq!(t.storage().len(), 2);
        let report = collect(&t).unwrap();
        assert_eq!(report.deleted_found, 1);
        assert_eq!(report.reclaimed, 1);
        assert_eq!(t.storage().len(), 1);
        assert!(report.bytes_reclaimed > 0);
    }

    #[test]
    fn epoch_pin_defers_slot_release_without_blocking_retire() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1), row("Berkeley", 2)])
            .unwrap();
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap();
        // A pinned reader (no session — just the epoch pin, as a scan
        // holds mid-flight) must not block the logical retire, only the
        // physical slot release.
        let pin = t.epochs().pin();
        let report = collect(&t).unwrap();
        assert_eq!(report.reclaimed, 1, "retire proceeds under a pin");
        assert_eq!(report.released, 0, "slot release waits out the pin");
        assert_eq!(t.retired_backlog(), 1);
        assert_eq!(t.storage().len(), 1, "retired tuple already invisible");
        drop(pin);
        // With the pin gone, the next pass ages the retire past the grace
        // period and returns the slot to the free list.
        let report = collect(&t).unwrap();
        assert_eq!(report.reclaimed, 0);
        assert_eq!(report.released, 1);
        assert_eq!(t.retired_backlog(), 0);
    }

    #[test]
    fn active_old_reader_blocks_reclamation() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1)]).unwrap();
        let old_session = t.begin_session(); // sessionVN = 1
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap(); // delete at VN 2
        let report = collect(&t).unwrap();
        assert_eq!(
            report.reclaimed, 0,
            "old reader still needs the pre-delete version"
        );
        // The old session can still read it.
        let rows = old_session.scan().unwrap();
        assert_eq!(rows.len(), 1);
        old_session.finish();
        // Now it is collectable.
        assert_eq!(collect(&t).unwrap().reclaimed, 1);
    }

    #[test]
    fn uncommitted_deletes_never_collected() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1)]).unwrap();
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        // GC during the active transaction must not touch its work.
        let report = collect(&t).unwrap();
        assert_eq!(report.reclaimed, 0);
        txn.abort().unwrap();
        assert_eq!(t.storage().len(), 1);
        // After abort the tuple is live again — nothing to collect.
        assert_eq!(collect(&t).unwrap().deleted_found, 0);
    }

    #[test]
    fn background_collector_reclaims() {
        let t = std::sync::Arc::new(VnlTable::create(daily_sales_schema(), 2).unwrap());
        t.load_initial(&[row("San Jose", 1), row("Berkeley", 2)])
            .unwrap();
        let collector = Collector::spawn(
            std::sync::Arc::clone(&t),
            std::time::Duration::from_millis(5),
        );
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap();
        // Wait for the daemon to sweep.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while t.storage().len() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(t.storage().len(), 1);
        assert_eq!(collector.stop(), 1);
    }

    #[test]
    fn stop_during_collect_counts_in_flight_pass_exactly_once() {
        // Many logically-deleted tuples make the first pass substantial;
        // the 30s interval means a correct `stop()` must interrupt the
        // inter-pass wait (a sleep-based loop would hang the test) and the
        // total it returns must match physical reclamation exactly — the
        // in-flight pass is joined and counted once, wherever stop lands.
        let t = std::sync::Arc::new(VnlTable::create(daily_sales_schema(), 2).unwrap());
        let rows: Vec<Row> = (0..40).map(|i| row(&format!("city{i}"), i)).collect();
        t.load_initial(&rows).unwrap();
        let txn = t.begin_maintenance().unwrap();
        for i in 0..39 {
            txn.delete_row(&row(&format!("city{i}"), 0)).unwrap();
        }
        txn.commit().unwrap();
        let physical_before = t.storage().len();
        assert_eq!(physical_before, 40);
        let collector = Collector::spawn(
            std::sync::Arc::clone(&t),
            std::time::Duration::from_secs(30),
        );
        let total = collector.stop();
        assert_eq!(
            total,
            physical_before - t.storage().len(),
            "stop() total must equal tuples physically removed"
        );
    }

    #[test]
    fn collector_stops_cleanly_when_dropped() {
        let t = std::sync::Arc::new(VnlTable::create(daily_sales_schema(), 2).unwrap());
        let collector = Collector::spawn(
            std::sync::Arc::clone(&t),
            std::time::Duration::from_millis(1),
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(collector); // must join without hanging
        t.load_initial(&[row("San Jose", 1)]).unwrap();
    }

    #[test]
    fn collector_races_maintenance_safely() {
        // Delete/re-insert the same key across many transactions while the
        // collector sweeps aggressively: every insert must land, whether it
        // resurrects the tuple or recreates it after reclamation.
        let t = std::sync::Arc::new(VnlTable::create(daily_sales_schema(), 2).unwrap());
        t.load_initial(&[row("San Jose", 0)]).unwrap();
        let collector = Collector::spawn(
            std::sync::Arc::clone(&t),
            std::time::Duration::from_micros(200),
        );
        for i in 1..60i64 {
            let txn = t.begin_maintenance().unwrap();
            txn.delete_row(&row("San Jose", 0)).unwrap();
            txn.commit().unwrap();
            let txn = t.begin_maintenance().unwrap();
            txn.insert(row("San Jose", i)).unwrap();
            txn.commit().unwrap();
        }
        collector.stop();
        let s = t.begin_session();
        let rows = s.scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::from(59));
        s.finish();
    }

    #[test]
    fn reclaimed_key_is_reinsertable_as_fresh() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", 1)]).unwrap();
        let txn = t.begin_maintenance().unwrap();
        txn.delete_row(&row("San Jose", 0)).unwrap();
        txn.commit().unwrap();
        collect(&t).unwrap();
        // Re-insert goes down Table 2 row 3 (no conflict), not resurrection.
        let txn = t.begin_maintenance().unwrap();
        txn.set_tracing(true);
        txn.insert(row("San Jose", 5)).unwrap();
        let trace = txn.take_trace();
        assert_eq!(trace[0].0, crate::maintenance::PhysicalAction::InsertTuple);
        txn.commit().unwrap();
    }
}
