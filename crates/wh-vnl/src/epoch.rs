//! The table's epoch-reclamation domain: the `wh_kernel::epoch` kernel
//! applied to heap RIDs.
//!
//! Readers pin an epoch for the duration of any operation that follows
//! RIDs into the heap (scans, index probes, key lookups); the GC retires a
//! reclaimed tuple's RID instead of freeing its slot, and only releases
//! the slot for reuse once the epoch has advanced [`GRACE`] times past the
//! retire — by which point no pin from before the unlink can still be
//! active. This replaces the old scheme where reclamation raced readers on
//! nothing but the per-page latch: a reader holding a RID across a latch
//! release could have had its slot reused under it. With epochs, no scan
//! or lookup ever blocks reclamation via a lock — it merely holds the
//! epoch, and the collector defers the physical release.

use wh_kernel::epoch::{EpochCore, EpochPin, RetireList, GRACE};
use wh_storage::Rid;

/// Announcement slots available for concurrent pins. Pins are per-read
/// *operation* (one covers an entire parallel scan, taken by the
/// coordinator), so this bounds concurrent read operations, not threads.
const PIN_SLOTS: usize = 128;

/// Per-table epoch state: the kernel core plus the deferred-release queue
/// of retired RIDs.
#[derive(Debug)]
pub(crate) struct EpochDomain {
    core: EpochCore,
    retired: RetireList<Rid>,
}

impl EpochDomain {
    pub(crate) fn new() -> Self {
        EpochDomain {
            core: EpochCore::new(PIN_SLOTS),
            retired: RetireList::new(),
        }
    }

    /// Pin the current epoch, spinning (with yields) while all
    /// announcement slots are taken. The kernel itself never spins — the
    /// backoff lives here so the model checker can still enumerate the
    /// kernel's `try_pin`.
    pub(crate) fn pin(&self) -> EpochPin<'_> {
        loop {
            if let Some(pin) = self.core.try_pin() {
                return pin;
            }
            std::thread::yield_now();
        }
    }

    /// Queue a retired (unlinked, invisible) RID for release after the
    /// grace period. Returns the epoch tag.
    pub(crate) fn retire(&self, rid: Rid) -> u64 {
        let tag = self.retired.retire(&self.core, rid);
        wh_obs::gauge!("vnl.gc.retired_backlog").set(self.retired.len() as i64);
        tag
    }

    /// Try to advance the epoch up to [`GRACE`] times (each attempt fails
    /// harmlessly while a pinned reader lags). Returns how many advances
    /// succeeded.
    pub(crate) fn advance_for_grace(&self) -> u64 {
        let mut advanced = 0;
        for _ in 0..GRACE {
            if self.core.try_advance().is_none() {
                break;
            }
            advanced += 1;
        }
        advanced
    }

    /// RIDs whose grace period has elapsed — safe to physically release.
    pub(crate) fn drain_safe(&self) -> Vec<Rid> {
        let out = self.retired.drain_safe(&self.core);
        wh_obs::gauge!("vnl.gc.retired_backlog").set(self.retired.len() as i64);
        out
    }

    /// Retired RIDs still waiting out their grace period.
    pub(crate) fn backlog(&self) -> usize {
        self.retired.len()
    }

    /// Current global epoch (telemetry/tests).
    pub(crate) fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// Number of currently pinned readers (telemetry/tests — racy).
    pub(crate) fn pinned(&self) -> usize {
        self.core.pinned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_release_cycle_is_synchronous_when_unpinned() {
        let d = EpochDomain::new();
        let rid = Rid { page: 0, slot: 3 };
        d.retire(rid);
        assert_eq!(d.backlog(), 1);
        assert_eq!(d.advance_for_grace(), GRACE);
        assert_eq!(d.drain_safe(), vec![rid]);
        assert_eq!(d.backlog(), 0);
    }

    #[test]
    fn pinned_reader_defers_release() {
        let d = EpochDomain::new();
        let pin = d.pin();
        d.retire(Rid { page: 0, slot: 0 });
        // One advance can slip past the pin, the second cannot.
        assert_eq!(d.advance_for_grace(), 1);
        assert!(d.drain_safe().is_empty(), "grace period not yet elapsed");
        assert_eq!(d.pinned(), 1);
        drop(pin);
        assert_eq!(d.advance_for_grace(), GRACE);
        assert_eq!(d.drain_safe().len(), 1);
        assert!(d.epoch() >= GRACE);
    }
}
