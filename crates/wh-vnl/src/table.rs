//! [`VnlTable`] — a relation maintained under 2VNL/nVNL.

use crate::error::{VnlError, VnlResult};
use crate::maintenance::MaintenanceTxn;
use crate::reader::ReaderSession;
use crate::rewrite::QueryRewriter;
use crate::schema_ext::ExtLayout;
use crate::version::{VersionNo, VersionState};
use crate::visibility;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, RwLock};
use wh_index::{IndexKey, KeyDirectory, OrderedIndex};
use wh_storage::{IoStats, Rid, Table};
use wh_types::{Row, Schema, Value};

/// A named secondary index over non-updatable base attributes (§4.3).
pub struct SecondaryIndex {
    name: String,
    /// Base-schema positions of the indexed columns.
    base_cols: Vec<usize>,
    /// Extended-schema positions (what the stored rows are keyed by).
    ext_cols: Vec<usize>,
    index: OrderedIndex,
}

impl SecondaryIndex {
    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed base-column positions.
    pub fn base_cols(&self) -> &[usize] {
        &self.base_cols
    }

    /// Drop the entry for (`ext_row`, `rid`); missing entries are ignored.
    /// For callers working from an [`VnlTable::indexes_snapshot`] while
    /// holding a page latch.
    pub(crate) fn remove_entry(&self, ext_row: &[Value], rid: Rid) {
        let _ = self.index.remove(ext_row, rid);
    }
}

/// A warehouse relation stored under the nVNL scheme (`n = 2` gives the
/// paper's 2VNL).
///
/// The physical table uses the §3.1-extended schema; maintenance
/// transactions ([`VnlTable::begin_maintenance`]) and reader sessions
/// ([`VnlTable::begin_session`]) coordinate purely through version numbers —
/// no locks beyond the storage layer's per-page latches.
pub struct VnlTable {
    name: String,
    layout: ExtLayout,
    storage: Table,
    /// Physical unique-key directory over the extended rows (logical deletes
    /// keep their key registered — exactly why Table 2's conflict rows
    /// exist).
    key_dir: Option<KeyDirectory>,
    /// Shared with every other table of the same warehouse: §3's global
    /// `currentVN` / `maintenanceActive` pair is warehouse-wide, not
    /// per-relation.
    version: Arc<VersionState>,
    io: Arc<IoStats>,
    rewriter: QueryRewriter,
    /// Active sessions: id → sessionVN. Feeds GC and commit policies.
    sessions: Mutex<HashMap<u64, VersionNo>>,
    next_session: AtomicU64,
    /// Sessions that expired and were notified (statistics).
    expired_notifications: AtomicU64,
    /// §4.3 secondary indexes (non-updatable attributes only).
    indexes: RwLock<Vec<Arc<SecondaryIndex>>>,
    /// The *effective* version window `n_eff ∈ [2, layout.n()]` consulted
    /// by the §4.1 global check and the maintenance pacer. The physical
    /// slot mechanics (Table 1 extraction, `push_back`, rollback) always
    /// use the provisioned `layout.n()`, so `n_eff` is strictly a
    /// conservative admission bound — see [`crate::resilience::adaptive`].
    /// The cell is a verified kernel (`wh_kernel::adaptive`), explored
    /// exhaustively against the global check by the wh-kernel model suite.
    effective_n: wh_kernel::adaptive::EffectiveWindow,
    /// Epoch-based reclamation domain: read operations pin an epoch while
    /// they follow RIDs into the heap; GC retires victims' RIDs and
    /// releases their slots only after the grace period. See
    /// [`crate::epoch::EpochDomain`].
    epochs: crate::epoch::EpochDomain,
    /// Durable-reclamation ceiling: GC may physically reclaim a
    /// logically-deleted tuple only when its delete VN is `≤` this value.
    /// In-memory tables keep it at `u64::MAX` (no constraint); durable
    /// tables hold it at the VN of the last *completed* checkpoint, because
    /// the §7 recovery pass reconstructs state from checkpoint + slots
    /// alone — a tuple physically gone from a dirty page but still present
    /// in the checkpoint image would resurrect with no slot history to
    /// roll it forward. See [`crate::durable::checkpoint`].
    gc_ceiling: AtomicU64,
}

impl VnlTable {
    /// Create an empty nVNL table over `base_schema` with `n ≥ 2` versions,
    /// named "R" by default (see [`VnlTable::create_named`]).
    pub fn create(base_schema: Schema, n: usize) -> VnlResult<Self> {
        Self::create_named("R", base_schema, n)
    }

    /// Create an empty nVNL table with an explicit relation name (used to
    /// resolve SQL statements against it).
    pub fn create_named(name: impl Into<String>, base_schema: Schema, n: usize) -> VnlResult<Self> {
        let io = Arc::new(IoStats::new());
        let version = Arc::new(VersionState::new(Arc::clone(&io))?);
        Self::create_shared(name, base_schema, n, version, io)
    }

    /// Create a table from a `CREATE TABLE` statement (our dialect's
    /// `UPDATABLE` column flag marks §3.1's updatable attributes):
    ///
    /// ```
    /// use wh_vnl::VnlTable;
    /// let t = VnlTable::create_from_sql(
    ///     "CREATE TABLE DailySales (
    ///        city CHAR(20), state CHAR(2), product_line CHAR(12), date DATE,
    ///        total_sales INT UPDATABLE,
    ///        PRIMARY KEY (city, state, product_line, date))",
    ///     2,
    /// ).unwrap();
    /// assert_eq!(t.name(), "DailySales");
    /// assert_eq!(t.layout().base_schema().payload_width(), 42); // Figure 3
    /// ```
    pub fn create_from_sql(sql: &str, n: usize) -> VnlResult<Self> {
        let stmt = wh_sql::parse_statement(sql)?;
        let wh_sql::Statement::CreateTable(ct) = stmt else {
            return Err(VnlError::Sql(wh_sql::SqlError::Unsupported(
                "expected a CREATE TABLE statement".into(),
            )));
        };
        let columns: Vec<wh_types::Column> = ct
            .columns
            .iter()
            .map(|c| wh_types::Column {
                name: c.name.clone(),
                ty: c.ty,
                updatable: c.updatable,
            })
            .collect();
        let key_refs: Vec<&str> = ct.key.iter().map(String::as_str).collect();
        let schema = Schema::with_key_names(columns, &key_refs)?;
        Self::create_named(ct.name, schema, n)
    }

    /// Create a table that shares a warehouse-wide [`VersionState`] and I/O
    /// counters with other tables (see [`crate::warehouse::Warehouse`]).
    pub fn create_shared(
        name: impl Into<String>,
        base_schema: Schema,
        n: usize,
        version: Arc<VersionState>,
        io: Arc<IoStats>,
    ) -> VnlResult<Self> {
        let layout = ExtLayout::new(base_schema, n)?;
        let storage = Table::create("ext", layout.ext_schema().clone(), Arc::clone(&io))?;
        Self::from_parts(name, layout, storage, version, io)
    }

    /// Assemble a table around an existing physical [`Table`] (freshly
    /// created, or reopened from disk by [`crate::durable`]). The key
    /// directory is an in-memory structure — it is *not* persisted — so it
    /// is rebuilt here by scanning every physical tuple, logical deletes
    /// included (their keys stay registered; that is exactly why Table 2's
    /// conflict rows exist).
    pub(crate) fn from_parts(
        name: impl Into<String>,
        layout: ExtLayout,
        storage: Table,
        version: Arc<VersionState>,
        io: Arc<IoStats>,
    ) -> VnlResult<Self> {
        let n = layout.n();
        let key_dir = KeyDirectory::for_schema(layout.ext_schema());
        let rewriter = QueryRewriter::new(layout.clone());
        let table = VnlTable {
            name: name.into(),
            layout,
            storage,
            key_dir,
            version,
            io,
            rewriter,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            expired_notifications: AtomicU64::new(0),
            indexes: RwLock::new(Vec::new()),
            effective_n: wh_kernel::adaptive::EffectiveWindow::new(n),
            epochs: crate::epoch::EpochDomain::new(),
            gc_ceiling: AtomicU64::new(u64::MAX),
        };
        table.rebuild_key_dir()?;
        Ok(table)
    }

    /// Re-register every physical tuple in the key directory and storage
    /// gauges — a no-op on a freshly created (empty) table, the directory
    /// recovery step on a reopened one.
    fn rebuild_key_dir(&self) -> VnlResult<()> {
        if self.storage.is_empty() {
            return Ok(());
        }
        for (rid, ext) in self.storage.scan_all()? {
            if let Some(dir) = &self.key_dir {
                dir.register(&ext, rid).map_err(|_| {
                    VnlError::Storage(wh_storage::StorageError::Corrupt(format!(
                        "duplicate key on reopen: {:?}",
                        self.layout.ext_schema().key_of(&ext)
                    )))
                })?;
            }
            self.on_physical_insert(&ext, rid);
        }
        Ok(())
    }

    /// The durable-reclamation ceiling consulted by [`crate::gc::collect`]:
    /// the newest delete VN GC may physically reclaim. `u64::MAX` for
    /// in-memory tables.
    pub fn gc_reclaim_ceiling(&self) -> VersionNo {
        self.gc_ceiling.load(Ordering::Acquire) // ordering: gc-ceiling Acquire — pairs with the checkpoint’s Release publish of the new ceiling
    }

    /// Set the durable-reclamation ceiling (called by [`crate::durable`]
    /// at table creation, after every completed checkpoint, and after
    /// recovery).
    pub(crate) fn set_gc_reclaim_ceiling(&self, vn: VersionNo) {
        self.gc_ceiling.store(vn, Ordering::Release); // ordering: gc-ceiling Release — publishes the checkpoint VN the GC gate Acquires
    }

    /// Whether this table's heap is disk-backed (created or reopened
    /// through [`crate::durable`]).
    pub fn is_durable(&self) -> bool {
        self.storage.heap().is_durable()
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The extension layout (schemas and column mappings).
    pub fn layout(&self) -> &ExtLayout {
        &self.layout
    }

    /// The physical storage table (extended schema).
    pub fn storage(&self) -> &Table {
        &self.storage
    }

    /// The physical key directory, when the base schema declares a key.
    pub(crate) fn key_dir(&self) -> Option<&KeyDirectory> {
        self.key_dir.as_ref()
    }

    /// Global version state.
    pub fn version(&self) -> &VersionState {
        self.version.as_ref()
    }

    /// The shared handle to the version state (for warehouse assembly).
    pub fn version_arc(&self) -> &Arc<VersionState> {
        &self.version
    }

    /// Shared logical-I/O counters.
    pub fn io(&self) -> &Arc<IoStats> {
        &self.io
    }

    /// The query rewriter configured for this table's layout (§4).
    pub fn rewriter(&self) -> &QueryRewriter {
        &self.rewriter
    }

    /// The table's epoch-reclamation domain (pins, retires, releases).
    pub(crate) fn epochs(&self) -> &crate::epoch::EpochDomain {
        &self.epochs
    }

    /// Retired tuples still waiting out their epoch grace period before
    /// their slots can be reused (GC telemetry).
    pub fn retired_backlog(&self) -> usize {
        self.epochs.backlog()
    }

    /// Bulk-load rows before the warehouse goes live: tuples are stamped
    /// `(currentVN, insert)`. Only allowed while no maintenance transaction
    /// and no reader sessions exist.
    pub fn load_initial(&self, rows: &[Row]) -> VnlResult<()> {
        let snap = self.version.snapshot();
        if snap.maintenance_active {
            return Err(VnlError::MaintenanceAlreadyActive);
        }
        if !self
            .sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_empty()
        {
            return Err(VnlError::KeyRequired(
                "load_initial requires no active sessions",
            ));
        }
        for row in rows {
            let ext = self.layout.new_insert_row(row, snap.current_vn);
            let rid = self.storage.insert(&ext)?;
            if let Some(dir) = &self.key_dir {
                dir.register(&ext, rid).map_err(|_| {
                    // Roll the physical insert back so the table stays clean.
                    let _ = self.storage.delete(rid);
                    VnlError::NoSuchTuple(format!(
                        "duplicate key in initial load: {:?}",
                        self.layout.ext_schema().key_of(&ext)
                    ))
                })?;
            }
            self.on_physical_insert(&ext, rid);
        }
        Ok(())
    }

    /// Begin the (single) maintenance transaction.
    pub fn begin_maintenance(&self) -> VnlResult<MaintenanceTxn<'_>> {
        let vn = self.version.begin_maintenance()?;
        Ok(MaintenanceTxn::new(self, vn))
    }

    /// Begin a per-table maintenance handle at an externally-assigned
    /// `maintenanceVN` — used by [`crate::warehouse::WarehouseTxn`], which
    /// owns the global begin/commit protocol across many tables. The handle
    /// must be finished through the warehouse transaction, not directly.
    pub(crate) fn begin_maintenance_at(&self, vn: VersionNo) -> MaintenanceTxn<'_> {
        MaintenanceTxn::new(self, vn)
    }

    /// The effective version window consulted by the §4.1 global check and
    /// the maintenance pacer. Equals [`ExtLayout::n`] unless an
    /// [`crate::resilience::AdaptiveN`] controller (or a direct
    /// [`VnlTable::set_effective_n`]) narrowed or re-widened it.
    pub fn effective_n(&self) -> usize {
        self.effective_n.get()
    }

    /// Set the effective window, clamped to `[2, layout.n()]`. Narrowing
    /// expires trailing sessions earlier than the physical slots strictly
    /// require (bounding staleness); widening readmits sessions the slots
    /// still support. Neither direction affects Table 1 extraction.
    pub fn set_effective_n(&self, n: usize) -> usize {
        let clamped = self.effective_n.set(n);
        wh_obs::gauge!("vnl.resilience.effective_n").set(clamped as i64);
        clamped
    }

    /// Begin a reader session at the current database version.
    pub fn begin_session(&self) -> ReaderSession<'_> {
        let vn = self.version.snapshot().current_vn;
        self.begin_session_at(vn)
    }

    /// Begin a *leased* reader session declaring about `hint` of expected
    /// remaining work. The lease registers this session's VN with the
    /// warehouse-wide [`VersionState`] so a
    /// [`crate::resilience::MaintenancePacer`] can hold the version flip
    /// (or revoke the lease) instead of expiring the reader blindly. Renew
    /// through [`ReaderSession::renew_lease`] as work progresses.
    pub fn begin_leased_session(&self, hint: std::time::Duration) -> ReaderSession<'_> {
        let vn = self.version.snapshot().current_vn;
        let mut session = self.begin_session_at(vn);
        session.set_lease(self.version.leases().register(vn, hint));
        session
    }

    /// Begin a reader session pinned at an externally-chosen version (used
    /// by warehouse-wide sessions so every table reads the same `sessionVN`).
    pub(crate) fn begin_session_at(&self, vn: VersionNo) -> ReaderSession<'_> {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed); // ordering: id-alloc Relaxed — unique-ID allocation; only atomicity of the increment matters
        let active = {
            let mut sessions = self
                .sessions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            sessions.insert(id, vn);
            sessions.len()
        };
        wh_obs::counter!("vnl.reader.sessions").inc();
        wh_obs::gauge!("vnl.reader.active_sessions").set(active as i64);
        ReaderSession::new(self, id, vn)
    }

    pub(crate) fn end_session(&self, id: u64) {
        let active = {
            let mut sessions = self
                .sessions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            sessions.remove(&id);
            sessions.len()
        };
        wh_obs::gauge!("vnl.reader.active_sessions").set(active as i64);
    }

    pub(crate) fn note_expiration(&self) {
        self.expired_notifications.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        wh_obs::counter!("vnl.reader.expirations").inc();
        // §4.1 verdict feeds the sliding-window SLO, which doubles as the
        // expire-storm flight-recorder trigger, and leaves a causal event
        // in whatever trace the failing read is running under.
        wh_obs::slo::note_expiration();
        wh_obs::trace_event!("vnl.session.expired");
    }

    /// Build the enriched [`VnlError::SessionExpired`] for a session of
    /// this table: every raise site reports how far `currentVN` had moved
    /// and which relation detected it.
    pub(crate) fn expired_error(&self, session_vn: VersionNo) -> VnlError {
        VnlError::SessionExpired {
            session_vn,
            current_vn: self.version.current_vn_relaxed(),
            table: Some(self.name.clone()),
        }
    }

    /// The recovery-fence check, applied when a read *completes*: a crash
    /// recovery that reconstructed slots this session cannot be served from
    /// exactly raised [`VersionState::recovery_floor`] before mutating, so
    /// a scan in flight across the recovery expires here instead of
    /// returning reconstructed values. (See [`crate::recover`].)
    pub(crate) fn fence_check(&self, session_vn: VersionNo) -> VnlResult<()> {
        if session_vn < self.version.recovery_floor() {
            self.note_expiration();
            return Err(self.expired_error(session_vn));
        }
        Ok(())
    }

    /// How many sessions have been notified of expiration so far.
    pub fn expired_session_count(&self) -> u64 {
        self.expired_notifications.load(Ordering::Relaxed) // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
    }

    /// Number of currently active reader sessions.
    pub fn active_session_count(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// The smallest `sessionVN` among active sessions, if any.
    pub fn min_active_session_vn(&self) -> Option<VersionNo> {
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .copied()
            .min()
    }

    /// Read one tuple as seen by `session_vn` (point lookup via the key
    /// directory). `Ok(None)` when the tuple is logically absent.
    pub(crate) fn read_visible_by_key(
        &self,
        key_row: &[Value],
        session_vn: VersionNo,
    ) -> VnlResult<Option<Row>> {
        if self.key_dir.is_none() {
            return Err(VnlError::KeyRequired("point lookup"));
        }
        // The pin spans probe → fetch: GC may retire the tuple between the
        // two, but cannot release (reuse) its slot while we hold the epoch.
        let _pin = self.epochs.pin();
        let Some(rid) = self.find_physical(&self.base_to_ext_positions(key_row)) else {
            self.fence_check(session_vn)?;
            return Ok(None);
        };
        let ext = match self.storage.read(rid) {
            Ok(e) => e,
            // Reclaimed by GC between probe and read: logically absent (GC
            // only removes tuples invisible to every active session).
            Err(wh_storage::StorageError::NoSuchSlot { .. }) => {
                self.fence_check(session_vn)?;
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        let resolved = match visibility::extract(&self.layout, &ext, session_vn) {
            visibility::Visible::Row(r) => Some(r),
            visibility::Visible::Ignore => None,
            visibility::Visible::Expired => {
                self.note_expiration();
                return Err(self.expired_error(session_vn));
            }
        };
        // Checked on `Ignore` too: a recovery may have physically removed
        // a tuple whose pre-values this session should still see.
        self.fence_check(session_vn)?;
        Ok(resolved)
    }

    /// Scan all tuples as seen by `session_vn`. Errs with
    /// [`VnlError::SessionExpired`] on the first tuple that proves the
    /// session expired (the per-tuple detector of §3.2).
    pub(crate) fn scan_visible(&self, session_vn: VersionNo) -> VnlResult<Vec<Row>> {
        let mut out = Vec::new();
        self.scan_visible_with(session_vn, None, |row| {
            out.push(row);
            Ok(())
        })?;
        Ok(out)
    }

    /// Streaming visitor scan of the tuples visible to `session_vn` through
    /// the byte-level Table 1 classifier ([`crate::scan::ByteScanner`]):
    /// invisible tuples are skipped before any row decode, and only the
    /// `projection` base columns (all when `None`) are materialized. Stops
    /// at the first expired tuple or visitor error.
    pub(crate) fn scan_visible_with<F>(
        &self,
        session_vn: VersionNo,
        projection: Option<&[usize]>,
        mut visit: F,
    ) -> VnlResult<()>
    where
        F: FnMut(Row) -> VnlResult<()>,
    {
        let codec = self.storage.codec();
        let scanner = crate::scan::ByteScanner::new(&self.layout, codec, projection);
        let _pin = self.epochs.pin();
        let mut failure: Option<VnlError> = None;
        let res = self.storage.heap().scan(|_, buf| {
            match scanner.classify(buf, session_vn) {
                crate::scan::Classified::Ignore => return Ok(()),
                crate::scan::Classified::Expired => {
                    failure = Some(self.expired_error(session_vn));
                }
                which => match scanner.decode_visible(codec, buf, which) {
                    Ok(row) => {
                        if let Err(e) = visit(row) {
                            failure = Some(e);
                        }
                    }
                    Err(e) => failure = Some(e.into()),
                },
            }
            if failure.is_some() {
                Err(wh_storage::StorageError::ScanAborted)
            } else {
                Ok(())
            }
        });
        self.settle_scan(res, failure)?;
        self.fence_check(session_vn)
    }

    /// Parallel twin of [`VnlTable::scan_visible_with`]: partitions the heap
    /// into contiguous page ranges scanned by `threads` workers
    /// ([`wh_storage::HeapFile::scan_parallel`]). `visit(worker, row)` runs
    /// on worker threads; the first failure (expiration, decode error, or
    /// visitor error) aborts all partitions. Which worker sees which tuple
    /// is deterministic for a fixed heap, but call interleaving is not — the
    /// visitor must not rely on ordering.
    pub(crate) fn scan_visible_parallel<F>(
        &self,
        threads: usize,
        session_vn: VersionNo,
        projection: Option<&[usize]>,
        visit: F,
    ) -> VnlResult<()>
    where
        F: Fn(usize, Row) -> VnlResult<()> + Sync,
    {
        let codec = self.storage.codec();
        let scanner = crate::scan::ByteScanner::new(&self.layout, codec, projection);
        // One pin covers every worker: it is held by the coordinator for
        // the whole parallel scan, so any RID a worker observes stays
        // un-reused until the scan returns.
        let _pin = self.epochs.pin();
        let failure: Mutex<Option<VnlError>> = Mutex::new(None);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let fail = |e: VnlError| {
            let mut slot = failure
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(e);
            }
            failed.store(true, Ordering::Release); // ordering: scan-abort Release — publishes the stashed error before the flag its reader Acquires
        };
        let res = self
            .storage
            .heap()
            .scan_parallel(threads, |worker, _, buf| {
                match scanner.classify(buf, session_vn) {
                    crate::scan::Classified::Ignore => {}
                    crate::scan::Classified::Expired => {
                        fail(self.expired_error(session_vn));
                    }
                    which => match scanner.decode_visible(codec, buf, which) {
                        Ok(row) => {
                            if let Err(e) = visit(worker, row) {
                                fail(e);
                            }
                        }
                        Err(e) => fail(e.into()),
                    },
                }
                // ordering: scan-abort Acquire — pairs with the workers' Release store publishing the stashed error
                if failed.load(Ordering::Acquire) {
                    Err(wh_storage::StorageError::ScanAborted)
                } else {
                    Ok(())
                }
            });
        self.settle_scan(
            res,
            failure
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )?;
        self.fence_check(session_vn)
    }

    /// Batched twin of [`VnlTable::scan_visible_with`], driven by a
    /// prebuilt [`crate::scan::BatchScanner`]: the heap copies each page's
    /// live records out under a short latch hold and gathers their version
    /// fields into column-strided arrays, the scanner classifies the whole
    /// page branch-free into a selection bitmap, and only selected records
    /// are decoded. Same Table 1 semantics (including per-tuple expiration)
    /// as the scalar path — the property tests in [`crate::scan`] hold the
    /// two to exact agreement.
    pub(crate) fn scan_visible_batched<F>(
        &self,
        scanner: &crate::scan::BatchScanner,
        session_vn: VersionNo,
        mut visit: F,
    ) -> VnlResult<()>
    where
        F: FnMut(Row) -> VnlResult<()>,
    {
        let _pin = self.epochs.pin();
        let mut failure: Option<VnlError> = None;
        let mut classes = crate::scan::BatchClasses::default();
        let mut pool = scanner.new_pool();
        let heap = self.storage.heap();
        let res = heap.scan_batches(0..heap.page_count(), scanner.specs(), |batch| {
            scanner.classify_batch(batch, session_vn, &mut classes);
            note_batch_metrics(batch.len(), classes.selected());
            for (i, &code) in classes.codes().iter().enumerate() {
                match code {
                    crate::scan::Classified::Ignore => {}
                    crate::scan::Classified::Expired => {
                        failure = Some(self.expired_error(session_vn));
                    }
                    which => match scanner.decode_visible(batch, i, which, &mut pool) {
                        Ok(row) => {
                            if let Err(e) = visit(row) {
                                failure = Some(e);
                            }
                        }
                        Err(e) => failure = Some(e.into()),
                    },
                }
                if failure.is_some() {
                    return Err(wh_storage::StorageError::ScanAborted);
                }
            }
            Ok(())
        });
        self.settle_scan(res, failure)?;
        self.fence_check(session_vn)
    }

    /// Parallel twin of [`VnlTable::scan_visible_batched`]: contiguous page
    /// partitions, one batch in flight per worker, first failure aborts all
    /// partitions (same contract as [`VnlTable::scan_visible_parallel`]).
    pub(crate) fn scan_visible_batched_parallel<F>(
        &self,
        threads: usize,
        scanner: &crate::scan::BatchScanner,
        session_vn: VersionNo,
        visit: F,
    ) -> VnlResult<()>
    where
        F: Fn(usize, Row) -> VnlResult<()> + Sync,
    {
        // One pin covers every worker, exactly as in the scalar parallel
        // scan.
        let _pin = self.epochs.pin();
        // One interning pool per worker, locked once per batch — the lock
        // is uncontended (each worker only ever takes its own) but keeps
        // the visit closure shareable as `scan_batches_parallel` requires.
        let pools: Vec<Mutex<crate::scan::StrPool>> = (0..threads.max(1))
            .map(|_| Mutex::new(scanner.new_pool()))
            .collect();
        let failure: Mutex<Option<VnlError>> = Mutex::new(None);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let fail = |e: VnlError| {
            let mut slot = failure
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(e);
            }
            failed.store(true, Ordering::Release); // ordering: scan-abort Release — publishes the stashed error before the flag its reader Acquires
        };
        let res =
            self.storage
                .heap()
                .scan_batches_parallel(threads, scanner.specs(), |worker, batch| {
                    let mut classes = crate::scan::BatchClasses::default();
                    scanner.classify_batch(batch, session_vn, &mut classes);
                    note_batch_metrics(batch.len(), classes.selected());
                    let mut pool = pools[worker % pools.len()]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    for (i, &code) in classes.codes().iter().enumerate() {
                        match code {
                            crate::scan::Classified::Ignore => {}
                            crate::scan::Classified::Expired => {
                                fail(self.expired_error(session_vn));
                            }
                            which => match scanner.decode_visible(batch, i, which, &mut pool) {
                                Ok(row) => {
                                    if let Err(e) = visit(worker, row) {
                                        fail(e);
                                    }
                                }
                                Err(e) => fail(e.into()),
                            },
                        }
                        // ordering: scan-abort Acquire — pairs with the workers' Release store publishing the stashed error
                        if failed.load(Ordering::Acquire) {
                            return Err(wh_storage::StorageError::ScanAborted);
                        }
                    }
                    Ok(())
                });
        self.settle_scan(
            res,
            failure
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )?;
        self.fence_check(session_vn)
    }

    /// Count the tuples visible to `session_vn` without decoding any of
    /// them: the classify-only fast path the selection bitmap makes
    /// possible. Expiration detection is identical to a full scan.
    pub(crate) fn count_visible(&self, session_vn: VersionNo) -> VnlResult<u64> {
        let scanner =
            crate::scan::BatchScanner::new_sparse(&self.layout, self.storage.codec(), &[]);
        let _pin = self.epochs.pin();
        let mut failure: Option<VnlError> = None;
        let mut classes = crate::scan::BatchClasses::default();
        let mut count = 0u64;
        let heap = self.storage.heap();
        let res = heap.scan_batches(0..heap.page_count(), scanner.specs(), |batch| {
            scanner.classify_batch(batch, session_vn, &mut classes);
            note_batch_metrics(batch.len(), classes.selected());
            if classes
                .codes()
                .iter()
                .any(|c| matches!(c, crate::scan::Classified::Expired))
            {
                failure = Some(self.expired_error(session_vn));
                return Err(wh_storage::StorageError::ScanAborted);
            }
            count += classes.selected() as u64;
            Ok(())
        });
        self.settle_scan(res, failure)?;
        self.fence_check(session_vn)?;
        Ok(count)
    }

    /// Resolve a heap-scan result against an error stashed by the visitor:
    /// the stashed [`VnlError`] wins (the paired `ScanAborted` is only its
    /// transport), expiration is counted, and genuine storage errors pass
    /// through.
    fn settle_scan(
        &self,
        res: Result<(), wh_storage::StorageError>,
        failure: Option<VnlError>,
    ) -> VnlResult<()> {
        match (res, failure) {
            (_, Some(e)) => {
                if matches!(e, VnlError::SessionExpired { .. }) {
                    self.note_expiration();
                }
                Err(e)
            }
            (Err(e), None) => Err(e.into()),
            (Ok(()), None) => Ok(()),
        }
    }

    /// Raw extended rows with their RIDs (reports, GC, tests).
    pub fn scan_raw(&self) -> VnlResult<Vec<(Rid, Row)>> {
        // Pin: callers correlate the returned RIDs with later point reads;
        // hold the epoch so GC cannot recycle them mid-collection.
        let _pin = self.epochs.pin();
        Ok(self.storage.scan_all()?)
    }

    // ------------------------------------------------------------------
    // §4.3: secondary indexes
    // ------------------------------------------------------------------

    /// Create a secondary index over non-updatable base columns. §4.3:
    /// "indexes on non-updatable attributes are not affected by the
    /// algorithm" — updatable attributes are rejected because the rewrite
    /// buries them in CASE expressions no stock optimizer can index.
    /// Backfills from existing tuples; usable immediately.
    pub fn create_index(&self, name: &str, column_names: &[&str]) -> VnlResult<()> {
        let base_schema = self.layout.base_schema();
        let mut base_cols = Vec::with_capacity(column_names.len());
        for c in column_names {
            let idx = base_schema.column_index(c)?;
            if base_schema.columns()[idx].updatable {
                return Err(VnlError::IndexOnUpdatable((*c).to_string()));
            }
            base_cols.push(idx);
        }
        let ext_cols: Vec<usize> = base_cols.iter().map(|&b| self.layout.base_col(b)).collect();
        let mut indexes = self
            .indexes
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if indexes.iter().any(|i| i.name == name) {
            return Err(VnlError::DuplicateIndex(name.to_string()));
        }
        let sec = SecondaryIndex {
            name: name.to_string(),
            base_cols,
            ext_cols: ext_cols.clone(),
            index: OrderedIndex::new(ext_cols),
        };
        // Backfill while holding the registry lock so concurrent physical
        // inserts cannot slip between backfill and registration. Pinned:
        // the index stores RIDs, so GC must not recycle them mid-backfill.
        let _pin = self.epochs.pin();
        self.storage.scan(|rid, ext| {
            sec.index.insert(&ext, rid);
            Ok(())
        })?;
        indexes.push(Arc::new(sec));
        Ok(())
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> VnlResult<Arc<SecondaryIndex>> {
        self.indexes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .find(|i| i.name == name)
            .cloned()
            .ok_or_else(|| VnlError::NoSuchIndex(name.to_string()))
    }

    /// RIDs whose indexed columns equal `key` (base-column values in index
    /// order). Visibility filtering is the caller's job.
    pub(crate) fn index_lookup_eq(&self, name: &str, key: &[Value]) -> VnlResult<Vec<Rid>> {
        let idx = self.index(name)?;
        Ok(idx.index.lookup(&IndexKey(key.to_vec())))
    }

    /// RIDs whose indexed columns fall within `[lo, hi]` (inclusive,
    /// `None` = unbounded).
    pub(crate) fn index_lookup_range(
        &self,
        name: &str,
        lo: Option<&[Value]>,
        hi: Option<&[Value]>,
    ) -> VnlResult<Vec<Rid>> {
        let idx = self.index(name)?;
        let lo = lo.map(|v| IndexKey(v.to_vec()));
        let hi = hi.map(|v| IndexKey(v.to_vec()));
        Ok(idx.index.range(lo.as_ref(), hi.as_ref()))
    }

    /// Hook: a tuple was physically inserted.
    pub(crate) fn on_physical_insert(&self, ext_row: &[Value], rid: Rid) {
        // §5's storage-cost measure: extra bytes each physical tuple carries
        // for its version slots, accumulated across the live heap.
        let growth = self.layout.overhead();
        wh_obs::gauge!("vnl.storage.tuple_growth_bytes")
            .add(growth.ext_tuple_bytes as i64 - growth.base_tuple_bytes as i64);
        for idx in self
            .indexes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            idx.index.insert(ext_row, rid);
        }
    }

    /// Hook: a tuple was physically deleted.
    pub(crate) fn on_physical_delete(&self, ext_row: &[Value], rid: Rid) {
        self.note_physical_delete();
        for idx in self.indexes_snapshot() {
            idx.remove_entry(ext_row, rid);
        }
    }

    /// Gauge bookkeeping for a physical delete, for callers that retire
    /// index entries themselves from an [`VnlTable::indexes_snapshot`].
    pub(crate) fn note_physical_delete(&self) {
        let growth = self.layout.overhead();
        wh_obs::gauge!("vnl.storage.tuple_growth_bytes")
            .add(growth.base_tuple_bytes as i64 - growth.ext_tuple_bytes as i64);
    }

    /// `Arc` snapshot of the secondary-index registry. Code that must touch
    /// indexes while holding a page latch works from this snapshot: the
    /// registry lock itself may not be acquired under a page latch, because
    /// index backfill holds the registry lock across a full storage scan
    /// (page latches inside) and the inverted order would deadlock.
    pub(crate) fn indexes_snapshot(&self) -> Vec<Arc<SecondaryIndex>> {
        self.indexes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .to_vec()
    }

    /// Hook: a tuple was modified in place; re-key any index whose columns
    /// changed (only possible through the resurrection path's `CV ← MV` on
    /// non-key, non-updatable attributes).
    pub(crate) fn on_physical_update(&self, old_ext: &[Value], new_ext: &[Value], rid: Rid) {
        for idx in self
            .indexes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let changed = idx.ext_cols.iter().any(|&c| old_ext[c] != new_ext[c]);
            if changed {
                let _ = idx.index.remove(old_ext, rid);
                idx.index.insert(new_ext, rid);
            }
        }
    }

    /// Find the physical tuple holding `key_row`'s key (visible or not).
    pub(crate) fn find_physical(&self, key_row: &[Value]) -> Option<Rid> {
        self.key_dir.as_ref()?.find(key_row)
    }

    /// Map a base-schema row to an extended-schema row that carries only the
    /// base values (used by key lookups: key columns land in the right
    /// positions, everything else is NULL).
    pub(crate) fn base_to_ext_positions(&self, base_row: &[Value]) -> Row {
        let mut ext = vec![Value::Null; self.layout.ext_schema().arity()];
        for (i, v) in base_row.iter().enumerate() {
            ext[self.layout.base_col(i)] = v.clone();
        }
        ext
    }
}

/// Per-page batch telemetry: batch-size distribution and selection-bitmap
/// density. Recorded once per *page* (never per row), so the E20
/// observability-overhead gate is unaffected.
fn note_batch_metrics(rows: usize, selected: usize) {
    if !wh_obs::is_enabled() || rows == 0 {
        return;
    }
    wh_obs::histogram!("vnl.scan.batch_rows").record(rows as u64);
    wh_obs::histogram!("vnl.scan.batch_selectivity_pct").record((selected * 100 / rows) as u64);
}

impl std::fmt::Debug for VnlTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VnlTable")
            .field("name", &self.name)
            .field("n", &self.layout.n())
            .field("tuples", &self.storage.len())
            .field("current_vn", &self.version.snapshot().current_vn)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;
    use wh_types::Date;

    fn sales_row(city: &str, pl: &str, day: u8, sales: i64) -> Row {
        vec![
            Value::from(city),
            Value::from(pl.to_string()),
            Value::from("CA"),
            Value::from(Date::ymd(1996, 10, day)),
            Value::from(sales),
        ]
    }

    // NOTE: daily_sales_schema order is (city, state, product_line, date,
    // total_sales); build rows accordingly.
    fn row(city: &str, pl: &str, day: u8, sales: i64) -> Row {
        vec![
            Value::from(city),
            Value::from("CA"),
            Value::from(pl),
            Value::from(Date::ymd(1996, 10, day)),
            Value::from(sales),
        ]
    }

    #[test]
    fn create_and_load_initial() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        t.load_initial(&[row("San Jose", "golf equip", 14, 10_000)])
            .unwrap();
        let s = t.begin_session();
        let rows = s.scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::from(10_000));
        let _ = sales_row("x", "y", 1, 0); // silence helper
    }

    #[test]
    fn load_initial_rejects_duplicates() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        let r = row("San Jose", "golf equip", 14, 10_000);
        let err = t.load_initial(&[r.clone(), r]).unwrap_err();
        assert!(matches!(err, VnlError::NoSuchTuple(_)));
        // The first copy survived; the failed duplicate was rolled back.
        assert_eq!(t.storage().len(), 1);
    }

    #[test]
    fn load_initial_blocked_during_maintenance() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        let txn = t.begin_maintenance().unwrap();
        assert_eq!(
            t.load_initial(&[row("X", "p", 1, 1)]).unwrap_err(),
            VnlError::MaintenanceAlreadyActive
        );
        txn.commit().unwrap();
    }

    #[test]
    fn session_registry_tracks_lifecycle() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        assert_eq!(t.active_session_count(), 0);
        let s1 = t.begin_session();
        let s2 = t.begin_session();
        assert_eq!(t.active_session_count(), 2);
        assert_eq!(t.min_active_session_vn(), Some(1));
        drop(s1);
        assert_eq!(t.active_session_count(), 1);
        s2.finish();
        assert_eq!(t.active_session_count(), 0);
        assert_eq!(t.min_active_session_vn(), None);
    }

    #[test]
    fn one_maintenance_at_a_time() {
        let t = VnlTable::create(daily_sales_schema(), 2).unwrap();
        let txn = t.begin_maintenance().unwrap();
        assert!(matches!(
            t.begin_maintenance().unwrap_err(),
            VnlError::MaintenanceAlreadyActive
        ));
        txn.commit().unwrap();
        let txn2 = t.begin_maintenance().unwrap();
        txn2.commit().unwrap();
        assert_eq!(t.version().snapshot().current_vn, 3);
    }
}
