//! 2VNL as a [`wh_cc::ConcurrencyScheme`], for the §6 head-to-head runs.
//!
//! Wraps a `(key, value)` [`VnlTable`] behind the same interface the S2PL /
//! 2V2PL / MV2PL baselines implement, so experiment E10 drives all four
//! identically: reader transactions are reader sessions, the writer is the
//! maintenance transaction. 2VNL's promises become measurable: the
//! `CcStats` blocking counters stay at zero by construction (there is no
//! lock to wait on), commit is never delayed by readers, and no version
//! pool or pending heap exists — only the in-tuple pre-update copies.

use crate::error::VnlError;
use crate::maintenance::MaintenanceTxn;
use crate::reader::ReaderSession;
use crate::table::VnlTable;
use wh_cc::scheme::{CcError, CcResult, ConcurrencyScheme, ReaderTxn, WriterTxn};
use wh_cc::stats::CcStatsSnapshot;
use wh_storage::iostats::IoSnapshot;
use wh_types::{Column, DataType, Row, Schema, Value};

fn kv_base_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
        ],
        &["key"],
    )
    .expect("kv schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
}

/// A `(key, value)` store maintained under nVNL.
pub struct VnlStore {
    table: VnlTable,
}

impl VnlStore {
    /// Create a store with keys `0..count`, all values zero, under `n`
    /// versions (2 = the paper's 2VNL).
    pub fn populate(count: u64, n: usize) -> Result<Self, VnlError> {
        let table = VnlTable::create_named("kv", kv_base_schema(), n)?;
        let rows: Vec<Row> = (0..count)
            .map(|k| vec![Value::from(k as i64), Value::from(0)])
            .collect();
        table.load_initial(&rows)?;
        Ok(VnlStore { table })
    }

    /// The wrapped table.
    pub fn table(&self) -> &VnlTable {
        &self.table
    }

    fn key_row(key: u64) -> Row {
        vec![Value::from(key as i64), Value::Null]
    }
}

fn to_cc(e: VnlError, key: u64) -> CcError {
    match e {
        // Both the raw expiration and its retry-exhausted terminal form
        // mean the same thing to a CC harness: the version this reader
        // needs is gone. The enriched fields (currentVN, table) only feed
        // the error message, which `CcError` does not carry.
        VnlError::SessionExpired { .. } | VnlError::RetryExhausted { .. } => {
            CcError::VersionUnavailable(key)
        }
        other => CcError::Storage(other.to_string()),
    }
}

struct VnlReader<'s> {
    session: Option<ReaderSession<'s>>,
}

impl ReaderTxn for VnlReader<'_> {
    fn read(&mut self, key: u64) -> CcResult<i64> {
        let session = self.session.as_ref().expect("session live until finish"); // lint: allow(no-panic) — invariant documented in the expect message
        match session.read_by_key(&VnlStore::key_row(key)) {
            Ok(Some(row)) => Ok(row[1].as_int().expect("value column")), // lint: allow(no-panic) — invariant documented in the expect message
            Ok(None) => Err(CcError::NoSuchKey(key)),
            Err(e) => Err(to_cc(e, key)),
        }
    }

    fn finish(mut self: Box<Self>) {
        if let Some(s) = self.session.take() {
            s.finish();
        }
    }
}

struct VnlWriter<'s> {
    txn: Option<MaintenanceTxn<'s>>,
    table: &'s VnlTable,
}

impl WriterTxn for VnlWriter<'_> {
    fn update(&mut self, key: u64, value: i64) -> CcResult<()> {
        let txn = self.txn.as_ref().expect("txn live until commit/abort"); // lint: allow(no-panic) — invariant documented in the expect message
        let row = vec![Value::from(key as i64), Value::from(value)];
        match txn.update_row(&row) {
            Ok(()) => Ok(()),
            Err(VnlError::NoSuchTuple(_)) => Err(CcError::NoSuchKey(key)),
            Err(e) => Err(to_cc(e, key)),
        }
    }

    fn commit(mut self: Box<Self>) -> CcResult<()> {
        let txn = self.txn.take().expect("txn live"); // lint: allow(no-panic) — invariant documented in the expect message
        txn.commit().map_err(|e| CcError::Storage(e.to_string()))
    }

    fn abort(mut self: Box<Self>) -> CcResult<()> {
        let txn = self.txn.take().expect("txn live"); // lint: allow(no-panic) — invariant documented in the expect message
        txn.abort().map_err(|e| CcError::Storage(e.to_string()))
    }
}

impl Drop for VnlWriter<'_> {
    fn drop(&mut self) {
        // MaintenanceTxn's own Drop auto-aborts if still open.
        let _ = &self.table;
    }
}

impl ConcurrencyScheme for VnlStore {
    fn name(&self) -> &'static str {
        "2VNL"
    }

    fn begin_reader(&self) -> Box<dyn ReaderTxn + '_> {
        Box::new(VnlReader {
            session: Some(self.table.begin_session()),
        })
    }

    fn begin_writer(&self) -> Box<dyn WriterTxn + '_> {
        let txn = self
            .table
            .begin_maintenance()
            .expect("benchmarks enforce one writer at a time"); // lint: allow(no-panic) — invariant documented in the expect message
        Box::new(VnlWriter {
            txn: Some(txn),
            table: &self.table,
        })
    }

    fn cc_stats(&self) -> CcStatsSnapshot {
        // 2VNL takes no locks: nothing ever blocks, by construction.
        CcStatsSnapshot::default()
    }

    fn io_stats(&self) -> IoSnapshot {
        self.table.io().snapshot()
    }

    fn reset_stats(&self) {
        self.table.io().reset();
    }

    fn storage_bytes(&self) -> u64 {
        self.table.storage().len() * self.table.storage().codec().encoded_len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_contract_basics() {
        let store = VnlStore::populate(10, 2).unwrap();
        assert_eq!(store.name(), "2VNL");
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        w.commit().unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 42);
        assert_eq!(r.read(0).unwrap(), 0);
        r.finish();
    }

    #[test]
    fn reader_snapshot_survives_concurrent_commit() {
        let store = VnlStore::populate(10, 2).unwrap();
        let mut old = store.begin_reader();
        assert_eq!(old.read(3).unwrap(), 0);
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        // Uncommitted: old reader still sees 0 (pre-update version).
        assert_eq!(old.read(3).unwrap(), 0);
        w.commit().unwrap();
        // Committed: old reader STILL sees 0 — its session version.
        assert_eq!(old.read(3).unwrap(), 0);
        old.finish();
        let mut new = store.begin_reader();
        assert_eq!(new.read(3).unwrap(), 42);
        new.finish();
    }

    #[test]
    fn session_expiry_surfaces_as_version_unavailable() {
        let store = VnlStore::populate(4, 2).unwrap();
        let mut old = store.begin_reader();
        for round in 0..2 {
            let mut w = store.begin_writer();
            w.update(1, round + 1).unwrap();
            w.commit().unwrap();
        }
        // Two maintenance txns have touched key 1: the old session expired.
        assert_eq!(old.read(1), Err(CcError::VersionUnavailable(1)));
        old.finish();
    }

    #[test]
    fn unknown_key() {
        let store = VnlStore::populate(2, 2).unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(99), Err(CcError::NoSuchKey(99)));
        r.finish();
        let mut w = store.begin_writer();
        assert_eq!(w.update(99, 1), Err(CcError::NoSuchKey(99)));
        w.abort().unwrap();
    }

    #[test]
    fn zero_blocking_by_construction() {
        let store = VnlStore::populate(4, 2).unwrap();
        let mut w = store.begin_writer();
        w.update(0, 7).unwrap();
        let mut r = store.begin_reader();
        r.read(0).unwrap();
        r.finish();
        w.commit().unwrap();
        assert_eq!(store.cc_stats().total_blocks(), 0);
    }

    #[test]
    fn nvnl_store_survives_more_overlaps() {
        let store = VnlStore::populate(4, 3).unwrap();
        let mut old = store.begin_reader();
        for round in 0..2 {
            let mut w = store.begin_writer();
            w.update(1, (round + 1) * 10).unwrap();
            w.commit().unwrap();
        }
        // Under 3VNL the session survives two overlapping maintenance txns.
        assert_eq!(old.read(1).unwrap(), 0);
        old.finish();
    }
}
