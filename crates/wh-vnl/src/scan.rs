//! Byte-level visibility scans: Table 1 evaluated on encoded records.
//!
//! [`crate::visibility::extract`] is the reference implementation of Table 1
//! (§3.2) and its nVNL generalization (§5), but it requires a fully decoded
//! extended row. On the reader hot path that is wasteful twice over: most
//! tuples in a scan resolve to *current* visibility (no maintenance touched
//! them since the session began), yet every tuple pays full-row decode —
//! including the `n − 1` pre-update sets the session will never look at —
//! and a query usually projects a handful of columns anyway.
//!
//! [`ByteScanner`] fixes both. The extended row codec stores every column at
//! a fixed byte offset (`wh_types::RowCodec::col_byte_range`), so the
//! `(tupleVN_j, operation_j)` pairs can be read straight out of the encoded
//! record: 4 little-endian bytes for the version number, 1 byte for the
//! operation code, and one null-bitmap bit per column for slot occupancy.
//! [`ByteScanner::classify`] runs the *entire* Table 1 decision on those
//! bytes and only then does [`ByteScanner::decode_visible`] materialize the
//! columns the caller asked for — invisible tuples are skipped before any
//! decoding happens, and visible ones decode exactly the projected columns
//! (pre-update columns are substituted per Table 1's note when the session
//! reads a pre-update version).
//!
//! The classifier mirrors `extract` case by case; the
//! `byte_path_matches_reference` tests below lock the two together on the
//! paper's fixtures (Figure 4, Figure 7) and on randomized histories.
//!
//! [`BatchScanner`] is the third rung: it consumes whole-page
//! [`RecordBatch`]es (see `wh_storage::batch`) whose `(tupleVN_j,
//! operation_j)` pairs have been gathered into column-strided `i64` arrays,
//! evaluates Table 1 over those arrays without data-dependent branching in
//! the slot walk, writes the verdicts into a selection bitmap, and decodes
//! *only* the selected records through a precompiled per-column plan.
//! `ByteScanner` stays as the per-tuple reference and oracle — the same
//! property tests run all three implementations against each other.

use crate::schema_ext::ExtLayout;
use crate::version::{Operation, VersionNo};
use std::collections::HashSet;
use std::sync::Arc;
use wh_storage::batch::{FieldSpec, RecordBatch, NULL_SENTINEL};
use wh_types::{DataType, Date, Row, RowCodec, TypeError, TypeResult, Value};

/// Outcome of the byte-level Table 1 test for one encoded record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classified {
    /// The session sees the tuple's current attribute values.
    Current,
    /// The session sees the pre-update version recorded in slot `j`.
    Pre(usize),
    /// The tuple is logically absent at the session's version.
    Ignore,
    /// Case 3: the version the session needs was pushed out of the tuple.
    Expired,
}

/// Byte offsets of one `(tupleVN_j, operation_j)` pair.
#[derive(Debug, Clone, Copy)]
struct SlotProbe {
    /// Offset of the 4-byte little-endian `tupleVN_j` (Int32) slot.
    vn_off: usize,
    /// Offset of the 1-byte `operation_j` (Char(1)) slot.
    op_off: usize,
    /// Null-bitmap (byte, mask) of the `tupleVN_j` column.
    vn_null: (usize, u8),
    /// Null-bitmap (byte, mask) of the `operation_j` column.
    op_null: (usize, u8),
}

/// Precomputed byte-level visibility classifier + projecting decoder for one
/// `(ExtLayout, RowCodec)` pair. Cheap to build per scan; `Sync`, so one
/// instance serves every worker of a parallel scan.
#[derive(Debug, Clone)]
pub struct ByteScanner {
    slots: Vec<SlotProbe>,
    /// Extended column index per projected output column, current version.
    current_cols: Vec<usize>,
    /// Same, per pre-update slot `j` (updatable columns swapped for their
    /// `pre_…_j` copies — Table 1's "pre-update values" note).
    pre_cols: Vec<Vec<usize>>,
}

fn null_bit(col: usize) -> (usize, u8) {
    (col / 8, 1 << (col % 8))
}

impl ByteScanner {
    /// Build a scanner over `layout` for records encoded by `codec` (the
    /// extended-schema codec). `projection` lists the base-schema columns to
    /// decode, in output order; `None` decodes the full base row.
    pub fn new(layout: &ExtLayout, codec: &RowCodec, projection: Option<&[usize]>) -> Self {
        let slots = (0..layout.slots())
            .map(|j| {
                let vn_col = layout.vn_col(j);
                let op_col = layout.op_col(j);
                SlotProbe {
                    vn_off: codec.col_byte_range(vn_col).0,
                    op_off: codec.col_byte_range(op_col).0,
                    vn_null: null_bit(vn_col),
                    op_null: null_bit(op_col),
                }
            })
            .collect();
        let all: Vec<usize>;
        let projected: &[usize] = match projection {
            Some(cols) => cols,
            None => {
                all = (0..layout.base_schema().arity()).collect();
                &all
            }
        };
        let current_cols: Vec<usize> = projected.iter().map(|&i| layout.base_col(i)).collect();
        let pre_cols = (0..layout.slots())
            .map(|j| {
                projected
                    .iter()
                    .map(|&i| match layout.updatable().iter().position(|&u| u == i) {
                        Some(u_pos) => layout.pre_set(j)[u_pos],
                        None => layout.base_col(i),
                    })
                    .collect()
            })
            .collect();
        ByteScanner {
            slots,
            current_cols,
            pre_cols,
        }
    }

    /// Read slot `j`'s `(tupleVN, operation)` from the encoded record;
    /// `None` when the slot is empty (either column NULL) — the byte twin of
    /// [`ExtLayout::slot`].
    fn slot(&self, buf: &[u8], j: usize) -> Option<(VersionNo, Operation)> {
        let p = &self.slots[j];
        if buf[p.vn_null.0] & p.vn_null.1 != 0 || buf[p.op_null.0] & p.op_null.1 != 0 {
            return None;
        }
        let vn = i32::from_le_bytes(buf[p.vn_off..p.vn_off + 4].try_into().unwrap()); // lint: allow(no-panic) — infallible: fixed-width slice
        let op = match buf[p.op_off] {
            b'i' => Operation::Insert,
            b'u' => Operation::Update,
            b'd' => Operation::Delete,
            _ => return None,
        };
        Some((vn as i64 as VersionNo, op))
    }

    /// Table 1 / §5 on the encoded record — the byte twin of
    /// [`crate::visibility::extract`], case for case.
    pub fn classify(&self, buf: &[u8], session_vn: VersionNo) -> Classified {
        let (vn1, op1) = self
            .slot(buf, 0)
            .expect("slot 0 is always populated for live tuples"); // lint: allow(no-panic) — invariant documented in the expect message
                                                                   // Case 1: the session is at or past the tuple's newest modification.
        if session_vn >= vn1 {
            return match op1 {
                Operation::Delete => Classified::Ignore,
                _ => Classified::Current,
            };
        }
        // Case 2: find j* = the oldest recorded slot with tupleVN_j > sessionVN.
        let mut j_star = 0;
        let mut oldest_recorded = 0;
        for j in 1..self.slots.len() {
            match self.slot(buf, j) {
                Some((vn_j, _)) => {
                    oldest_recorded = j;
                    if vn_j > session_vn {
                        j_star = j;
                    }
                }
                None => break,
            }
        }
        // Case 3: expired — all slots full, and the session predates even
        // the oldest recorded pre-update version's validity window.
        let slots_full = oldest_recorded == self.slots.len() - 1;
        if slots_full && j_star == oldest_recorded {
            let (vn_oldest, _) = self.slot(buf, oldest_recorded).expect("recorded"); // lint: allow(no-panic) — invariant documented in the expect message
            if session_vn + 1 < vn_oldest {
                return Classified::Expired;
            }
        }
        let (_, op_j) = self.slot(buf, j_star).expect("j* is recorded"); // lint: allow(no-panic) — invariant documented in the expect message
        match op_j {
            Operation::Insert => Classified::Ignore,
            _ => Classified::Pre(j_star),
        }
    }

    /// Decode the projected columns of a record already classified visible
    /// (`Current` or `Pre(j)`); only those columns are materialized.
    pub fn decode_visible(
        &self,
        codec: &RowCodec,
        buf: &[u8],
        which: Classified,
    ) -> TypeResult<Row> {
        let cols = match which {
            Classified::Current => &self.current_cols,
            Classified::Pre(j) => &self.pre_cols[j],
            Classified::Ignore | Classified::Expired => {
                unreachable!("decode_visible called on an invisible record") // lint: allow(no-panic) — unreachable by construction (see message)
            }
        };
        cols.iter().map(|&c| codec.decode_col(buf, c)).collect()
    }
}

/// Gathered operation codes: the raw `Char(1)` byte widened to `i64`
/// (NULL gathers as [`NULL_SENTINEL`], which matches none of these).
const OP_I: i64 = b'i' as i64;
const OP_U: i64 = b'u' as i64;
const OP_D: i64 = b'd' as i64;

/// One column of the precompiled decode plan: where the bytes live and how
/// to materialize them. Offsets are validated against the record width at
/// plan build, so the per-record decode can skip every bounds check.
#[derive(Debug, Clone, Copy)]
struct ColPlan {
    offset: usize,
    null_byte: usize,
    null_mask: u8,
    ty: DataType,
}

/// Outcome of one batch classification, reused across pages.
#[derive(Debug, Default)]
pub struct BatchClasses {
    /// Per-record Table 1 verdicts, batch order.
    codes: Vec<Classified>,
    /// Selection bitmap: bit `i` set iff record `i` is visible (`Current`
    /// or `Pre`) — the unit the decode stage and the density metric run on.
    select: Vec<u64>,
    /// Number of set bits in `select`.
    selected: usize,
}

impl BatchClasses {
    /// Verdicts in batch order.
    pub fn codes(&self) -> &[Classified] {
        &self.codes
    }

    /// The selection bitmap as 64-bit words, LSB-first.
    pub fn select_words(&self) -> &[u64] {
        &self.select
    }

    /// Number of selected (visible) records.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// Whether record `i` is selected.
    pub fn is_selected(&self, i: usize) -> bool {
        self.select[i / 64] >> (i % 64) & 1 == 1
    }
}

/// Interned strings already live in the pool beyond this point get
/// bypassed rather than evicted: warehouse scans are Zipfian enough that
/// the first `CAP` distinct values cover nearly every row, and a bounded
/// pool keeps a pathological high-cardinality column from ballooning the
/// scan's footprint.
const STR_POOL_CAP: usize = 1 << 12;

/// Per-scan string-interning pool for the batch decode stage: one
/// [`ColPool`] per output column. Warehouse `Char` columns are
/// low-cardinality (cities, states, product lines), so after the first few
/// pages almost every string decode is a pool hit — an `Arc` refcount bump
/// instead of an allocation + copy. The pool is deliberately per-scan (not
/// global): no cross-scan synchronization, and dropping the scan drops the
/// pool.
#[derive(Debug, Default)]
pub struct StrPool {
    cols: Vec<ColPool>,
}

/// One column's interning state: the hash set plus a one-entry run cache.
///
/// The run cache is the fast path that actually pays: heap order clusters
/// equal values (a relation loaded city-by-city keeps the same city for
/// hundreds of consecutive tuples), and it is keyed on the *raw
/// fixed-width slot bytes* — padding included — so a hit is a single
/// memcmp that skips trimming, UTF-8 validation, and hashing entirely.
/// Only runs' first rows fall through to the set.
#[derive(Debug, Default)]
struct ColPool {
    /// Raw slot bytes of the most recent decode through this column.
    last_raw: Vec<u8>,
    last: Option<Arc<str>>,
    set: HashSet<Arc<str>>,
}

impl ColPool {
    /// Intern the string stored in raw slot bytes `raw` (space-padded to
    /// the column width, as `RowCodec` encodes `Char` slots).
    fn intern(&mut self, raw: &[u8]) -> TypeResult<Arc<str>> {
        if let Some(last) = &self.last {
            if self.last_raw.as_slice() == raw {
                return Ok(Arc::clone(last));
            }
        }
        let trimmed = match raw.iter().rposition(|&b| b != b' ') {
            Some(end) => &raw[..=end],
            None => &raw[..0],
        };
        let s = std::str::from_utf8(trimmed).map_err(|e| TypeError::Codec(e.to_string()))?;
        let interned = match self.set.get(s) {
            Some(hit) => Arc::clone(hit),
            None => {
                let fresh: Arc<str> = Arc::from(s);
                if self.set.len() < STR_POOL_CAP {
                    self.set.insert(Arc::clone(&fresh));
                }
                fresh
            }
        };
        self.last_raw.clear();
        self.last_raw.extend_from_slice(raw);
        self.last = Some(Arc::clone(&interned));
        Ok(interned)
    }
}

/// Comparison operator of a pushed-down scan filter. This is the kernel
/// half of predicate pushdown — the planning half (`wh_sql::pushdown`)
/// decides which WHERE conjuncts are eligible and translates their
/// literals into the gathered `i64` domain; the kernel stays free of SQL
/// types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    Lt,
    LtEq,
    Gt,
    GtEq,
    Eq,
    NotEq,
}

impl FilterOp {
    fn eval(self, value: i64, literal: i64) -> bool {
        match self {
            FilterOp::Lt => value < literal,
            FilterOp::LtEq => value <= literal,
            FilterOp::Gt => value > literal,
            FilterOp::GtEq => value >= literal,
            FilterOp::Eq => value == literal,
            FilterOp::NotEq => value != literal,
        }
    }
}

/// One pushed-down comparison: `column <op> literal`, evaluated on the
/// gathered `i64` image of the column's *version-visible* value — the
/// pre-update copy when the record classifies `Pre(j)` and the column is
/// updatable — before any row decode. Records that fail a filter are
/// demoted to [`Classified::Ignore`] in the page verdicts, so they never
/// decode and never reach the executor. The caller guarantees the column
/// gathers losslessly and cannot collide with [`NULL_SENTINEL`] (`UInt8`,
/// `Int32`, `Date` — see `wh_sql::pushdown` for why `Int64` is excluded).
#[derive(Debug, Clone, Copy)]
pub struct ColumnFilter {
    /// Base-schema column index.
    pub column: usize,
    pub op: FilterOp,
    /// Literal in the gathered `i64` domain.
    pub literal: i64,
}

/// A compiled [`ColumnFilter`]: gathered-field index of the column's
/// visible image per verdict — `fields[0]` for `Current`, `fields[1 + j]`
/// for `Pre(j)` (all the same index when the column is not updatable).
#[derive(Debug, Clone)]
struct FilterPlan {
    fields: Vec<usize>,
    op: FilterOp,
    literal: i64,
}

/// Batched Table 1 evaluator over gathered version columns, plus a
/// plan-compiled decoder for the selected records.
///
/// Built once per scan from the same `(ExtLayout, RowCodec)` pair as
/// [`ByteScanner`]; `Sync`, so one instance serves every worker of a
/// parallel scan. The two-phase shape — classify the whole page into a
/// bitmap, then decode only selected records — is what lets full-scan
/// consumers that never materialize rows (`COUNT(*)`, selectivity probes)
/// skip decoding entirely.
#[derive(Debug, Clone)]
pub struct BatchScanner {
    n_slots: usize,
    /// Gather specs handed to the heap: `[vn_0, op_0, vn_1, op_1, …]`.
    specs: Vec<FieldSpec>,
    /// Decode plan per output column, current version; `None` emits NULL
    /// (sparse projection — see [`BatchScanner::new_sparse`]).
    current_plan: Vec<Option<ColPlan>>,
    /// Same, per pre-update slot `j`.
    pre_plans: Vec<Vec<Option<ColPlan>>>,
    /// Compiled pushed-down predicate filters (usually empty).
    filters: Vec<FilterPlan>,
    record_len: usize,
}

impl BatchScanner {
    /// Build a batch scanner over `layout` for records encoded by `codec`.
    /// `projection` lists the base-schema columns to decode, in output
    /// order; `None` decodes the full base row.
    pub fn new(layout: &ExtLayout, codec: &RowCodec, projection: Option<&[usize]>) -> Self {
        let all: Vec<usize>;
        let projected: &[usize] = match projection {
            Some(cols) => cols,
            None => {
                all = (0..layout.base_schema().arity()).collect();
                &all
            }
        };
        Self::build(
            layout,
            codec,
            &projected.iter().map(|&i| (i, true)).collect::<Vec<_>>(),
            &[],
        )
    }

    /// Build a scanner that emits **full base-arity** rows but only decodes
    /// the columns in `needed` — every other column comes back as
    /// `Value::Null`. This is the SQL executor's projection pushdown: the
    /// row shape stays schema-compatible (expressions address columns by
    /// index) while unreferenced columns skip decoding entirely.
    pub fn new_sparse(layout: &ExtLayout, codec: &RowCodec, needed: &[usize]) -> Self {
        Self::new_sparse_filtered(layout, codec, needed, &[])
    }

    /// [`BatchScanner::new_sparse`] with pushed-down predicate filters:
    /// records whose version-visible filter columns fail any filter are
    /// demoted to [`Classified::Ignore`] during classification, before any
    /// decode. Expiration detection is unaffected — an expired tuple still
    /// reports [`Classified::Expired`] whether or not a filter would have
    /// dropped it, matching the scalar pipeline (which extracts before it
    /// filters).
    pub fn new_sparse_filtered(
        layout: &ExtLayout,
        codec: &RowCodec,
        needed: &[usize],
        filters: &[ColumnFilter],
    ) -> Self {
        let cols: Vec<(usize, bool)> = (0..layout.base_schema().arity())
            .map(|i| (i, needed.contains(&i)))
            .collect();
        Self::build(layout, codec, &cols, filters)
    }

    fn build(
        layout: &ExtLayout,
        codec: &RowCodec,
        cols: &[(usize, bool)],
        filters: &[ColumnFilter],
    ) -> Self {
        let record_len = codec.encoded_len();
        let plan_for = |ext_col: usize| -> ColPlan {
            let (offset, width) = codec.col_byte_range(ext_col);
            debug_assert!(offset + width <= record_len && ext_col / 8 < record_len);
            ColPlan {
                offset,
                null_byte: ext_col / 8,
                null_mask: 1 << (ext_col % 8),
                ty: codec.schema().columns()[ext_col].ty,
            }
        };
        let spec_for = |c: usize| {
            let (offset, width) = codec.col_byte_range(c);
            FieldSpec {
                offset,
                width,
                null_byte: c / 8,
                null_mask: 1 << (c % 8),
            }
        };
        let mut specs: Vec<FieldSpec> = (0..layout.slots())
            .flat_map(|j| [layout.vn_col(j), layout.op_col(j)].map(spec_for))
            .collect();
        // Filter columns gather after the version fields: the base image,
        // plus each slot's pre-update copy when the column is updatable
        // (the plan then picks the image matching the record's verdict).
        let filters = filters
            .iter()
            .map(|f| {
                let base_idx = specs.len();
                specs.push(spec_for(layout.base_col(f.column)));
                let mut fields = vec![base_idx];
                match layout.updatable().iter().position(|&u| u == f.column) {
                    Some(u_pos) => {
                        for j in 0..layout.slots() {
                            fields.push(specs.len());
                            specs.push(spec_for(layout.pre_set(j)[u_pos]));
                        }
                    }
                    None => fields.extend(std::iter::repeat_n(base_idx, layout.slots())),
                }
                FilterPlan {
                    fields,
                    op: f.op,
                    literal: f.literal,
                }
            })
            .collect();
        let current_plan = cols
            .iter()
            .map(|&(i, wanted)| wanted.then(|| plan_for(layout.base_col(i))))
            .collect();
        let pre_plans = (0..layout.slots())
            .map(|j| {
                cols.iter()
                    .map(|&(i, wanted)| {
                        wanted.then(|| match layout.updatable().iter().position(|&u| u == i) {
                            Some(u_pos) => plan_for(layout.pre_set(j)[u_pos]),
                            None => plan_for(layout.base_col(i)),
                        })
                    })
                    .collect()
            })
            .collect();
        BatchScanner {
            n_slots: layout.slots(),
            specs,
            current_plan,
            pre_plans,
            filters,
            record_len,
        }
    }

    /// The gather specs to pass to `HeapFile::scan_batches`.
    pub fn specs(&self) -> &[FieldSpec] {
        &self.specs
    }

    /// Classify every record of `batch` — Table 1 / §5 evaluated over the
    /// gathered version columns into `out`. The slot walk is evaluated
    /// with mask/select arithmetic only (no data-dependent branches): a
    /// `contiguous` mask reproduces the scalar path's stop-at-first-empty
    /// rule, and running accumulators carry `j*`, its operation code, and
    /// the oldest recorded VN so no gathered array is indexed by a
    /// data-dependent subscript.
    pub fn classify_batch(
        &self,
        batch: &RecordBatch,
        session_vn: VersionNo,
        out: &mut BatchClasses,
    ) {
        let n = batch.len();
        out.codes.clear();
        out.codes.reserve(n);
        out.select.clear();
        out.select.resize(n.div_ceil(64), 0);
        out.selected = 0;
        let fields: Vec<&[i64]> = (0..self.specs.len())
            .map(|f| &batch.field(f)[..n])
            .collect();
        // Version numbers are 32-bit on disk, so widening the session VN to
        // the gathered i64 domain is lossless.
        let session_vn = session_vn as i64;
        // `i` is a *row* subscript applied to every column-strided slice in
        // `fields`; iterating `fields` itself (clippy's suggestion) would
        // conflate the field axis with the row axis.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let vn1 = fields[0][i];
            let op1 = fields[1][i];
            debug_assert!(vn1 != NULL_SENTINEL, "slot 0 is populated for live tuples");
            let code = if session_vn >= vn1 {
                // Case 1: at or past the newest modification.
                if op1 == OP_D {
                    Classified::Ignore
                } else {
                    Classified::Current
                }
            } else {
                // Case 2/3: walk the older slots branch-free.
                let mut contiguous = true;
                let mut oldest = 0usize;
                let mut vn_oldest = vn1;
                let mut j_star = 0usize;
                let mut op_star = op1;
                for j in 1..self.n_slots {
                    let vn_j = fields[2 * j][i];
                    let op_j = fields[2 * j + 1][i];
                    let valid =
                        vn_j != NULL_SENTINEL && (op_j == OP_I || op_j == OP_U || op_j == OP_D);
                    let recorded = contiguous & valid;
                    contiguous = recorded;
                    oldest = if recorded { j } else { oldest };
                    vn_oldest = if recorded { vn_j } else { vn_oldest };
                    let newer = recorded & (vn_j > session_vn);
                    j_star = if newer { j } else { j_star };
                    op_star = if newer { op_j } else { op_star };
                }
                let slots_full = oldest == self.n_slots - 1;
                if slots_full && j_star == oldest && session_vn + 1 < vn_oldest {
                    Classified::Expired
                } else if op_star == OP_I {
                    Classified::Ignore
                } else {
                    Classified::Pre(j_star)
                }
            };
            // Pushed-down predicate filters: a *visible* record whose
            // version-visible filter image fails any filter (or is NULL —
            // the SQL conjunct would be unknown, not TRUE) is demoted to
            // Ignore before decode. Expired stays Expired: expiration is a
            // visibility fact, and the scalar pipeline raises it before
            // its executor ever sees the predicate.
            let code = match code {
                Classified::Current | Classified::Pre(_) if !self.filters.is_empty() => {
                    let image = match code {
                        Classified::Pre(j) => 1 + j,
                        _ => 0,
                    };
                    let pass = self.filters.iter().all(|f| {
                        let v = fields[f.fields[image]][i];
                        v != NULL_SENTINEL && f.op.eval(v, f.literal)
                    });
                    if pass {
                        code
                    } else {
                        Classified::Ignore
                    }
                }
                other => other,
            };
            if matches!(code, Classified::Current | Classified::Pre(_)) {
                out.select[i / 64] |= 1u64 << (i % 64);
                out.selected += 1;
            }
            out.codes.push(code);
        }
    }

    /// A fresh interning pool sized to this scanner's output arity. One
    /// pool per scan, reused across batches, so pooled strings survive
    /// page boundaries and the hit rate climbs as the scan proceeds.
    pub fn new_pool(&self) -> StrPool {
        StrPool {
            cols: (0..self.current_plan.len())
                .map(|_| ColPool::default())
                .collect(),
        }
    }

    /// Decode record `i` of `batch` through the precompiled plan for its
    /// verdict (`Current` or `Pre(j)`). Column bytes are read without
    /// bounds checks — the plan was validated against the record width at
    /// build — but value-level checks (UTF-8, date validity) stay. String
    /// columns are interned through `pool` (from [`BatchScanner::new_pool`]).
    pub fn decode_visible(
        &self,
        batch: &RecordBatch,
        i: usize,
        which: Classified,
        pool: &mut StrPool,
    ) -> TypeResult<Row> {
        let plan = match which {
            Classified::Current => &self.current_plan,
            Classified::Pre(j) => &self.pre_plans[j],
            Classified::Ignore | Classified::Expired => {
                unreachable!("decode_visible called on an invisible record") // lint: allow(no-panic) — unreachable by construction (see message)
            }
        };
        let rec = batch.record(i);
        debug_assert_eq!(rec.len(), self.record_len);
        plan.iter()
            .zip(pool.cols.iter_mut())
            .map(|(col, pool)| match col {
                None => Ok(Value::Null),
                Some(p) => decode_planned(p, rec, pool),
            })
            .collect()
    }
}

/// Decode one planned column from a record image. The caller guarantees
/// `rec.len()` equals the record width the plan was built against.
fn decode_planned(p: &ColPlan, rec: &[u8], pool: &mut ColPool) -> TypeResult<Value> {
    // safety: ColPlan offsets were checked against the record width when
    // the plan was built (`debug_assert` in `build`, and `col_byte_range`
    // derives them from the same codec that produced the record), so every
    // read below is in bounds.
    unsafe {
        if rec.get_unchecked(p.null_byte) & p.null_mask != 0 {
            return Ok(Value::Null);
        }
        let ptr = rec.as_ptr().add(p.offset);
        Ok(match p.ty {
            DataType::UInt8 => Value::Int(i64::from(*ptr)),
            DataType::Int32 => Value::Int(i64::from(i32::from_le_bytes(std::ptr::read_unaligned(
                ptr as *const [u8; 4],
            )))),
            DataType::Int64 => Value::Int(i64::from_le_bytes(std::ptr::read_unaligned(
                ptr as *const [u8; 8],
            ))),
            DataType::Float64 => Value::Float(f64::from_le_bytes(std::ptr::read_unaligned(
                ptr as *const [u8; 8],
            ))),
            DataType::Char(len) => {
                let raw = std::slice::from_raw_parts(ptr, len);
                Value::Str(pool.intern(raw)?)
            }
            DataType::Date => {
                let packed = u32::from_le_bytes(std::ptr::read_unaligned(ptr as *const [u8; 4]));
                Value::Date(
                    Date::from_packed(packed)
                        .ok_or_else(|| TypeError::Codec(format!("bad date {packed}")))?,
                )
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::{extract, Visible};
    use wh_types::rng::SplitMix64;
    use wh_types::schema::daily_sales_schema;
    use wh_types::{Date, Value};

    fn layout(n: usize) -> ExtLayout {
        ExtLayout::new(daily_sales_schema(), n).unwrap()
    }

    fn codec(l: &ExtLayout) -> RowCodec {
        RowCodec::new(l.ext_schema().clone())
    }

    /// Run one encoded record through the batch pipeline (a real one-page
    /// heap and `scan_batches`) and return the batch verdict plus the
    /// decoded row when visible.
    fn batch_verdict(
        scanner: &BatchScanner,
        buf: &[u8],
        vn: VersionNo,
    ) -> (Classified, Option<Row>) {
        use std::sync::Arc;
        use wh_storage::{HeapFile, IoStats};
        let heap = HeapFile::new(buf.len(), Arc::new(IoStats::new())).unwrap();
        heap.insert(buf).unwrap();
        let mut classes = BatchClasses::default();
        let mut verdict = None;
        heap.scan_batches(0..1, scanner.specs(), |batch| {
            assert_eq!(batch.len(), 1);
            scanner.classify_batch(batch, vn, &mut classes);
            let code = classes.codes()[0];
            assert_eq!(
                classes.is_selected(0),
                matches!(code, Classified::Current | Classified::Pre(_)),
                "bitmap disagrees with verdict"
            );
            assert_eq!(classes.selected(), usize::from(classes.is_selected(0)));
            let mut pool = scanner.new_pool();
            let row = classes
                .is_selected(0)
                .then(|| scanner.decode_visible(batch, 0, code, &mut pool).unwrap());
            verdict = Some((code, row));
            Ok(())
        })
        .unwrap();
        verdict.unwrap()
    }

    /// Assert the byte path *and* the batch path agree with the reference
    /// `extract` for one extended row across a range of session versions.
    fn assert_agrees(l: &ExtLayout, ext: &Row, vns: impl Iterator<Item = VersionNo>) {
        let c = codec(l);
        let scanner = ByteScanner::new(l, &c, None);
        let batched = BatchScanner::new(l, &c, None);
        let buf = c.encode(ext).unwrap();
        for vn in vns {
            let reference = extract(l, ext, vn);
            let classified = scanner.classify(&buf, vn);
            let (batch_code, batch_row) = batch_verdict(&batched, &buf, vn);
            assert_eq!(
                classified, batch_code,
                "batch verdict diverges from byte path at sessionVN {vn}"
            );
            match (&reference, classified) {
                (Visible::Ignore, Classified::Ignore) => {}
                (Visible::Expired, Classified::Expired) => {}
                (Visible::Row(want), which @ (Classified::Current | Classified::Pre(_))) => {
                    let got = scanner.decode_visible(&c, &buf, which).unwrap();
                    assert_eq!(&got, want, "row mismatch at sessionVN {vn}");
                    assert_eq!(
                        batch_row.as_ref(),
                        Some(want),
                        "batch decode mismatch at sessionVN {vn}"
                    );
                }
                _ => panic!("vn {vn}: reference {reference:?} vs byte path {classified:?}"),
            }
        }
    }

    fn row2(vn: i64, op: &str, city: &str, pl: &str, day: u8, sales: Value, pre: Value) -> Row {
        vec![
            Value::from(vn),
            Value::from(op),
            Value::from(city),
            Value::from("CA"),
            Value::from(pl),
            Value::from(Date::ymd(1996, 10, day)),
            sales,
            pre,
        ]
    }

    #[test]
    fn byte_path_matches_reference_on_figure_4() {
        let l = layout(2);
        let rows = vec![
            row2(
                3,
                "i",
                "San Jose",
                "golf equip",
                14,
                Value::from(10_000),
                Value::Null,
            ),
            row2(
                4,
                "i",
                "San Jose",
                "golf equip",
                15,
                Value::from(1_500),
                Value::Null,
            ),
            row2(
                4,
                "u",
                "Berkeley",
                "racquetball",
                14,
                Value::from(12_000),
                Value::from(10_000),
            ),
            row2(
                4,
                "d",
                "Novato",
                "rollerblades",
                13,
                Value::from(8_000),
                Value::from(8_000),
            ),
        ];
        for ext in &rows {
            assert_agrees(&l, ext, 0..8);
        }
    }

    #[test]
    fn byte_path_matches_reference_on_figure_7() {
        // Figure 7 under 4VNL: insert at VN 3, update at VN 5, delete at VN 6.
        let l = layout(4);
        let mut ext = vec![Value::Null; l.ext_schema().arity()];
        for (i, v) in [
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(10_200),
        ]
        .into_iter()
        .enumerate()
        {
            ext[l.base_col(i)] = v;
        }
        let slots = [
            (6i64, "d", Value::from(10_200)),
            (5, "u", Value::from(10_000)),
            (3, "i", Value::Null),
        ];
        for (j, (vn, op, pre)) in slots.into_iter().enumerate() {
            ext[l.vn_col(j)] = Value::from(vn);
            ext[l.op_col(j)] = Value::from(op);
            ext[l.pre_set(j)[0]] = pre;
        }
        assert_agrees(&l, &ext, 0..10);
    }

    #[test]
    fn byte_path_matches_reference_on_random_histories() {
        // Randomized tuple histories under n ∈ {2, 3, 4}: build a plausible
        // slot stack (descending VNs, newest first, oldest may be an insert)
        // and check every sessionVN around it.
        let mut rng = SplitMix64::seed_from_u64(0xB17E_5CA1);
        for _ in 0..200 {
            let n = 2 + rng.index(3);
            let l = layout(n);
            let mut ext = vec![Value::Null; l.ext_schema().arity()];
            for (i, v) in [
                Value::from("City"),
                Value::from("CA"),
                Value::from("pl"),
                Value::from(Date::ymd(1996, 10, 1)),
                Value::from(rng.range_i64(0, 100_000)),
            ]
            .into_iter()
            .enumerate()
            {
                ext[l.base_col(i)] = v;
            }
            let filled = 1 + rng.index(l.slots());
            let mut vn = 2 + rng.range_i64(0, 20);
            for j in 0..filled {
                let op = match rng.index(3) {
                    0 if j + 1 == filled => "i", // oldest slot may be the birth
                    0 => "u",
                    1 => "u",
                    _ => "d",
                };
                ext[l.vn_col(j)] = Value::from(vn);
                ext[l.op_col(j)] = Value::from(op);
                if op != "i" {
                    ext[l.pre_set(j)[0]] = Value::from(rng.range_i64(0, 100_000));
                }
                vn -= 1 + rng.range_i64(0, 4);
                if vn < 1 {
                    break;
                }
            }
            assert_agrees(&l, &ext, 0..30);
        }
    }

    #[test]
    fn projection_decodes_only_requested_columns() {
        let l = layout(2);
        let c = codec(&l);
        // Project (total_sales, city) — reversed order, updatable + not.
        let scanner = ByteScanner::new(&l, &c, Some(&[4, 0]));
        let current = row2(
            4,
            "u",
            "Berkeley",
            "racquetball",
            14,
            Value::from(12_000),
            Value::from(10_000),
        );
        let buf = c.encode(&current).unwrap();
        // Current view: post-update total_sales.
        let got = scanner
            .decode_visible(&c, &buf, Classified::Current)
            .unwrap();
        assert_eq!(got, vec![Value::from(12_000), Value::from("Berkeley")]);
        // Pre-update view: the updatable column swaps to its pre copy.
        assert_eq!(scanner.classify(&buf, 3), Classified::Pre(0));
        let got = scanner
            .decode_visible(&c, &buf, Classified::Pre(0))
            .unwrap();
        assert_eq!(got, vec![Value::from(10_000), Value::from("Berkeley")]);
    }

    #[test]
    fn batch_classify_mixes_verdicts_across_one_page() {
        // All four Figure 4 rows in one batch: at sessionVN 3 the batch
        // must select rows 0, 2 and 3 (row 1 is pre-insert).
        use std::sync::Arc;
        use wh_storage::{HeapFile, IoStats};
        let l = layout(2);
        let c = codec(&l);
        let batched = BatchScanner::new(&l, &c, None);
        let rows = vec![
            row2(
                3,
                "i",
                "San Jose",
                "golf equip",
                14,
                Value::from(10_000),
                Value::Null,
            ),
            row2(
                4,
                "i",
                "San Jose",
                "golf equip",
                15,
                Value::from(1_500),
                Value::Null,
            ),
            row2(
                4,
                "u",
                "Berkeley",
                "racquetball",
                14,
                Value::from(12_000),
                Value::from(10_000),
            ),
            row2(
                4,
                "d",
                "Novato",
                "rollerblades",
                13,
                Value::from(8_000),
                Value::from(8_000),
            ),
        ];
        let heap = HeapFile::new(c.encoded_len(), Arc::new(IoStats::new())).unwrap();
        for r in &rows {
            heap.insert(&c.encode(r).unwrap()).unwrap();
        }
        let mut classes = BatchClasses::default();
        heap.scan_batches(0..1, batched.specs(), |batch| {
            batched.classify_batch(batch, 3, &mut classes);
            assert_eq!(
                classes.codes(),
                &[
                    Classified::Current,
                    Classified::Ignore,
                    Classified::Pre(0),
                    Classified::Pre(0),
                ]
            );
            assert_eq!(classes.selected(), 3);
            assert_eq!(classes.select_words(), &[0b1101]);
            let mut pool = batched.new_pool();
            let visible: Vec<Row> = (0..batch.len())
                .filter(|&i| classes.is_selected(i))
                .map(|i| {
                    batched
                        .decode_visible(batch, i, classes.codes()[i], &mut pool)
                        .unwrap()
                })
                .collect();
            // Example 3.2's result set, decoded straight off the batch.
            assert_eq!(visible[0][0], Value::from("San Jose"));
            assert_eq!(visible[1][4], Value::from(10_000), "pre-update value");
            assert_eq!(visible[2][4], Value::from(8_000), "pre-delete value");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn pushed_filters_demote_failing_rows_before_decode() {
        // Filter on the *updatable* total_sales column: the kernel must
        // test the version-visible image — the pre-update copy for Pre(0)
        // records — and treat a NULL image as a failed (unknown) conjunct.
        use std::sync::Arc;
        use wh_storage::{HeapFile, IoStats};
        let l = layout(2);
        let c = codec(&l);
        let filter = ColumnFilter {
            column: 4,
            op: FilterOp::GtEq,
            literal: 9_000,
        };
        let scanner = BatchScanner::new_sparse_filtered(&l, &c, &[0, 4], &[filter]);
        let rows = vec![
            // Current at sessionVN 3, current value passes.
            row2(
                3,
                "i",
                "San Jose",
                "golf equip",
                14,
                Value::from(10_000),
                Value::Null,
            ),
            // Current, current value fails.
            row2(
                3,
                "i",
                "Vallejo",
                "golf equip",
                15,
                Value::from(1_500),
                Value::Null,
            ),
            // Pre(0) at sessionVN 3: pre-update copy 8000 fails even though
            // the current value 12000 would pass.
            row2(
                4,
                "u",
                "Berkeley",
                "racquetball",
                14,
                Value::from(12_000),
                Value::from(8_000),
            ),
            // Pre(0): pre-update copy 9500 passes even though the current
            // value 500 would fail.
            row2(
                4,
                "u",
                "Novato",
                "rollerblades",
                13,
                Value::from(500),
                Value::from(9_500),
            ),
            // Current with a NULL image: the conjunct is unknown, so the
            // row is filtered out.
            row2(
                3,
                "i",
                "Alameda",
                "golf equip",
                16,
                Value::Null,
                Value::Null,
            ),
        ];
        let heap = HeapFile::new(c.encoded_len(), Arc::new(IoStats::new())).unwrap();
        for r in &rows {
            heap.insert(&c.encode(r).unwrap()).unwrap();
        }
        let mut classes = BatchClasses::default();
        heap.scan_batches(0..1, scanner.specs(), |batch| {
            scanner.classify_batch(batch, 3, &mut classes);
            assert_eq!(
                classes.codes(),
                &[
                    Classified::Current,
                    Classified::Ignore,
                    Classified::Ignore,
                    Classified::Pre(0),
                    Classified::Ignore,
                ]
            );
            assert_eq!(classes.selected(), 2);
            let mut pool = scanner.new_pool();
            let kept: Vec<Row> = (0..batch.len())
                .filter(|&i| classes.is_selected(i))
                .map(|i| {
                    scanner
                        .decode_visible(batch, i, classes.codes()[i], &mut pool)
                        .unwrap()
                })
                .collect();
            assert_eq!(kept[0][0], Value::from("San Jose"));
            assert_eq!(kept[0][4], Value::from(10_000));
            assert_eq!(kept[1][0], Value::from("Novato"));
            assert_eq!(kept[1][4], Value::from(9_500), "pre-update image decoded");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn pushed_filter_on_date_column_uses_packed_order() {
        // sale_date is not updatable, so every verdict reads the same base
        // image; the packed yyyymmdd encoding must preserve calendar order.
        let l = layout(2);
        let c = codec(&l);
        let filter = ColumnFilter {
            column: 3,
            op: FilterOp::LtEq,
            literal: i64::from(Date::ymd(1996, 10, 14).to_packed()),
        };
        let scanner = BatchScanner::new_sparse_filtered(&l, &c, &[0, 3], &[filter]);
        let on_cutoff = row2(
            3,
            "i",
            "San Jose",
            "golf equip",
            14,
            Value::from(1),
            Value::Null,
        );
        let after = row2(
            3,
            "i",
            "San Jose",
            "golf equip",
            15,
            Value::from(1),
            Value::Null,
        );
        let (code, row) = batch_verdict(&scanner, &c.encode(&on_cutoff).unwrap(), 3);
        assert_eq!(code, Classified::Current);
        assert_eq!(row.unwrap()[3], Value::from(Date::ymd(1996, 10, 14)));
        let (code, row) = batch_verdict(&scanner, &c.encode(&after).unwrap(), 3);
        assert_eq!(code, Classified::Ignore);
        assert!(row.is_none());
    }

    #[test]
    fn pushed_filters_do_not_mask_expiration() {
        // A tuple whose needed version was pushed out must still classify
        // Expired even when a filter would have rejected it — the scalar
        // pipeline raises expiration before its executor sees a predicate.
        let l = layout(2);
        let c = codec(&l);
        let filter = ColumnFilter {
            column: 4,
            op: FilterOp::GtEq,
            literal: i64::MAX,
        };
        let scanner = BatchScanner::new_sparse_filtered(&l, &c, &[4], &[filter]);
        // sessionVN 3 needs a version older than the recorded vn 5 allows
        // (session_vn + 1 < vn_oldest with the slot set full).
        let expired = row2(
            5,
            "u",
            "San Jose",
            "golf equip",
            14,
            Value::from(1),
            Value::from(2),
        );
        let (code, row) = batch_verdict(&scanner, &c.encode(&expired).unwrap(), 3);
        assert_eq!(code, Classified::Expired);
        assert!(row.is_none());
    }

    #[test]
    fn sparse_plan_decodes_needed_columns_full_arity() {
        let l = layout(2);
        let c = codec(&l);
        // Need only city (0) and total_sales (4): full-arity rows with
        // NULLs in the unneeded positions.
        let sparse = BatchScanner::new_sparse(&l, &c, &[0, 4]);
        let current = row2(
            4,
            "u",
            "Berkeley",
            "racquetball",
            14,
            Value::from(12_000),
            Value::from(10_000),
        );
        let buf = c.encode(&current).unwrap();
        let (code, row) = batch_verdict(&sparse, &buf, 4);
        assert_eq!(code, Classified::Current);
        assert_eq!(
            row.unwrap(),
            vec![
                Value::from("Berkeley"),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::from(12_000),
            ]
        );
        // Pre-update view swaps the updatable needed column to its pre copy.
        let (code, row) = batch_verdict(&sparse, &buf, 3);
        assert_eq!(code, Classified::Pre(0));
        assert_eq!(row.unwrap()[4], Value::from(10_000));
    }
}
