//! Byte-level visibility scans: Table 1 evaluated on encoded records.
//!
//! [`crate::visibility::extract`] is the reference implementation of Table 1
//! (§3.2) and its nVNL generalization (§5), but it requires a fully decoded
//! extended row. On the reader hot path that is wasteful twice over: most
//! tuples in a scan resolve to *current* visibility (no maintenance touched
//! them since the session began), yet every tuple pays full-row decode —
//! including the `n − 1` pre-update sets the session will never look at —
//! and a query usually projects a handful of columns anyway.
//!
//! [`ByteScanner`] fixes both. The extended row codec stores every column at
//! a fixed byte offset (`wh_types::RowCodec::col_byte_range`), so the
//! `(tupleVN_j, operation_j)` pairs can be read straight out of the encoded
//! record: 4 little-endian bytes for the version number, 1 byte for the
//! operation code, and one null-bitmap bit per column for slot occupancy.
//! [`ByteScanner::classify`] runs the *entire* Table 1 decision on those
//! bytes and only then does [`ByteScanner::decode_visible`] materialize the
//! columns the caller asked for — invisible tuples are skipped before any
//! decoding happens, and visible ones decode exactly the projected columns
//! (pre-update columns are substituted per Table 1's note when the session
//! reads a pre-update version).
//!
//! The classifier mirrors `extract` case by case; the
//! `byte_path_matches_reference` tests below lock the two together on the
//! paper's fixtures (Figure 4, Figure 7) and on randomized histories.

use crate::schema_ext::ExtLayout;
use crate::version::{Operation, VersionNo};
use wh_types::{Row, RowCodec, TypeResult};

/// Outcome of the byte-level Table 1 test for one encoded record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classified {
    /// The session sees the tuple's current attribute values.
    Current,
    /// The session sees the pre-update version recorded in slot `j`.
    Pre(usize),
    /// The tuple is logically absent at the session's version.
    Ignore,
    /// Case 3: the version the session needs was pushed out of the tuple.
    Expired,
}

/// Byte offsets of one `(tupleVN_j, operation_j)` pair.
#[derive(Debug, Clone, Copy)]
struct SlotProbe {
    /// Offset of the 4-byte little-endian `tupleVN_j` (Int32) slot.
    vn_off: usize,
    /// Offset of the 1-byte `operation_j` (Char(1)) slot.
    op_off: usize,
    /// Null-bitmap (byte, mask) of the `tupleVN_j` column.
    vn_null: (usize, u8),
    /// Null-bitmap (byte, mask) of the `operation_j` column.
    op_null: (usize, u8),
}

/// Precomputed byte-level visibility classifier + projecting decoder for one
/// `(ExtLayout, RowCodec)` pair. Cheap to build per scan; `Sync`, so one
/// instance serves every worker of a parallel scan.
#[derive(Debug, Clone)]
pub struct ByteScanner {
    slots: Vec<SlotProbe>,
    /// Extended column index per projected output column, current version.
    current_cols: Vec<usize>,
    /// Same, per pre-update slot `j` (updatable columns swapped for their
    /// `pre_…_j` copies — Table 1's "pre-update values" note).
    pre_cols: Vec<Vec<usize>>,
}

fn null_bit(col: usize) -> (usize, u8) {
    (col / 8, 1 << (col % 8))
}

impl ByteScanner {
    /// Build a scanner over `layout` for records encoded by `codec` (the
    /// extended-schema codec). `projection` lists the base-schema columns to
    /// decode, in output order; `None` decodes the full base row.
    pub fn new(layout: &ExtLayout, codec: &RowCodec, projection: Option<&[usize]>) -> Self {
        let slots = (0..layout.slots())
            .map(|j| {
                let vn_col = layout.vn_col(j);
                let op_col = layout.op_col(j);
                SlotProbe {
                    vn_off: codec.col_byte_range(vn_col).0,
                    op_off: codec.col_byte_range(op_col).0,
                    vn_null: null_bit(vn_col),
                    op_null: null_bit(op_col),
                }
            })
            .collect();
        let all: Vec<usize>;
        let projected: &[usize] = match projection {
            Some(cols) => cols,
            None => {
                all = (0..layout.base_schema().arity()).collect();
                &all
            }
        };
        let current_cols: Vec<usize> = projected.iter().map(|&i| layout.base_col(i)).collect();
        let pre_cols = (0..layout.slots())
            .map(|j| {
                projected
                    .iter()
                    .map(|&i| match layout.updatable().iter().position(|&u| u == i) {
                        Some(u_pos) => layout.pre_set(j)[u_pos],
                        None => layout.base_col(i),
                    })
                    .collect()
            })
            .collect();
        ByteScanner {
            slots,
            current_cols,
            pre_cols,
        }
    }

    /// Read slot `j`'s `(tupleVN, operation)` from the encoded record;
    /// `None` when the slot is empty (either column NULL) — the byte twin of
    /// [`ExtLayout::slot`].
    fn slot(&self, buf: &[u8], j: usize) -> Option<(VersionNo, Operation)> {
        let p = &self.slots[j];
        if buf[p.vn_null.0] & p.vn_null.1 != 0 || buf[p.op_null.0] & p.op_null.1 != 0 {
            return None;
        }
        let vn = i32::from_le_bytes(buf[p.vn_off..p.vn_off + 4].try_into().unwrap()); // lint: allow(no-panic) — infallible: fixed-width slice
        let op = match buf[p.op_off] {
            b'i' => Operation::Insert,
            b'u' => Operation::Update,
            b'd' => Operation::Delete,
            _ => return None,
        };
        Some((vn as i64 as VersionNo, op))
    }

    /// Table 1 / §5 on the encoded record — the byte twin of
    /// [`crate::visibility::extract`], case for case.
    pub fn classify(&self, buf: &[u8], session_vn: VersionNo) -> Classified {
        let (vn1, op1) = self
            .slot(buf, 0)
            .expect("slot 0 is always populated for live tuples"); // lint: allow(no-panic) — invariant documented in the expect message
                                                                   // Case 1: the session is at or past the tuple's newest modification.
        if session_vn >= vn1 {
            return match op1 {
                Operation::Delete => Classified::Ignore,
                _ => Classified::Current,
            };
        }
        // Case 2: find j* = the oldest recorded slot with tupleVN_j > sessionVN.
        let mut j_star = 0;
        let mut oldest_recorded = 0;
        for j in 1..self.slots.len() {
            match self.slot(buf, j) {
                Some((vn_j, _)) => {
                    oldest_recorded = j;
                    if vn_j > session_vn {
                        j_star = j;
                    }
                }
                None => break,
            }
        }
        // Case 3: expired — all slots full, and the session predates even
        // the oldest recorded pre-update version's validity window.
        let slots_full = oldest_recorded == self.slots.len() - 1;
        if slots_full && j_star == oldest_recorded {
            let (vn_oldest, _) = self.slot(buf, oldest_recorded).expect("recorded"); // lint: allow(no-panic) — invariant documented in the expect message
            if session_vn + 1 < vn_oldest {
                return Classified::Expired;
            }
        }
        let (_, op_j) = self.slot(buf, j_star).expect("j* is recorded"); // lint: allow(no-panic) — invariant documented in the expect message
        match op_j {
            Operation::Insert => Classified::Ignore,
            _ => Classified::Pre(j_star),
        }
    }

    /// Decode the projected columns of a record already classified visible
    /// (`Current` or `Pre(j)`); only those columns are materialized.
    pub fn decode_visible(
        &self,
        codec: &RowCodec,
        buf: &[u8],
        which: Classified,
    ) -> TypeResult<Row> {
        let cols = match which {
            Classified::Current => &self.current_cols,
            Classified::Pre(j) => &self.pre_cols[j],
            Classified::Ignore | Classified::Expired => {
                unreachable!("decode_visible called on an invisible record") // lint: allow(no-panic) — unreachable by construction (see message)
            }
        };
        cols.iter().map(|&c| codec.decode_col(buf, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::{extract, Visible};
    use wh_types::rng::SplitMix64;
    use wh_types::schema::daily_sales_schema;
    use wh_types::{Date, Value};

    fn layout(n: usize) -> ExtLayout {
        ExtLayout::new(daily_sales_schema(), n).unwrap()
    }

    fn codec(l: &ExtLayout) -> RowCodec {
        RowCodec::new(l.ext_schema().clone())
    }

    /// Assert the byte path agrees with the reference `extract` for one
    /// extended row across a range of session versions.
    fn assert_agrees(l: &ExtLayout, ext: &Row, vns: impl Iterator<Item = VersionNo>) {
        let c = codec(l);
        let scanner = ByteScanner::new(l, &c, None);
        let buf = c.encode(ext).unwrap();
        for vn in vns {
            let reference = extract(l, ext, vn);
            let classified = scanner.classify(&buf, vn);
            match (&reference, classified) {
                (Visible::Ignore, Classified::Ignore) => {}
                (Visible::Expired, Classified::Expired) => {}
                (Visible::Row(want), which @ (Classified::Current | Classified::Pre(_))) => {
                    let got = scanner.decode_visible(&c, &buf, which).unwrap();
                    assert_eq!(&got, want, "row mismatch at sessionVN {vn}");
                }
                _ => panic!("vn {vn}: reference {reference:?} vs byte path {classified:?}"),
            }
        }
    }

    fn row2(vn: i64, op: &str, city: &str, pl: &str, day: u8, sales: Value, pre: Value) -> Row {
        vec![
            Value::from(vn),
            Value::from(op),
            Value::from(city),
            Value::from("CA"),
            Value::from(pl),
            Value::from(Date::ymd(1996, 10, day)),
            sales,
            pre,
        ]
    }

    #[test]
    fn byte_path_matches_reference_on_figure_4() {
        let l = layout(2);
        let rows = vec![
            row2(
                3,
                "i",
                "San Jose",
                "golf equip",
                14,
                Value::from(10_000),
                Value::Null,
            ),
            row2(
                4,
                "i",
                "San Jose",
                "golf equip",
                15,
                Value::from(1_500),
                Value::Null,
            ),
            row2(
                4,
                "u",
                "Berkeley",
                "racquetball",
                14,
                Value::from(12_000),
                Value::from(10_000),
            ),
            row2(
                4,
                "d",
                "Novato",
                "rollerblades",
                13,
                Value::from(8_000),
                Value::from(8_000),
            ),
        ];
        for ext in &rows {
            assert_agrees(&l, ext, 0..8);
        }
    }

    #[test]
    fn byte_path_matches_reference_on_figure_7() {
        // Figure 7 under 4VNL: insert at VN 3, update at VN 5, delete at VN 6.
        let l = layout(4);
        let mut ext = vec![Value::Null; l.ext_schema().arity()];
        for (i, v) in [
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(10_200),
        ]
        .into_iter()
        .enumerate()
        {
            ext[l.base_col(i)] = v;
        }
        let slots = [
            (6i64, "d", Value::from(10_200)),
            (5, "u", Value::from(10_000)),
            (3, "i", Value::Null),
        ];
        for (j, (vn, op, pre)) in slots.into_iter().enumerate() {
            ext[l.vn_col(j)] = Value::from(vn);
            ext[l.op_col(j)] = Value::from(op);
            ext[l.pre_set(j)[0]] = pre;
        }
        assert_agrees(&l, &ext, 0..10);
    }

    #[test]
    fn byte_path_matches_reference_on_random_histories() {
        // Randomized tuple histories under n ∈ {2, 3, 4}: build a plausible
        // slot stack (descending VNs, newest first, oldest may be an insert)
        // and check every sessionVN around it.
        let mut rng = SplitMix64::seed_from_u64(0xB17E_5CA1);
        for _ in 0..200 {
            let n = 2 + rng.index(3);
            let l = layout(n);
            let mut ext = vec![Value::Null; l.ext_schema().arity()];
            for (i, v) in [
                Value::from("City"),
                Value::from("CA"),
                Value::from("pl"),
                Value::from(Date::ymd(1996, 10, 1)),
                Value::from(rng.range_i64(0, 100_000)),
            ]
            .into_iter()
            .enumerate()
            {
                ext[l.base_col(i)] = v;
            }
            let filled = 1 + rng.index(l.slots());
            let mut vn = 2 + rng.range_i64(0, 20);
            for j in 0..filled {
                let op = match rng.index(3) {
                    0 if j + 1 == filled => "i", // oldest slot may be the birth
                    0 => "u",
                    1 => "u",
                    _ => "d",
                };
                ext[l.vn_col(j)] = Value::from(vn);
                ext[l.op_col(j)] = Value::from(op);
                if op != "i" {
                    ext[l.pre_set(j)[0]] = Value::from(rng.range_i64(0, 100_000));
                }
                vn -= 1 + rng.range_i64(0, 4);
                if vn < 1 {
                    break;
                }
            }
            assert_agrees(&l, &ext, 0..30);
        }
    }

    #[test]
    fn projection_decodes_only_requested_columns() {
        let l = layout(2);
        let c = codec(&l);
        // Project (total_sales, city) — reversed order, updatable + not.
        let scanner = ByteScanner::new(&l, &c, Some(&[4, 0]));
        let current = row2(
            4,
            "u",
            "Berkeley",
            "racquetball",
            14,
            Value::from(12_000),
            Value::from(10_000),
        );
        let buf = c.encode(&current).unwrap();
        // Current view: post-update total_sales.
        let got = scanner
            .decode_visible(&c, &buf, Classified::Current)
            .unwrap();
        assert_eq!(got, vec![Value::from(12_000), Value::from("Berkeley")]);
        // Pre-update view: the updatable column swaps to its pre copy.
        assert_eq!(scanner.classify(&buf, 3), Classified::Pre(0));
        let got = scanner
            .decode_visible(&c, &buf, Classified::Pre(0))
            .unwrap();
        assert_eq!(got, vec![Value::from(10_000), Value::from("Berkeley")]);
    }
}
