//! Deterministic crash-matrix driver (compiled only under `failpoints`).
//!
//! Sweeps **every registered failpoint × every maintenance operation type**:
//! each cell builds a fresh table with a scripted committed history, arms
//! one failpoint, runs one operation script, "crashes" (the transaction is
//! forgotten — its in-memory undo map is lost, exactly what a process crash
//! loses), disarms, runs [`recover`], and asserts that every session version
//! inside the exactness window reads exactly the reference state. Each cell
//! also re-runs recovery to prove idempotence and asserts that zero log
//! records were written.
//!
//! The driver is a library module (not test-only code) so both the
//! `crash_recovery` integration test and the `report_fault` bench binary
//! share it. Cells panic on divergence; a completed sweep *is* the proof.
//!
//! The fault registry is process-global: callers running cells from
//! multiple tests in one binary must serialize them.
//!
//! [`recover`]: crate::recovery::recover

// lint: allow-file(no-panic) — the crash matrix is a test driver compiled
// only under the failpoints feature: cells panic on oracle divergence (a
// completed sweep is the proof) and scripted setup uses unwrap freely.
use crate::durable::{self, DiskRecoveryReport};
use crate::gc;
use crate::recovery::{self, RecoveryReport};
use crate::table::VnlTable;
use crate::visibility;
use crate::Visible;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use wh_types::fault::{self, FaultAction, PointStats};
use wh_types::{Column, DataType, Schema, Value};

/// Every failpoint compiled into the workspace: storage, vnl, and lock
/// manager catalogs.
pub fn catalog() -> Vec<&'static str> {
    let mut all = Vec::new();
    all.extend_from_slice(wh_storage::FAILPOINTS);
    all.extend_from_slice(crate::FAILPOINTS);
    all.extend_from_slice(wh_cc::FAILPOINTS);
    all
}

/// The maintenance operation type a cell crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Fresh insert plus a resurrecting insert.
    Insert,
    /// First-touch updates plus a same-transaction repeat update.
    Update,
    /// Logical delete, update∘delete, and insert∘delete chains.
    Delete,
    /// A garbage-collection pass (physical expiry of deleted tuples).
    Expire,
    /// A mixed batch followed by `commit()`.
    Commit,
    /// A mixed batch followed by `abort()`.
    Abort,
}

impl OpKind {
    /// All operation types, in sweep order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Insert,
        OpKind::Update,
        OpKind::Delete,
        OpKind::Expire,
        OpKind::Commit,
        OpKind::Abort,
    ];
}

/// What one `(failpoint, op)` cell observed.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The armed failpoint.
    pub point: &'static str,
    /// The operation script.
    pub op: OpKind,
    /// The table's nVNL `n`.
    pub n: usize,
    /// Whether the armed point actually fired during the script (points off
    /// the script's path yield a plain end-of-script crash instead).
    pub injected: bool,
    /// Commit cells only: whether the version flip happened before the
    /// crash (decides which reference state applies).
    pub committed: bool,
    /// The (first) recovery pass report.
    pub recovery: RecoveryReport,
}

/// Aggregate result of a sweep.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// One entry per cell, in sweep order.
    pub cells: Vec<CellReport>,
    /// One entry per durability cell (disk-backed tables; see
    /// [`run_durability_cells`]), in sweep order.
    pub durability_cells: Vec<DurabilityCellReport>,
    /// Per-point hit/fired counters accumulated over the whole sweep.
    pub coverage: Vec<PointStats>,
}

fn schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("k", DataType::Int64),
            Column::updatable("v", DataType::Int64),
        ],
        &["k"],
    )
    .unwrap()
}

fn row(k: i64, v: i64) -> Vec<Value> {
    vec![Value::from(k), Value::from(v)]
}

/// Scripted history every cell starts from:
/// VN 1 — load k0=0, k1=100, k2=200;
/// VN 2 (committed) — k0←1000, delete k1, insert k3=300.
fn build_table(n: usize) -> VnlTable {
    let table = VnlTable::create_named("T", schema(), n).unwrap();
    for k in 0..3i64 {
        table.load_initial(&[row(k, k * 100)]).unwrap();
    }
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(0, 1000)).unwrap();
    txn.delete_row(&row(1, 0)).unwrap();
    txn.insert(row(3, 300)).unwrap();
    txn.commit().unwrap();
    table
}

/// The reference (model) state at `svn`. `svn = 3` is only reachable from
/// Commit cells whose version flip happened.
fn expected_live(svn: u64) -> Vec<(i64, i64)> {
    match svn {
        0 | 1 => vec![(0, 0), (1, 100), (2, 200)],
        2 => vec![(0, 1000), (2, 200), (3, 300)],
        _ => vec![(0, 1001), (3, 300), (4, 400)],
    }
}

/// Reader-visible `(k, v)` set at `svn`, via the real visibility function.
fn visible_state(table: &VnlTable, svn: u64) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = table
        .scan_raw()
        .unwrap()
        .iter()
        .filter_map(
            |(_, ext)| match visibility::extract(table.layout(), ext, svn) {
                Visible::Row(r) => Some((r[0].as_int().unwrap(), r[1].as_int().unwrap())),
                Visible::Ignore => None,
                Visible::Expired => panic!("unexpected expiry at sessionVN {svn}"),
            },
        )
        .collect();
    rows.sort_unstable();
    rows
}

/// A stable fingerprint of the physical table state (idempotence checks).
fn fingerprint(table: &VnlTable) -> String {
    let mut rows: Vec<String> = table
        .scan_raw()
        .unwrap()
        .iter()
        .map(|(rid, ext)| format!("{rid}:{ext:?}"))
        .collect();
    rows.sort_unstable();
    rows.join("\n")
}

/// Run one cell: arm `point`, crash `op` against a fresh scripted table,
/// recover, and model-check. Panics on any divergence.
///
/// Counters are *not* cleared, so a sweep accumulates coverage; callers
/// wanting isolated counts should call [`fault::clear_all`] first.
/// Flight-recorder hook for matrix cells: if the cell panics (oracle
/// divergence or a violated recovery invariant), dump the ring while it
/// still holds the injected fault's causal chain.
struct CellFlightGuard {
    point: &'static str,
    n: usize,
}

impl Drop for CellFlightGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            wh_obs::recorder::trigger(
                "crash_matrix_cell",
                &format!("cell failed: point={} n={}", self.point, self.n),
            );
        }
    }
}

pub fn run_cell(n: usize, point: &'static str, op: OpKind) -> CellReport {
    let _flight = CellFlightGuard { point, n };
    let table = build_table(n);
    let fired_before = fault::fired(point);
    fault::configure(point, FaultAction::Error);
    let mut committed = false;

    match op {
        OpKind::Expire => {
            // GC runs outside any maintenance transaction; a fault mid-pass
            // abandons the remaining victims.
            let _ = gc::collect(&table);
        }
        _ => {
            // A fault inside begin_maintenance leaves the maintenanceActive
            // flag stuck with no transaction to clean it up.
            if let Ok(txn) = table.begin_maintenance() {
                let mut ok = true;
                match op {
                    OpKind::Insert => {
                        ok &= txn.insert(row(4, 400)).is_ok();
                        ok &= txn.insert(row(1, 111)).is_ok(); // resurrects k1
                        let _ = ok;
                        std::mem::forget(txn); // crash: undo map lost
                    }
                    OpKind::Update => {
                        ok &= txn.update_row(&row(0, 1001)).is_ok();
                        ok &= txn.update_row(&row(0, 1002)).is_ok(); // same-txn repeat
                        ok &= txn.update_row(&row(2, 222)).is_ok();
                        let _ = ok;
                        std::mem::forget(txn);
                    }
                    OpKind::Delete => {
                        ok &= txn.delete_row(&row(0, 0)).is_ok();
                        ok &= txn.update_row(&row(2, 222)).is_ok();
                        ok &= txn.delete_row(&row(2, 0)).is_ok(); // update∘delete
                        ok &= txn.insert(row(4, 400)).is_ok();
                        ok &= txn.delete_row(&row(4, 0)).is_ok(); // insert∘delete
                        let _ = ok;
                        std::mem::forget(txn);
                    }
                    OpKind::Commit => {
                        ok &= txn.update_row(&row(0, 1001)).is_ok();
                        ok &= txn.insert(row(4, 400)).is_ok();
                        ok &= txn.delete_row(&row(2, 0)).is_ok();
                        if ok {
                            committed = txn.commit().is_ok();
                        } else {
                            std::mem::forget(txn); // crash mid-batch
                        }
                    }
                    OpKind::Abort => {
                        let _ = txn.update_row(&row(0, 1001));
                        let _ = txn.insert(row(4, 400));
                        let _ = txn.delete_row(&row(2, 0));
                        // A fault mid-rollback leaves a *partial* abort; the
                        // txn is consumed either way, with its undo map.
                        let _ = txn.abort();
                    }
                    OpKind::Expire => unreachable!("handled above"),
                }
            }
        }
    }

    fault::disarm_all(); // keep counters: the sweep's coverage proof
    let injected = fault::fired(point) > fired_before;

    let report = recovery::recover(&table).unwrap();
    assert_eq!(report.log_writes, 0, "recovery must not write a log");

    let snap = table.version().snapshot();
    assert!(
        !snap.maintenance_active,
        "recovery must clear maintenanceActive ({point} × {op:?}, n={n})"
    );
    assert_eq!(snap.current_vn, if committed { 3 } else { 2 });

    // Model-check every session version that recovery guarantees exact.
    // Expire cells additionally bound the window at currentVN: with no
    // registered sessions, GC's horizon is currentVN, so older versions are
    // legitimately reclaimed.
    let window_start = snap.current_vn.saturating_sub(n as u64 - 1).max(1);
    let mut check_from = window_start.max(report.exact_horizon);
    if op == OpKind::Expire {
        check_from = check_from.max(snap.current_vn);
    }
    for svn in check_from..=snap.current_vn {
        assert_eq!(
            visible_state(&table, svn),
            expected_live(svn),
            "divergence at sessionVN {svn} ({point} × {op:?}, n={n}, injected={injected})"
        );
    }

    // Idempotence: a second pass finds nothing and changes nothing.
    let before = fingerprint(&table);
    let again = recovery::recover(&table).unwrap();
    assert_eq!(
        again.pending_found, 0,
        "second recovery must find nothing pending ({point} × {op:?}, n={n})"
    );
    assert_eq!(
        fingerprint(&table),
        before,
        "second recovery must be a no-op ({point} × {op:?}, n={n})"
    );

    CellReport {
        point,
        op,
        n,
        injected,
        committed,
        recovery: report,
    }
}

/// The durable-tier failpoints the durability cells sweep: the in-memory
/// cells above arm them too (harmlessly — an in-memory table never reaches
/// the disk paths), but only a disk-backed table drives them through
/// flush, eviction, checkpoint, and restart recovery.
pub const DURABILITY_POINTS: &[&str] = &[
    "storage.disk.read",
    "storage.disk.write",
    "storage.pool.evict",
    "storage.pool.flush",
    "storage.ckpt.begin",
    "storage.ckpt.meta",
];

/// The durable-tier operation a durability cell crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableOpKind {
    /// `flush_all` mid-maintenance: the steal policy pushes a live
    /// transaction's dirty pages to disk, then the process dies.
    Flush,
    /// `evict_all` mid-maintenance: eviction forces flush-before-drop,
    /// then the process dies with the transaction's pages non-resident.
    Evict,
    /// A committed transaction's checkpoint crashes partway: the previous
    /// checkpoint must stay intact (the commit is lost — durability lag).
    Checkpoint,
    /// The fault fires during restart recovery itself; the retry must
    /// succeed because §7 recovery is idempotent.
    Restart,
}

impl DurableOpKind {
    /// All durable operation types, in sweep order.
    pub const ALL: [DurableOpKind; 4] = [
        DurableOpKind::Flush,
        DurableOpKind::Evict,
        DurableOpKind::Checkpoint,
        DurableOpKind::Restart,
    ];
}

/// What one durability `(failpoint, op)` cell observed.
#[derive(Debug, Clone)]
pub struct DurabilityCellReport {
    /// The armed failpoint.
    pub point: &'static str,
    /// The durable operation script.
    pub op: DurableOpKind,
    /// The table's nVNL `n`.
    pub n: usize,
    /// Whether the armed point actually fired during the cell.
    pub injected: bool,
    /// Checkpoint cells only: whether the armed checkpoint completed
    /// (decides whether VN 3 survives the restart or is lost).
    pub checkpointed: bool,
    /// `currentVN` after restart recovery.
    pub recovered_vn: u64,
    /// The restart-recovery report.
    pub recovery: DiskRecoveryReport,
}

/// A fresh scratch directory for one durability cell.
fn matrix_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: id-alloc Relaxed — unique-name counter only
    let dir = std::env::temp_dir().join(format!("wh-crashmatrix-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// [`build_table`]'s scripted history on a disk-backed table (pool capacity
/// 2, so the history itself runs under eviction pressure), ending with a
/// clean checkpoint at VN 2 — the durable baseline every cell recovers
/// relative to.
fn build_durable_table(n: usize, dir: &Path) -> VnlTable {
    let table = durable::create_durable("T", schema(), n, dir, 2).unwrap();
    for k in 0..3i64 {
        table.load_initial(&[row(k, k * 100)]).unwrap();
    }
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(0, 1000)).unwrap();
    txn.delete_row(&row(1, 0)).unwrap();
    txn.insert(row(3, 300)).unwrap();
    txn.commit().unwrap();
    durable::checkpoint(&table).unwrap();
    table
}

/// Run one durability cell: build a checkpointed disk-backed table, arm
/// `point`, crash `op`, "restart" (drop every in-memory structure), recover
/// from the disk artifacts alone, and model-check what the recovered table
/// serves. Panics on any divergence.
pub fn run_durability_cell(
    n: usize,
    point: &'static str,
    op: DurableOpKind,
) -> DurabilityCellReport {
    let _flight = CellFlightGuard { point, n };
    let dir = matrix_dir();
    let table = build_durable_table(n, &dir);
    let fired_before = fault::fired(point);
    let mut checkpointed = false;

    match op {
        DurableOpKind::Flush | DurableOpKind::Evict => {
            // VN 3 work in flight when the pool steals it to disk. The ops
            // mirror `expected_live`'s post-VN-2 arm, so a checkpoint that
            // *did* capture them would also model-check.
            let txn = table.begin_maintenance().unwrap();
            let _ = txn.update_row(&row(0, 1001));
            let _ = txn.delete_row(&row(2, 0));
            let _ = txn.insert(row(4, 400));
            fault::configure(point, FaultAction::Error);
            let _ = if op == DurableOpKind::Flush {
                table.storage().heap().flush_all()
            } else {
                table.storage().heap().evict_all()
            };
            std::mem::forget(txn); // crash: undo map lost
        }
        DurableOpKind::Checkpoint => {
            // VN 3 commits in memory; the checkpoint that would make it
            // durable crashes partway. Whatever half-state it flushed, the
            // *previous* checkpoint's meta must still govern recovery.
            let txn = table.begin_maintenance().unwrap();
            txn.update_row(&row(0, 1001)).unwrap();
            txn.delete_row(&row(2, 0)).unwrap();
            txn.insert(row(4, 400)).unwrap();
            txn.commit().unwrap();
            fault::configure(point, FaultAction::Error);
            checkpointed = durable::checkpoint(&table).is_ok();
        }
        DurableOpKind::Restart => {
            // VN 3 commits but is never checkpointed (bounded durability
            // lag); the fault then fires during recovery itself. One shot:
            // the retry below must succeed.
            let txn = table.begin_maintenance().unwrap();
            txn.update_row(&row(0, 1001)).unwrap();
            txn.delete_row(&row(2, 0)).unwrap();
            txn.insert(row(4, 400)).unwrap();
            txn.commit().unwrap();
            fault::configure(point, FaultAction::ErrorTimes(1));
        }
    }

    let injected_mid = fault::fired(point) > fired_before;
    if op != DurableOpKind::Restart {
        fault::disarm_all(); // keep counters: the sweep's coverage proof
    }
    drop(table); // process "restart": every in-memory structure is gone

    // Recover from the disk artifacts alone. A Restart cell's first attempt
    // may fail (the armed fault fires inside recovery); §7 recovery is
    // idempotent, so the retry is safe — and must succeed.
    let (table, report) = match durable::recover_from_disk("T", schema(), n, &dir, 2) {
        Ok(ok) => ok,
        Err(_) => {
            assert_eq!(
                op,
                DurableOpKind::Restart,
                "only a Restart cell may fail its first recovery ({point} × {op:?}, n={n})"
            );
            fault::disarm_all();
            durable::recover_from_disk("T", schema(), n, &dir, 2).unwrap()
        }
    };
    fault::disarm_all();
    let injected = injected_mid || fault::fired(point) > fired_before;

    assert_eq!(
        report.recovery.log_writes, 0,
        "restart recovery must not write a log ({point} × {op:?}, n={n})"
    );
    let snap = table.version().snapshot();
    assert!(
        !snap.maintenance_active,
        "recovery must clear maintenanceActive ({point} × {op:?}, n={n})"
    );
    // Everything up to the last *completed* checkpoint survives; later
    // commits are lost (durability lag), never half-applied.
    let expect_vn = if checkpointed { 3 } else { 2 };
    assert_eq!(
        snap.current_vn, expect_vn,
        "recovered VN ({point} × {op:?}, n={n}, injected={injected})"
    );
    assert_eq!(report.checkpoint_vn, expect_vn);
    assert_eq!(
        table.gc_reclaim_ceiling(),
        expect_vn,
        "recovery must restore the GC ceiling ({point} × {op:?}, n={n})"
    );

    // Model-check every session version recovery guarantees exact.
    let window_start = snap.current_vn.saturating_sub(n as u64 - 1).max(1);
    let check_from = window_start.max(report.recovery.exact_horizon);
    for svn in check_from..=snap.current_vn {
        assert_eq!(
            visible_state(&table, svn),
            expected_live(svn),
            "divergence at sessionVN {svn} ({point} × {op:?}, n={n}, injected={injected})"
        );
    }

    // Idempotence across the durable tier: a second in-process pass finds
    // nothing pending.
    let again = recovery::recover(&table).unwrap();
    assert_eq!(
        again.pending_found, 0,
        "second recovery must find nothing pending ({point} × {op:?}, n={n})"
    );

    drop(table);
    std::fs::remove_dir_all(&dir).ok();
    DurabilityCellReport {
        point,
        op,
        n,
        injected,
        checkpointed,
        recovered_vn: snap.current_vn,
        recovery: report,
    }
}

/// Sweep [`DURABILITY_POINTS`] × [`DurableOpKind::ALL`] for each `n`.
pub fn run_durability_cells(ns: &[usize]) -> Vec<DurabilityCellReport> {
    let mut cells = Vec::new();
    for &n in ns {
        for point in DURABILITY_POINTS {
            for op in DurableOpKind::ALL {
                cells.push(run_durability_cell(n, point, op));
            }
        }
    }
    cells
}

/// Exercise the lock-manager failpoints (they sit outside the maintenance
/// path, so the table cells never reach them): a refused grant surfaces as a
/// timeout, and a swallowed release leaves the crashed client's locks held.
pub fn run_cc_cells() {
    use wh_cc::{LockManager, LockMode, LockRequestOutcome};
    let lm = LockManager::strict(std::time::Duration::from_millis(10));

    fault::configure("cc.lock.grant", FaultAction::Error);
    assert_eq!(
        lm.acquire(1, 1, LockMode::Shared),
        LockRequestOutcome::TimedOut
    );
    fault::disarm_all();

    assert!(lm.acquire(1, 1, LockMode::Shared).granted());
    fault::configure("cc.lock.release", FaultAction::Error);
    lm.release_all(1); // swallowed: the "crashed" client keeps its locks
    fault::disarm_all();
    assert_eq!(lm.locked_keys(), 1);
    lm.release_all(1);
    assert_eq!(lm.locked_keys(), 0);
}

/// The session-repair failpoints swept by [`run_repair_cells`]. The main
/// cells arm these too (Commit cells drive `vnl.delta.capture`, Expire
/// cells drive `vnl.delta.evict`), but only these cells reach the repair
/// admission gate, and only they prove the repair-specific invariants: an
/// injected fault forces the restart fallback — never a wrong answer — and
/// repair state (the retained delta window) never survives recovery.
pub const REPAIR_POINTS: &[&str] = &["vnl.delta.capture", "vnl.delta.evict", "vnl.repair.apply"];

/// One committed single-row update in its own maintenance transaction.
fn commit_update(table: &VnlTable, k: i64, v: i64) {
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(k, v)).unwrap();
    txn.commit().unwrap();
}

/// A repaired row set as sorted `(k, v)` pairs (the repaired path yields
/// primary-key order already; sorting makes the oracle order-blind).
fn repaired_kv(rep: &crate::resilience::Repaired) -> Vec<(i64, i64)> {
    let mut kv: Vec<(i64, i64)> = rep
        .rows
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    kv.sort_unstable();
    kv
}

/// Sweep [`REPAIR_POINTS`] for each `n`: arm each point on its own path,
/// crash, recover, and assert the repair layer fails *closed* — an injected
/// fault may only cost work (decline → restart), never correctness, and no
/// retained delta window outlives a recovery pass. Panics on divergence.
pub fn run_repair_cells(ns: &[usize]) {
    use crate::resilience::{RepairEngine, RetryPolicy};

    for &n in ns {
        // --- vnl.repair.apply: a fault at the admission gate declines every
        // repair; the retry layer's restart fallback still answers exactly.
        {
            let point = "vnl.repair.apply";
            let _flight = CellFlightGuard { point, n };
            let table = build_table(n);
            let svn = table.version().peek().current_vn;
            for i in 0..n as i64 {
                commit_update(&table, 0, 2000 + i); // svn expires under §4.1
            }
            let engine = RepairEngine::new(&table);
            fault::configure(point, FaultAction::Error);
            assert!(
                engine.scan_at_current(svn).unwrap().is_none(),
                "an injected repair fault must decline, not answer ({point}, n={n})"
            );
            let policy = RetryPolicy::default()
                .with_backoff(std::time::Duration::ZERO, std::time::Duration::ZERO);
            let expired = std::cell::Cell::new(false);
            let (res, stats) = policy.run_repaired(
                &table,
                |s| {
                    if !expired.replace(true) {
                        return Err(table.expired_error(svn));
                    }
                    s.scan()
                },
                |vn| engine.scan_at_current(vn).ok().flatten().map(|r| r.rows),
            );
            fault::disarm_all();
            let mut got: Vec<(i64, i64)> = res
                .unwrap()
                .iter()
                .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                .collect();
            got.sort_unstable();
            let vn_now = table.version().peek().current_vn;
            assert_eq!(
                got,
                visible_state(&table, vn_now),
                "the restart fallback must answer exactly ({point}, n={n})"
            );
            assert_eq!(
                (stats.repaired, stats.restarted),
                (0, 1),
                "an armed admission gate must route to restart ({point}, n={n})"
            );
            // Disarmed, the identical repair succeeds and matches a rescan.
            let rep = engine
                .scan_at_current(svn)
                .unwrap()
                .unwrap_or_else(|| panic!("disarmed repair must succeed ({point}, n={n})"));
            assert_eq!(rep.vn, vn_now);
            assert_eq!(
                repaired_kv(&rep),
                visible_state(&table, vn_now),
                "repair ≡ rescan ({point}, n={n})"
            );
            // Crash-and-recover: repair state never survives restart.
            recovery::recover(&table).unwrap();
            assert_eq!(
                table.version().delta_log_len(),
                0,
                "the delta log must not survive recovery ({point}, n={n})"
            );
            assert!(
                engine.scan_at_current(svn).unwrap().is_none(),
                "post-recovery repair of a pre-crash session must decline ({point}, n={n})"
            );
        }

        // --- vnl.delta.capture: a fault during net-effect capture fails the
        // whole commit (rolled back wholesale) — no VN flip, no half-retained
        // batch — and the window stays contiguous across recovery.
        {
            let point = "vnl.delta.capture";
            let _flight = CellFlightGuard { point, n };
            let table = build_table(n);
            let svn = table.version().peek().current_vn;
            fault::configure(point, FaultAction::Error);
            let txn = table.begin_maintenance().unwrap();
            txn.update_row(&row(0, 5000)).unwrap();
            assert!(
                txn.commit().is_err(),
                "a capture fault must fail the commit ({point}, n={n})"
            );
            fault::disarm_all();
            recovery::recover(&table).unwrap(); // crash after the failed commit
            let snap = table.version().snapshot();
            assert_eq!(
                snap.current_vn, svn,
                "a failed capture must not flip the VN ({point}, n={n})"
            );
            assert_eq!(
                visible_state(&table, svn),
                expected_live(svn),
                "the failed commit must roll back wholesale ({point}, n={n})"
            );
            // The log re-arms: the next commit's window repairs cleanly.
            commit_update(&table, 0, 6000);
            let engine = RepairEngine::new(&table);
            let rep = engine
                .scan_at_current(svn)
                .unwrap()
                .unwrap_or_else(|| panic!("the post-recovery window must repair ({point}, n={n})"));
            let vn_now = table.version().peek().current_vn;
            assert_eq!(
                repaired_kv(&rep),
                visible_state(&table, vn_now),
                "repair ≡ rescan after a capture crash ({point}, n={n})"
            );
        }

        // --- vnl.delta.evict: a fault during eviction skips the pass (the
        // log stays capacity-bounded regardless); the un-evicted window is
        // still exact, and recovery still clears it.
        {
            let point = "vnl.delta.evict";
            let _flight = CellFlightGuard { point, n };
            let table = build_table(n);
            let svn = table.version().peek().current_vn;
            commit_update(&table, 0, 7000);
            let log_before = table.version().delta_log_len();
            fault::configure(point, FaultAction::Error);
            let _ = gc::collect(&table);
            fault::disarm_all();
            assert!(
                table.version().delta_log_len() >= log_before,
                "a skipped eviction must not lose batches ({point}, n={n})"
            );
            let engine = RepairEngine::new(&table);
            let rep = engine
                .scan_at_current(svn)
                .unwrap()
                .unwrap_or_else(|| panic!("the un-evicted window must repair ({point}, n={n})"));
            let vn_now = table.version().peek().current_vn;
            assert_eq!(
                repaired_kv(&rep),
                visible_state(&table, vn_now),
                "repair ≡ rescan under a skipped eviction ({point}, n={n})"
            );
            recovery::recover(&table).unwrap();
            assert_eq!(
                table.version().delta_log_len(),
                0,
                "repair state must never survive recovery ({point}, n={n})"
            );
        }
    }
}

/// Run the full sweep — every cataloged failpoint × every [`OpKind`], for
/// each `n` in `ns` — plus the lock-manager and session-repair cells, then
/// assert that every registered failpoint fired at least once. Panics on
/// any cell divergence or coverage hole.
pub fn run_matrix(ns: &[usize]) -> MatrixReport {
    fault::clear_all();
    let mut cells = Vec::new();
    for &n in ns {
        assert!(n >= 2, "nVNL requires n >= 2");
        for point in catalog() {
            for op in OpKind::ALL {
                cells.push(run_cell(n, point, op));
            }
        }
    }
    run_cc_cells();
    // The session-repair cells: the only cells that reach the repair
    // admission gate (`vnl.repair.apply`), and the proof that injected
    // repair faults fail closed to restart.
    run_repair_cells(ns);
    // The durable tier's cells: the in-memory cells arm the disk failpoints
    // but never reach them, so these are what make the coverage assertion
    // below hold for `storage.{disk,pool,ckpt}.*`.
    let durability_cells = run_durability_cells(ns);
    // The paper's no-WAL claim, asserted structurally: there is no log
    // failpoint because there is no log write path to instrument.
    assert!(
        catalog().iter().all(|p| !p.contains("log")),
        "a log-write failpoint appeared — the no-WAL invariant is gone"
    );
    for point in catalog() {
        assert!(
            fault::fired(point) > 0,
            "failpoint {point} never fired during the sweep — coverage hole"
        );
    }
    MatrixReport {
        cells,
        durability_cells,
        coverage: fault::snapshot(),
    }
}
