//! Log-free crash recovery: the scavenger behind the paper's no-log claim.
//!
//! §7 observes that because every touched tuple still carries its
//! pre-update version in its own slots, a maintenance transaction can roll
//! back "without requiring an undo log". [`MaintenanceTxn::abort`] exercises
//! that claim for a *live* abort, helped by a transaction-private in-memory
//! undo map. This module proves the stronger form: after a **crash** — the
//! transaction object gone, its undo map lost, `maintenanceActive` stuck on —
//! [`recover`] reconstructs a consistent pre-transaction state from nothing
//! but the durable tuple `(tupleVN, operation, pre-values)` slots. Zero log
//! records are read because zero were ever written.
//!
//! # Algorithm
//!
//! Let `V = currentVN` (the crash never advanced it: the version flip is the
//! last, latched step of commit). Every tuple whose newest slot carries
//! `tupleVN > V` belongs to the crashed transaction and is rolled back from
//! its own slots:
//!
//! * **Pending insert, nVNL slot 1 = delete** — the insert resurrected a
//!   logically-deleted tuple: shift the slots forward (slot 0 becomes the old
//!   delete slot again) and restore the current values from the delete's
//!   saved pre-values.
//! * **Pending insert, otherwise** — a fresh insert: physically delete the
//!   orphan and drop its key/index registrations.
//! * **Pending update/delete** — restore the current values from the newest
//!   slot's pre-values (an update saved them there; a logical delete saved
//!   them too), then undo the `push_back`: for nVNL, shift the slots forward;
//!   for 2VNL — whose single slot held the pre-transaction `(tupleVN,
//!   operation, pre-values)` that the crash destroyed along with the undo
//!   map — write a reconstructed slot `(V, update, PV ← CV)` instead.
//!
//! Finally the stuck `maintenanceActive` flag is cleared. Running [`recover`]
//! again is a no-op: nothing carries `tupleVN > V` anymore.
//!
//! # Exactness
//!
//! Perfect reconstruction is information-theoretically impossible in two
//! places, and the report says so instead of pretending:
//!
//! * **2VNL** destroys the single pre-transaction slot. The reconstructed
//!   `(V, update)` slot serves sessions at `sessionVN ≥ V` exactly; a
//!   session at `V − 1` may read current values where the true
//!   pre-transaction slot would have served distinct pre-values (and a 2VNL
//!   resurrection is indistinguishable from a fresh insert outright).
//! * **nVNL with every slot occupied**: `push_back` dropped the oldest slot
//!   into the (lost) undo map. After the shift the emptied oldest slot is
//!   filled with a *duplicate* of its newer neighbour `(w, op, PV)`: sessions
//!   at `sessionVN ≥ w − 1` still read exactly, while older sessions get
//!   `Expired` — the recovery *expires rather than lies*.
//!
//! [`RecoveryReport::exact_horizon`] is the smallest `sessionVN` for which
//! reads of the recovered table are guaranteed to equal the
//! pre-transaction state; `1` means the recovery was fully exact.
//!
//! The horizon is not only reported but **enforced**: before mutating
//! anything, [`recover`] raises the warehouse-wide *recovery fence*
//! ([`crate::VersionState::recovery_floor`]) to it. Every live session
//! below the fence fails its next §4.1 global check — and every scan or
//! lookup re-checks the fence on completion, so even a read in flight
//! across the recovery raises `SessionExpired` instead of returning
//! reconstructed values. Inexact recovery expires rather than lies,
//! uniformly for 2VNL and nVNL. As with
//! live aborts, restoration covers updatable columns (non-updatable columns
//! are never changed by updates; a reversed resurrection keeps the
//! resurrector's non-updatable non-key values, matching
//! `MaintenanceTxn::abort`).
//!
//! [`MaintenanceTxn::abort`]: crate::maintenance::MaintenanceTxn::abort

use crate::error::VnlResult;
use crate::schema_ext::ExtLayout;
use crate::table::VnlTable;
use crate::version::{Operation, VersionNo};
use wh_storage::StorageError;
use wh_types::{Row, Value};

/// What one [`recover`] pass found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `currentVN` at recovery time (the version rolled back *to*).
    pub current_vn: VersionNo,
    /// Tuples examined.
    pub scanned: u64,
    /// Tuples carrying the crashed transaction's `tupleVN`.
    pub pending_found: u64,
    /// Fresh inserts physically removed.
    pub orphans_removed: u64,
    /// Resurrections reversed back to their logically-deleted state.
    pub resurrections_reversed: u64,
    /// Updates/deletes rolled back from their own slots.
    pub slots_restored: u64,
    /// nVNL tuples whose lost oldest slot was filled with a duplicate of
    /// its neighbour (sessions older than the duplicate expire).
    pub duplicated_oldest_slots: u64,
    /// 2VNL tuples whose destroyed single slot was reconstructed as
    /// `(currentVN, update, PV ← CV)`.
    pub reconstructed_slots: u64,
    /// Smallest `sessionVN` whose reads are guaranteed to equal the
    /// pre-transaction state (1 = fully exact).
    pub exact_horizon: VersionNo,
    /// Whether a stuck `maintenanceActive` flag was found (it is cleared
    /// either way).
    pub cleared_maintenance_flag: bool,
    /// Log records written — always zero; the field exists so tests assert
    /// the paper's claim rather than assume it.
    pub log_writes: u64,
}

/// Reconstruct a consistent pre-transaction state after a crashed
/// maintenance transaction, using only the tuples' own version slots.
///
/// Safe (and a no-op) on a cleanly committed or aborted table; idempotent —
/// a second pass finds nothing pending. See the module docs for the
/// algorithm and its exactness bounds.
pub fn recover(table: &VnlTable) -> VnlResult<RecoveryReport> {
    // trace: recovery is a fresh root trace; the crashed transaction's
    // still-open span (it never reached its Drop) sits in the same ring,
    // so the dump below carries both the crash and the repair.
    let _ts = wh_obs::trace_span!("vnl.recovery");
    // Entering recovery IS the anomaly — dump the flight recorder first so
    // the ring still holds the events leading up to the crash, not the
    // recovery scan's own traffic.
    wh_obs::recorder::trigger("recovery_entry", "vnl recovery scan starting");
    let layout = table.layout().clone();
    let snap = table.version().snapshot();
    let v = snap.current_vn;
    let mut report = RecoveryReport {
        current_vn: v,
        scanned: 0,
        pending_found: 0,
        orphans_removed: 0,
        resurrections_reversed: 0,
        slots_restored: 0,
        duplicated_oldest_slots: 0,
        reconstructed_slots: 0,
        exact_horizon: 1,
        cleared_maintenance_flag: snap.maintenance_active,
        log_writes: 0,
    };

    // Pass 1 (read-only): find the crashed transaction's tuples and compute
    // the exactness horizon *before* touching anything.
    let mut pending = Vec::new();
    for (rid, ext) in table.scan_raw()? {
        report.scanned += 1;
        let Some((vn0, op0)) = layout.slot(&ext, 0) else {
            continue;
        };
        if vn0 <= v {
            continue;
        }
        report.pending_found += 1;
        report.exact_horizon = report
            .exact_horizon
            .max(prospective_horizon(&layout, &ext, v, op0));
        pending.push((rid, ext, op0));
    }

    // Raise the session fence before the first mutation: sessions the
    // reconstruction cannot serve exactly must expire rather than read a
    // reconstructed guess — including scans already in flight, which
    // re-check the fence when they complete. (Until `publish_abort` below,
    // the stuck `maintenanceActive` flag keeps the *global* check strict;
    // the fence is what outlives it.)
    if report.exact_horizon > 1 {
        table.version().raise_recovery_floor(report.exact_horizon);
    }

    // Pass 2: roll the pending tuples back from their own slots.
    for (rid, ext, op0) in pending {
        match op0 {
            Operation::Insert => {
                let resurrected = layout.slots() > 1
                    && matches!(layout.slot(&ext, 1), Some((_, Operation::Delete)));
                if resurrected {
                    let mut duplicated = None;
                    table.storage().modify(rid, |mut row| {
                        duplicated = Some(reverse_push_back(&layout, &mut row));
                        // CV ← the delete's saved pre-values, now back in
                        // the newest slot's pre-set.
                        for (u_pos, &u) in layout.updatable().iter().enumerate() {
                            row[layout.base_col(u)] = row[layout.pre_set(0)[u_pos]].clone();
                        }
                        Ok(row)
                    })?;
                    report.resurrections_reversed += 1;
                    if let Some(Some(_)) = duplicated {
                        report.duplicated_oldest_slots += 1;
                    }
                } else {
                    // Fresh insert: remove the orphan. A missing slot means
                    // a concurrent GC pass beat us to the physical delete —
                    // nothing left to do.
                    if let Some(dir) = table.key_dir() {
                        let _ = dir.unregister(&ext, rid);
                    }
                    match table.storage().delete(rid) {
                        Ok(()) => table.on_physical_delete(&ext, rid),
                        Err(StorageError::NoSuchSlot { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                    report.orphans_removed += 1;
                }
            }
            Operation::Update | Operation::Delete => {
                let mut duplicated = None;
                table.storage().modify(rid, |mut row| {
                    // CV ← pre-values of the newest slot: an update saved
                    // the pre-transaction values there, and a logical
                    // delete copied CV there (so this is a no-op for it).
                    for (u_pos, &u) in layout.updatable().iter().enumerate() {
                        row[layout.base_col(u)] = row[layout.pre_set(0)[u_pos]].clone();
                    }
                    if layout.slots() == 1 {
                        // The single slot's pre-transaction content is
                        // gone; reconstruct `(V, update, PV ← CV)`.
                        row[layout.vn_col(0)] = Value::from(v as i64);
                        row[layout.op_col(0)] = Operation::Update.value();
                        for (u_pos, &i) in layout.pre_set(0).iter().enumerate() {
                            row[i] = row[layout.base_col(layout.updatable()[u_pos])].clone();
                        }
                        duplicated = Some(None);
                    } else {
                        duplicated = Some(reverse_push_back(&layout, &mut row));
                    }
                    Ok(row)
                })?;
                report.slots_restored += 1;
                match duplicated {
                    Some(Some(_)) => {
                        report.duplicated_oldest_slots += 1;
                    }
                    Some(None) if layout.slots() == 1 => {
                        report.reconstructed_slots += 1;
                    }
                    _ => {}
                }
            }
        }
    }

    // Repair state never survives into a recovered process: the delta log
    // was built against the pre-crash commit history, and the rollback
    // above may have undone exactly the tuples its newest batches
    // describe. Sessions that were mid-repair fall back to restart.
    table.version().clear_deltas();

    // Clear the stuck maintenanceActive flag (and its mirror tuple in the
    // Version relation) — harmless when it was never stuck.
    table.version().publish_abort()?;
    Ok(report)
}

/// The exactness horizon one pending tuple will contribute once pass 2
/// rolls it back — computed read-only so [`recover`] can raise the session
/// fence before the first mutation. Mirrors pass 2's case analysis: a full
/// nVNL tuple loses its true oldest slot (exact from the duplicate's VN − 1
/// on), and 2VNL loses its only slot outright (exact from `v` on).
fn prospective_horizon(layout: &ExtLayout, ext: &Row, v: VersionNo, op0: Operation) -> VersionNo {
    let last = layout.slots() - 1;
    let full_shift_horizon = || match layout.slot(ext, last) {
        // `reverse_push_back` will duplicate this slot's `(w, op, PV)`.
        Some((w, _)) => w.saturating_sub(1),
        None => 1,
    };
    match op0 {
        Operation::Insert => {
            let resurrected =
                layout.slots() > 1 && matches!(layout.slot(ext, 1), Some((_, Operation::Delete)));
            if resurrected {
                full_shift_horizon()
            } else if layout.slots() == 1 {
                // A 2VNL resurrection is indistinguishable from a fresh
                // insert; only sessions at `v` are guaranteed exact.
                v
            } else {
                1
            }
        }
        Operation::Update | Operation::Delete => {
            if layout.slots() == 1 {
                // The single slot's pre-transaction content is destroyed;
                // its reconstruction serves only sessions at `v`.
                v
            } else {
                full_shift_horizon()
            }
        }
    }
}

/// Undo a crashed `push_back` on an nVNL tuple: shift the slots forward so
/// the newest slot is the pre-transaction one again. If every slot was
/// occupied — meaning the `push_back` dropped the true oldest slot into the
/// lost undo map — fill the emptied oldest slot with a duplicate of its
/// newer neighbour `(w, op, PV)` and return `Some(w)`: sessions at
/// `sessionVN ≥ w − 1` still read exactly, older ones expire rather than
/// read a guess. Returns `None` when the shift alone is exact.
fn reverse_push_back(layout: &ExtLayout, row: &mut Row) -> Option<VersionNo> {
    let last = layout.slots() - 1;
    let was_full = layout.slot(row, last).is_some();
    layout.shift_forward(row);
    if !was_full {
        return None;
    }
    let (w, _) = layout
        .slot(row, last - 1)
        .expect("a full tuple keeps its second-oldest slot through the shift"); // lint: allow(no-panic) — invariant documented in the expect message
    row[layout.vn_col(last)] = row[layout.vn_col(last - 1)].clone();
    row[layout.op_col(last)] = row[layout.op_col(last - 1)].clone();
    for u_pos in 0..layout.pre_set(last).len() {
        row[layout.pre_set(last)[u_pos]] = row[layout.pre_set(last - 1)[u_pos]].clone();
    }
    Some(w)
}
