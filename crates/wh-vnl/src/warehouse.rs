//! A warehouse: many materialized views under **one** global version.
//!
//! The paper's setting is a warehouse containing "many materialized views"
//! (§1), all refreshed by the *same* periodic maintenance transaction and
//! all read by the *same* analyst sessions — so `currentVN` /
//! `maintenanceActive` are warehouse-wide, not per-relation. [`Warehouse`]
//! assembles multiple [`VnlTable`]s over one shared [`VersionState`]:
//! a [`WarehouseTxn`] stamps every table with the same `maintenanceVN` and
//! publishes the commit once; a [`WarehouseSession`] pins every table at the
//! same `sessionVN`, so queries spanning views stay mutually consistent.

use crate::error::{VnlError, VnlResult};
use crate::gc::{self, GcReport};
use crate::maintenance::MaintenanceTxn;
use crate::reader::ReaderSession;
use crate::table::VnlTable;
use crate::version::{VersionNo, VersionState};
use std::sync::Arc;
use wh_storage::IoStats;
use wh_types::Schema;

/// Builder for a fixed set of warehouse views.
pub struct WarehouseBuilder {
    version: Arc<VersionState>,
    io: Arc<IoStats>,
    tables: Vec<Arc<VnlTable>>,
}

impl WarehouseBuilder {
    /// Start a new warehouse definition.
    pub fn new() -> VnlResult<Self> {
        let io = Arc::new(IoStats::new());
        let version = Arc::new(VersionState::new(Arc::clone(&io))?);
        Ok(WarehouseBuilder {
            version,
            io,
            tables: Vec::new(),
        })
    }

    /// Add a view with `n` versions (tables in one warehouse may use
    /// different `n`; the session-liveness check uses each table's own).
    pub fn table(mut self, name: &str, schema: Schema, n: usize) -> VnlResult<Self> {
        if self.tables.iter().any(|t| t.name() == name) {
            return Err(VnlError::Sql(wh_sql::SqlError::TableExists(name.into())));
        }
        let table = VnlTable::create_shared(
            name,
            schema,
            n,
            Arc::clone(&self.version),
            Arc::clone(&self.io),
        )?;
        self.tables.push(Arc::new(table));
        Ok(self)
    }

    /// Finalize the warehouse.
    pub fn build(self) -> Warehouse {
        Warehouse {
            version: self.version,
            io: self.io,
            tables: self.tables,
        }
    }
}

impl std::fmt::Debug for WarehouseBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarehouseBuilder")
            .field("tables", &self.tables.len())
            .finish()
    }
}

/// A set of 2VNL/nVNL views sharing one global version state.
pub struct Warehouse {
    version: Arc<VersionState>,
    io: Arc<IoStats>,
    tables: Vec<Arc<VnlTable>>,
}

impl Warehouse {
    /// Look up a view by name.
    pub fn table(&self, name: &str) -> VnlResult<&VnlTable> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .map(Arc::as_ref)
            .ok_or_else(|| VnlError::Sql(wh_sql::SqlError::NoSuchTable(name.into())))
    }

    /// All views.
    pub fn tables(&self) -> impl Iterator<Item = &VnlTable> {
        self.tables.iter().map(Arc::as_ref)
    }

    /// The shared global version state.
    pub fn version(&self) -> &VersionState {
        &self.version
    }

    /// Shared logical-I/O counters.
    pub fn io(&self) -> &Arc<IoStats> {
        &self.io
    }

    /// Begin the warehouse-wide maintenance transaction: one
    /// `maintenanceVN` stamped on every view.
    pub fn begin_maintenance(&self) -> VnlResult<WarehouseTxn<'_>> {
        let vn = self.version.begin_maintenance()?;
        let txns = self
            .tables
            .iter()
            .map(|t| t.begin_maintenance_at(vn))
            .collect();
        Ok(WarehouseTxn {
            warehouse: self,
            vn,
            txns,
            finished: false,
        })
    }

    /// Begin a warehouse-wide reader session: every view pinned at the same
    /// `sessionVN`, so cross-view queries are mutually consistent.
    pub fn begin_session(&self) -> WarehouseSession<'_> {
        let vn = self.version.snapshot().current_vn;
        let sessions = self.tables.iter().map(|t| t.begin_session_at(vn)).collect();
        WarehouseSession {
            warehouse: self,
            vn,
            sessions,
        }
    }

    /// Garbage-collect every view (§7).
    pub fn collect_garbage(&self) -> VnlResult<GcReport> {
        let mut total = GcReport::default();
        for t in &self.tables {
            let r = gc::collect(t)?;
            total.scanned += r.scanned;
            total.deleted_found += r.deleted_found;
            total.reclaimed += r.reclaimed;
            total.bytes_reclaimed += r.bytes_reclaimed;
        }
        Ok(total)
    }
}

impl std::fmt::Debug for Warehouse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warehouse")
            .field("tables", &self.tables.len())
            .field("current_vn", &self.version.snapshot().current_vn)
            .finish()
    }
}

/// The warehouse-wide maintenance transaction.
pub struct WarehouseTxn<'w> {
    warehouse: &'w Warehouse,
    vn: VersionNo,
    txns: Vec<MaintenanceTxn<'w>>,
    finished: bool,
}

impl<'w> WarehouseTxn<'w> {
    /// This transaction's `maintenanceVN`.
    pub fn maintenance_vn(&self) -> VersionNo {
        self.vn
    }

    /// The per-view maintenance handle for `name`.
    pub fn on(&self, name: &str) -> VnlResult<&MaintenanceTxn<'w>> {
        let idx = self
            .warehouse
            .tables
            .iter()
            .position(|t| t.name() == name)
            .ok_or_else(|| VnlError::Sql(wh_sql::SqlError::NoSuchTable(name.into())))?;
        Ok(&self.txns[idx])
    }

    /// Commit the whole warehouse transaction: all per-view changes become
    /// visible atomically with the single `currentVN` flip (§4), retaining
    /// the merged net-effect batch across every view for session repair.
    pub fn commit(mut self) -> VnlResult<()> {
        // Capture before any txn flips to finished: a fault mid-capture
        // leaves every per-view txn open, so Drop rolls the whole
        // warehouse transaction back and nothing is published.
        let mut batch = crate::delta::DeltaBatch::empty(self.vn);
        for txn in &self.txns {
            let part = txn.capture_net_effect()?;
            batch.repairable &= part.repairable;
            batch.rows.extend(part.rows);
        }
        for txn in &self.txns {
            txn.commit_local()?;
        }
        self.finished = true;
        self.warehouse
            .version
            .publish_commit_with(self.vn, Some(batch))?;
        Ok(())
    }

    /// Abort the whole warehouse transaction (log-free rollback on every
    /// view, one flag flip).
    pub fn abort(mut self) -> VnlResult<()> {
        for txn in &self.txns {
            txn.abort_local()?;
        }
        self.finished = true;
        self.warehouse.version.publish_abort()?;
        Ok(())
    }
}

impl std::fmt::Debug for WarehouseTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarehouseTxn")
            .field("vn", &self.vn)
            .field("tables", &self.txns.len())
            .finish()
    }
}

impl Drop for WarehouseTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            for txn in &self.txns {
                let _ = txn.abort_local();
            }
            let _ = self.warehouse.version.publish_abort();
        }
    }
}

/// A warehouse-wide reader session.
pub struct WarehouseSession<'w> {
    warehouse: &'w Warehouse,
    vn: VersionNo,
    sessions: Vec<ReaderSession<'w>>,
}

impl<'w> WarehouseSession<'w> {
    /// The session's pinned version.
    pub fn session_vn(&self) -> VersionNo {
        self.vn
    }

    /// The per-view session for `name`.
    pub fn on(&self, name: &str) -> VnlResult<&ReaderSession<'w>> {
        let idx = self
            .warehouse
            .tables
            .iter()
            .position(|t| t.name() == name)
            .ok_or_else(|| VnlError::Sql(wh_sql::SqlError::NoSuchTable(name.into())))?;
        Ok(&self.sessions[idx])
    }

    /// Run a SELECT against whichever view its FROM clause names.
    pub fn query(&self, sql: &str) -> VnlResult<wh_sql::QueryResult> {
        let stmt = wh_sql::parse_statement(sql)?;
        let wh_sql::Statement::Select(select) = stmt else {
            return Err(VnlError::Sql(wh_sql::SqlError::Unsupported(
                "warehouse sessions are read-only".into(),
            )));
        };
        self.on(&select.from)?.query_stmt(&select)
    }

    /// End the session on every view.
    pub fn finish(self) {
        for s in self.sessions {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::{Column, DataType, Value};

    fn daily_schema() -> Schema {
        Schema::with_key_names(
            vec![
                Column::new("city", DataType::Char(16)),
                Column::updatable("total", DataType::Int64),
            ],
            &["city"],
        )
        .unwrap()
    }

    fn monthly_schema() -> Schema {
        Schema::with_key_names(
            vec![
                Column::new("product", DataType::Char(16)),
                Column::updatable("total", DataType::Int64),
            ],
            &["product"],
        )
        .unwrap()
    }

    fn warehouse() -> Warehouse {
        let w = WarehouseBuilder::new()
            .unwrap()
            .table("CitySales", daily_schema(), 2)
            .unwrap()
            .table("ProductSales", monthly_schema(), 2)
            .unwrap()
            .build();
        w.table("CitySales")
            .unwrap()
            .load_initial(&[vec![Value::from("SJ"), Value::from(100)]])
            .unwrap();
        w.table("ProductSales")
            .unwrap()
            .load_initial(&[vec![Value::from("golf"), Value::from(100)]])
            .unwrap();
        w
    }

    #[test]
    fn duplicate_table_rejected() {
        let err = WarehouseBuilder::new()
            .unwrap()
            .table("A", daily_schema(), 2)
            .unwrap()
            .table("A", monthly_schema(), 2)
            .unwrap_err();
        assert!(matches!(
            err,
            VnlError::Sql(wh_sql::SqlError::TableExists(_))
        ));
    }

    #[test]
    fn cross_view_atomic_commit() {
        let w = warehouse();
        let session = w.begin_session(); // sees (100, 100)
        let txn = w.begin_maintenance().unwrap();
        txn.on("CitySales")
            .unwrap()
            .update_row(&vec![Value::from("SJ"), Value::from(150)])
            .unwrap();
        txn.on("ProductSales")
            .unwrap()
            .update_row(&vec![Value::from("golf"), Value::from(150)])
            .unwrap();
        // Mid-transaction: the session reads old values from BOTH views.
        let a = session.query("SELECT total FROM CitySales").unwrap();
        let b = session.query("SELECT total FROM ProductSales").unwrap();
        assert_eq!(a.rows[0][0], Value::from(100));
        assert_eq!(b.rows[0][0], Value::from(100));
        txn.commit().unwrap();
        // Post-commit: STILL both old (same session) — never one-old-one-new.
        let a = session.query("SELECT total FROM CitySales").unwrap();
        let b = session.query("SELECT total FROM ProductSales").unwrap();
        assert_eq!(a.rows[0][0], Value::from(100));
        assert_eq!(b.rows[0][0], Value::from(100));
        session.finish();
        // A new session sees both new.
        let s2 = w.begin_session();
        let a = s2.query("SELECT total FROM CitySales").unwrap();
        let b = s2.query("SELECT total FROM ProductSales").unwrap();
        assert_eq!(a.rows[0][0], Value::from(150));
        assert_eq!(b.rows[0][0], Value::from(150));
        s2.finish();
    }

    #[test]
    fn warehouse_abort_rolls_back_every_view() {
        let w = warehouse();
        let txn = w.begin_maintenance().unwrap();
        txn.on("CitySales")
            .unwrap()
            .update_row(&vec![Value::from("SJ"), Value::from(999)])
            .unwrap();
        txn.on("ProductSales")
            .unwrap()
            .insert(vec![Value::from("tennis"), Value::from(5)])
            .unwrap();
        txn.abort().unwrap();
        let s = w.begin_session();
        assert_eq!(
            s.query("SELECT total FROM CitySales").unwrap().rows[0][0],
            Value::from(100)
        );
        assert_eq!(
            s.query("SELECT COUNT(*) FROM ProductSales").unwrap().rows[0][0],
            Value::from(1)
        );
        s.finish();
        // Version number unchanged; next txn reuses it.
        assert_eq!(w.begin_maintenance().unwrap().maintenance_vn(), 2);
    }

    #[test]
    fn single_global_version_across_views() {
        let w = warehouse();
        let txn = w.begin_maintenance().unwrap();
        assert_eq!(txn.maintenance_vn(), 2);
        txn.commit().unwrap();
        // Both tables observe the same currentVN through the shared state.
        assert_eq!(
            w.table("CitySales")
                .unwrap()
                .version()
                .snapshot()
                .current_vn,
            2
        );
        assert_eq!(
            w.table("ProductSales")
                .unwrap()
                .version()
                .snapshot()
                .current_vn,
            2
        );
        // One maintenance at a time, warehouse-wide.
        let t1 = w.begin_maintenance().unwrap();
        assert!(matches!(
            w.begin_maintenance().unwrap_err(),
            VnlError::MaintenanceAlreadyActive
        ));
        // Even directly on a member table.
        assert!(matches!(
            w.table("CitySales")
                .unwrap()
                .begin_maintenance()
                .unwrap_err(),
            VnlError::MaintenanceAlreadyActive
        ));
        t1.commit().unwrap();
    }

    #[test]
    fn dropped_warehouse_txn_auto_aborts() {
        let w = warehouse();
        {
            let txn = w.begin_maintenance().unwrap();
            txn.on("CitySales")
                .unwrap()
                .update_row(&vec![Value::from("SJ"), Value::from(1)])
                .unwrap();
        }
        assert!(!w.version().snapshot().maintenance_active);
        let s = w.begin_session();
        assert_eq!(
            s.query("SELECT total FROM CitySales").unwrap().rows[0][0],
            Value::from(100)
        );
        s.finish();
    }

    #[test]
    fn warehouse_gc_sweeps_all_views() {
        let w = warehouse();
        let txn = w.begin_maintenance().unwrap();
        txn.on("CitySales")
            .unwrap()
            .delete_row(&vec![Value::from("SJ"), Value::Null])
            .unwrap();
        txn.on("ProductSales")
            .unwrap()
            .delete_row(&vec![Value::from("golf"), Value::Null])
            .unwrap();
        txn.commit().unwrap();
        let report = w.collect_garbage().unwrap();
        assert_eq!(report.reclaimed, 2);
    }

    #[test]
    fn unknown_table_errors() {
        let w = warehouse();
        assert!(w.table("Nope").is_err());
        let s = w.begin_session();
        assert!(s.query("SELECT * FROM Nope").is_err());
        s.finish();
        let txn = w.begin_maintenance().unwrap();
        assert!(txn.on("Nope").is_err());
        txn.commit().unwrap();
    }
}
