//! The resilience layer end to end: leases racing GC, retried queries
//! matching an unexpired single-version run (property tested), pacer
//! policies under live maintenance, and the adaptive window interacting
//! with real sessions.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wh_types::{Column, DataType, Row, Schema, SplitMix64, Value};
use wh_vnl::{gc::Collector, MaintenancePacer, PacerPolicy, RetryPolicy, VnlError, VnlTable};

fn kv_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
        ],
        &["key"],
    )
    .unwrap()
}

fn kv_table(keys: i64, n: usize) -> VnlTable {
    let t = VnlTable::create_named("kv", kv_schema(), n).unwrap();
    let rows: Vec<Row> = (0..keys)
        .map(|k| vec![Value::from(k), Value::from(0)])
        .collect();
    t.load_initial(&rows).unwrap();
    t
}

#[test]
fn enriched_expiration_error_reports_current_vn_and_table() {
    let t = kv_table(4, 2);
    let session = t.begin_session(); // VN 1
    for v in [1, 2] {
        let txn = t.begin_maintenance().unwrap();
        txn.execute_sql(
            &format!("UPDATE kv SET value = {v}"),
            &wh_sql::Params::new(),
        )
        .unwrap();
        txn.commit().unwrap();
    }
    let err = session.scan().unwrap_err();
    match err {
        VnlError::SessionExpired {
            session_vn,
            current_vn,
            table,
        } => {
            assert_eq!(session_vn, 1);
            assert_eq!(current_vn, 3);
            assert_eq!(table.as_deref(), Some("kv"));
        }
        other => panic!("expected SessionExpired, got {other}"),
    }
    session.finish();
}

/// The GC-race satellite: a lease renewed at the same instant the collector
/// advances the horizon must either succeed or expire cleanly — never read
/// a reclaimed slot (which would surface as a wrong row count or a storage
/// error, not `SessionExpired`).
#[test]
fn lease_renewal_races_gc_horizon_advance() {
    let keys = 16i64;
    let t = Arc::new(kv_table(keys, 2));
    // Aggressive GC so horizon advances constantly while readers renew.
    let collector = Collector::spawn(Arc::clone(&t), Duration::from_micros(200));

    std::thread::scope(|s| {
        // Maintenance churn: a delete committed in one txn and the
        // re-insert in the next, so each pair leaves a logically-deleted
        // tuple for the collector to reclaim in between. (Delete+insert in
        // one txn would net to an update — no GC victim.)
        s.spawn(|| {
            for round in 0..60i64 {
                let txn = t.begin_maintenance().unwrap();
                let key = (round / 2) % keys;
                if round % 2 == 0 {
                    txn.delete_row(&vec![Value::from(key), Value::Null])
                        .unwrap();
                } else {
                    txn.insert(vec![Value::from(key), Value::from(round)])
                        .unwrap();
                }
                txn.commit().unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        // Renewing leased readers racing the collector. Fixed iteration
        // counts on every thread: no thread waits on another's progress, so
        // the test terminates even when parallel test binaries contend for
        // cores.
        for seed in 0..3u64 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(seed);
                for _ in 0..40 {
                    let session = t.begin_leased_session(Duration::from_millis(2));
                    // Interleave reads and renewals; every outcome must be
                    // either a clean result or a clean expiration.
                    for _ in 0..4 {
                        match session.scan() {
                            // At any committed VN either every key is live
                            // or exactly one delete awaits its re-insert.
                            Ok(rows) => assert!(
                                rows.len() == keys as usize || rows.len() == keys as usize - 1,
                                "impossible visible count {} at a pinned VN",
                                rows.len()
                            ),
                            Err(VnlError::SessionExpired { .. }) => break,
                            Err(e) => panic!("reader hit a non-expiration error: {e}"),
                        }
                        match session.renew_lease(Duration::from_millis(2)) {
                            Ok(()) => {}
                            Err(VnlError::SessionExpired { .. }) => break,
                            Err(e) => panic!("renewal hit a non-expiration error: {e}"),
                        }
                        if rng.chance(1, 4) {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                    session.finish();
                }
            });
        }
    });
    let reclaimed = collector.stop();
    assert!(reclaimed > 0, "the race never materialized: GC idle");
    // Ground truth after the dust settles: all keys present.
    let session = t.begin_session();
    assert_eq!(session.scan().unwrap().len(), keys as usize);
    session.finish();
}

/// The property-test satellite: under concurrent maintenance, a retried
/// query must return a result identical to some unexpired single-version
/// run — every committed version's expected aggregate is precomputable
/// here because each maintenance txn `g` sets all values to `g`.
#[test]
fn retried_queries_match_an_unexpired_single_version_run() {
    let keys = 24i64;
    for seed in 0..4u64 {
        let t = Arc::new(kv_table(keys, 2));
        let committed: Arc<Mutex<BTreeSet<i64>>> = Arc::new(Mutex::new(BTreeSet::from([0])));
        std::thread::scope(|s| {
            s.spawn(|| {
                for g in 1..=8i64 {
                    let txn = t.begin_maintenance().unwrap();
                    txn.execute_sql(
                        &format!("UPDATE kv SET value = {g}"),
                        &wh_sql::Params::new(),
                    )
                    .unwrap();
                    // Published value set grows before readers can see `g`.
                    committed.lock().unwrap().insert(g);
                    txn.commit().unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            // Fixed query counts so no reader waits on maintenance progress
            // (a sibling-driven `done` flag can livelock the whole test
            // binary when parallel tests oversubscribe the cores).
            for reader in 0..3u64 {
                let t = Arc::clone(&t);
                let committed = Arc::clone(&committed);
                s.spawn(move || {
                    let retry = RetryPolicy::default()
                        .with_max_attempts(32)
                        .with_seed(seed * 101 + reader);
                    for _ in 0..16 {
                        let res = retry
                            .query(&t, "SELECT COUNT(*), MIN(value), MAX(value) FROM kv")
                            .expect("32 attempts cover an 8-commit run");
                        let row = &res.rows[0];
                        assert_eq!(row[0], Value::from(keys), "row count off");
                        assert_eq!(row[1], row[2], "mixed-version rows in one result");
                        let v = row[1].as_int().unwrap();
                        assert!(
                            committed.lock().unwrap().contains(&v),
                            "value {v} was never a committed version's state"
                        );
                    }
                });
            }
        });
    }
}

/// Statement-level retry through the SQL path: a query that would die with
/// the session recovers transparently at a fresh VN.
#[test]
fn sql_query_retries_after_forced_expiration() {
    let t = kv_table(8, 2);
    // Use a raw session to verify the premise (it expires)...
    let stale = t.begin_session();
    for v in [5, 6] {
        let txn = t.begin_maintenance().unwrap();
        txn.execute_sql(
            &format!("UPDATE kv SET value = {v}"),
            &wh_sql::Params::new(),
        )
        .unwrap();
        txn.commit().unwrap();
    }
    assert!(matches!(
        stale.query("SELECT SUM(value) FROM kv"),
        Err(VnlError::SessionExpired { .. })
    ));
    stale.finish();
    // ...then the policy reads the settled state.
    let res = RetryPolicy::default()
        .query(&t, "SELECT SUM(value) FROM kv")
        .unwrap();
    assert_eq!(res.rows[0][0], Value::from(48));
}

/// Pacing + adaptive window cooperating with real leased readers: a
/// `BoundedDelay` pacer lets a short-lived lease finish, and widening the
/// effective window (within physical slots) readmits a trailing session.
#[test]
fn pacer_and_adaptive_window_cooperate_with_leased_readers() {
    let t = kv_table(8, 4);
    t.set_effective_n(2);
    let leased = t.begin_leased_session(Duration::from_millis(500)); // VN 1
    let txn = t.begin_maintenance().unwrap();
    txn.commit().unwrap(); // VN 2

    // VN 3 would strand the lease under n_eff = 2; the pacer waits while a
    // helper thread finishes the reader's work and releases the lease.
    let txn = t.begin_maintenance().unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(2));
            assert_eq!(leased.scan().unwrap().len(), 8);
            leased.finish();
        });
        let report = MaintenancePacer::new(PacerPolicy::Never)
            .with_poll(Duration::from_micros(200))
            .commit(txn)
            .unwrap();
        assert_eq!(report.at_risk_before, 1);
        assert_eq!(report.expired_through, 0);
    });
    // A session left behind by two commits is readmitted when the window
    // grows — the physical slots (n = 4) still hold its versions.
    let trailing = t.begin_session(); // VN 3
    for _ in 0..2 {
        let txn = t.begin_maintenance().unwrap();
        txn.commit().unwrap();
    }
    assert!(trailing.assert_live().is_err(), "n_eff = 2 expires it");
    t.set_effective_n(4);
    assert!(trailing.assert_live().is_ok(), "n_eff = 4 readmits it");
    assert_eq!(trailing.scan().unwrap().len(), 8);
    trailing.finish();
}

/// `ExpireOldest` is observable from the reader side: the revoked session
/// fails its next renewal with the enriched expiration error.
#[test]
fn revoked_lease_surfaces_on_renewal() {
    let t = kv_table(4, 2);
    let leased = t.begin_leased_session(Duration::from_secs(5)); // VN 1
    let txn = t.begin_maintenance().unwrap();
    txn.commit().unwrap(); // VN 2
    let txn = t.begin_maintenance().unwrap(); // publishing VN 3 strands it
    let report = MaintenancePacer::new(PacerPolicy::ExpireOldest)
        .commit(txn)
        .unwrap();
    assert_eq!(report.revoked, 1);
    assert!(leased.lease_revoked());
    assert!(matches!(
        leased.renew_lease(Duration::from_secs(5)),
        Err(VnlError::SessionExpired { .. })
    ));
    leased.finish();
}
