//! The parallel partitioned scan pipeline must be *indistinguishable* from
//! the serial one: same Table 1 semantics at every live sessionVN, same
//! rows, same expiration behavior — under random histories and under
//! concurrent maintenance and GC.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use wh_sql::Params;
use wh_types::rng::SplitMix64;
use wh_types::{Column, DataType, Row, Schema, Value};
use wh_vnl::{gc, ScanPipeline, VnlError, VnlTable};

fn kv_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("k", DataType::Int32),
            Column::updatable("v", DataType::Int32),
        ],
        &["k"],
    )
    .unwrap()
}

fn kv(k: i64, v: i64) -> Row {
    vec![Value::from(k), Value::from(v)]
}

/// Sort rows into a canonical order so unordered-collection comparisons
/// are well-defined.
fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

/// Collect a parallel scan's rows (any interleaving) into one Vec.
fn collect_parallel(s: &wh_vnl::ReaderSession<'_>, threads: usize) -> Result<Vec<Row>, VnlError> {
    let rows = Mutex::new(Vec::new());
    s.scan_parallel(threads, |_, row| {
        rows.lock().unwrap().push(row);
        Ok(())
    })?;
    Ok(rows.into_inner().unwrap())
}

/// Drive `generations` random maintenance transactions over an nVNL table,
/// pinning a session at every version along the way, then check that for
/// every still-live session the parallel scan (at several thread counts)
/// returns exactly the serial scan's rows — projected variants included.
fn random_history_agrees(seed: u64, n: usize, generations: usize) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let t = VnlTable::create_named("kv", kv_schema(), n).unwrap();
    let keys: i64 = 40;
    t.load_initial(&(0..keys).map(|k| kv(k, 0)).collect::<Vec<_>>())
        .unwrap();

    // Sessions pinned at every generation; prune the ones that expire.
    let mut sessions = vec![t.begin_session()];
    for g in 1..=generations {
        let txn = t.begin_maintenance().unwrap();
        for _ in 0..rng.range_i64(1, 12) {
            let k = rng.range_i64(0, keys);
            let alive = txn.read_current(&kv(k, 0)).unwrap().is_some();
            match (alive, rng.range_i64(0, 3)) {
                (true, 0) => txn.delete_row(&kv(k, 0)).unwrap(),
                (true, _) => txn.update_row(&kv(k, g as i64)).unwrap(),
                (false, _) => txn.insert(kv(k, g as i64)).unwrap(),
            }
        }
        txn.commit().unwrap();
        sessions.push(t.begin_session());
    }

    for mut s in sessions {
        // The scalar (byte-at-a-time) pipeline is the oracle; the batched
        // pipeline must agree with it verdict-for-verdict, rows included.
        s.set_pipeline(ScanPipeline::Scalar);
        let serial = match s.scan() {
            Ok(rows) => rows,
            Err(VnlError::SessionExpired { .. }) => {
                // Expired on the scalar path must expire everywhere.
                s.set_pipeline(ScanPipeline::Batched);
                assert!(matches!(s.scan(), Err(VnlError::SessionExpired { .. })));
                assert!(matches!(s.count(), Err(VnlError::SessionExpired { .. })));
                for threads in [2, 4] {
                    assert!(matches!(
                        collect_parallel(&s, threads),
                        Err(VnlError::SessionExpired { .. })
                    ));
                }
                continue;
            }
            Err(e) => panic!("serial scan failed: {e}"),
        };
        let serial_canon = canon(serial.clone());
        s.set_pipeline(ScanPipeline::Batched);
        assert_eq!(
            canon(s.scan().unwrap()),
            serial_canon,
            "batched scan diverged: seed={seed} n={n} vn={}",
            s.session_vn()
        );
        assert_eq!(
            s.count().unwrap() as usize,
            serial.len(),
            "classify-only count diverged: seed={seed} n={n} vn={}",
            s.session_vn()
        );
        for threads in [1, 2, 4, 7] {
            let parallel = collect_parallel(&s, threads).unwrap();
            assert_eq!(
                canon(parallel),
                serial_canon,
                "seed={seed} n={n} threads={threads} vn={}",
                s.session_vn()
            );
        }
        // Projection pushdown: v-only, and reordered (v, k).
        let mut v_only = Vec::new();
        s.scan_projected_with(&[1], |r| {
            v_only.push(r);
            Ok(())
        })
        .unwrap();
        assert_eq!(
            canon(v_only),
            canon(serial.iter().map(|r| vec![r[1].clone()]).collect())
        );
        let reordered = s.scan_projected(&[1, 0]).unwrap();
        assert_eq!(
            canon(reordered),
            canon(
                serial
                    .iter()
                    .map(|r| vec![r[1].clone(), r[0].clone()])
                    .collect()
            )
        );
        // The SQL paths agree too: serial executor vs parallel executor.
        let q = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM kv";
        assert_eq!(
            s.query(q).unwrap(),
            s.query_parallel(q, 4).unwrap(),
            "seed={seed} vn={}",
            s.session_vn()
        );
        // WHERE pushdown: on the batched pipeline both conjuncts run
        // inside the classify kernel (v is updatable, so Pre(j) records
        // test their pre-update image); the scalar pipeline evaluates the
        // same predicate in the executor. Row sets must match exactly.
        let filtered = "SELECT k, v FROM kv WHERE v >= 3 AND k < 30";
        let pushed_serial = s.query(filtered).unwrap();
        let pushed_parallel = s.query_parallel(filtered, 4).unwrap();
        s.set_pipeline(ScanPipeline::Scalar);
        let oracle = s.query(filtered).unwrap();
        assert_eq!(
            canon(pushed_serial.rows),
            canon(oracle.rows.clone()),
            "pushdown diverged: seed={seed} n={n} vn={}",
            s.session_vn()
        );
        assert_eq!(
            canon(pushed_parallel.rows),
            canon(oracle.rows),
            "parallel pushdown diverged: seed={seed} n={n} vn={}",
            s.session_vn()
        );
    }
}

#[test]
fn parallel_scan_equals_serial_on_random_histories_2vnl() {
    for seed in 0..8 {
        random_history_agrees(0xE18_0000 + seed, 2, 12);
    }
}

#[test]
fn parallel_scan_equals_serial_on_random_histories_nvnl() {
    for (seed, n) in [(1u64, 3usize), (2, 4), (3, 3), (4, 4)] {
        random_history_agrees(0xE18_1000 + seed, n, 16);
    }
}

/// Stress: parallel scans run while maintenance transactions and GC churn
/// the heap. Every transaction rewrites all keys to one generation value,
/// so any successful scan must observe a *consistent snapshot*: all rows
/// carry the same generation, and the row count equals the key count.
/// The only acceptable failure is honest expiration.
#[test]
fn parallel_scans_stay_consistent_under_maintenance_and_gc() {
    let t = std::sync::Arc::new(VnlTable::create_named("kv", kv_schema(), 2).unwrap());
    let keys: i64 = 32;
    t.load_initial(&(0..keys).map(|k| kv(k, 0)).collect::<Vec<_>>())
        .unwrap();

    let stop = AtomicBool::new(false);
    let scans_ok = std::sync::atomic::AtomicU64::new(0);
    let expirations = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Writer: each generation updates every key's value to g in one txn.
        let writer = {
            let t = &t;
            let stop = &stop;
            scope.spawn(move || {
                for g in 1..200i64 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let txn = t.begin_maintenance().unwrap();
                    // Mix deletes/reinserts in so GC has real work.
                    if g % 5 == 0 {
                        txn.delete_row(&kv(g % keys, 0)).unwrap();
                        txn.insert(kv(g % keys, g)).unwrap();
                    }
                    txn.execute_sql(&format!("UPDATE kv SET v = {g}"), &Params::new())
                        .unwrap();
                    txn.commit().unwrap();
                }
            })
        };
        // GC daemon sweeps aggressively the whole time.
        let collector = {
            let t = &t;
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    gc::collect(t).unwrap();
                    std::thread::yield_now();
                }
            })
        };
        // Readers: short sessions running 4-way parallel scans.
        for _ in 0..2 {
            let t = &t;
            let stop = &stop;
            let scans_ok = &scans_ok;
            let expirations = &expirations;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = t.begin_session();
                    let rows = Mutex::new(Vec::new());
                    match s.scan_parallel(4, |_, row| {
                        rows.lock().unwrap().push(row);
                        Ok(())
                    }) {
                        Ok(()) => {
                            let rows = rows.into_inner().unwrap();
                            // Table 1 invariants: a consistent snapshot.
                            assert_eq!(rows.len() as i64, keys, "snapshot lost rows");
                            let gens: BTreeSet<String> =
                                rows.iter().map(|r| format!("{:?}", r[1])).collect();
                            let ks: BTreeSet<String> =
                                rows.iter().map(|r| format!("{:?}", r[0])).collect();
                            assert_eq!(ks.len() as i64, keys, "duplicate keys in snapshot");
                            // Every committed generation writes ALL keys to
                            // one value, so a Table-1-consistent snapshot is
                            // single-generation.
                            assert_eq!(gens.len(), 1, "snapshot mixes generations: {gens:?}");
                            scans_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(VnlError::SessionExpired { .. }) => {
                            expirations.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("scan failed: {e}"),
                    }
                    s.finish();
                }
            });
        }
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        collector.join().unwrap();
    });

    assert!(
        scans_ok.load(Ordering::Relaxed) > 0,
        "stress produced no successful scans (expirations: {})",
        expirations.load(Ordering::Relaxed)
    );
}
