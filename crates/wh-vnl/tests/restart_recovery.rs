//! Restart recovery: a process dies mid-maintenance with leased readers
//! attached, every in-memory structure is dropped, and the warehouse comes
//! back from the disk artifacts alone — the page store and the checkpoint
//! metadata. No write-ahead log exists to replay: §7's slot reconstruction
//! *is* the redo/undo story, and these tests hold it to the same
//! zero-wrong-answer standard as the in-process recovery suite.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wh_types::{Column, DataType, Schema, Value};
use wh_vnl::{checkpoint, create_durable, recover, recover_from_disk};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — unique-name counter only
    let dir = std::env::temp_dir().join(format!("wh-restart-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("k", DataType::Int64),
            Column::updatable("v", DataType::Int64),
        ],
        &["k"],
    )
    .unwrap()
}

fn row(k: i64, v: i64) -> Vec<Value> {
    vec![Value::from(k), Value::from(v)]
}

/// `(k, v)` pairs a session actually serves, via real reads.
fn served(session: &wh_vnl::ReaderSession<'_>) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = session
        .scan()
        .unwrap()
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    rows.sort_unstable();
    rows
}

/// The headline scenario: leased readers and a maintenance transaction are
/// both live, a fuzzy checkpoint lands mid-maintenance, the steal policy
/// pushes the transaction's dirty pages to disk — and then the process
/// dies. Recovery must serve exactly the checkpointed state: every answer
/// a post-restart reader gets equals the answer the pre-crash reader was
/// entitled to, key by key.
#[test]
fn leased_workload_restarts_with_zero_wrong_answers() {
    let dir = temp_dir("workload");
    let table = create_durable("T", schema(), 3, &dir, 2).unwrap();
    let initial: Vec<Vec<Value>> = (0..8).map(|k| row(k, k * 10)).collect();
    table.load_initial(&initial).unwrap();

    // VN 2 commits and is checkpointed: the durable baseline.
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(0, 1000)).unwrap();
    txn.delete_row(&row(1, 0)).unwrap();
    txn.insert(row(100, 111)).unwrap();
    txn.commit().unwrap();
    checkpoint(&table).unwrap();

    // A leased reader pinned to VN 2 records the answers it is served.
    let reader = table.begin_leased_session(Duration::from_secs(60));
    assert_eq!(reader.session_vn(), 2);
    let entitled = served(&reader);

    // VN 3 in flight: more maintenance, a mid-maintenance fuzzy checkpoint
    // (no quiescing — reader and writer both live), and a steal-policy
    // flush that pushes the uncommitted work to disk.
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(2, 2222)).unwrap();
    txn.delete_row(&row(4, 0)).unwrap();
    txn.insert(row(101, 222)).unwrap();
    let stats = checkpoint(&table).unwrap();
    assert_eq!(stats.checkpoint_vn, 2, "fuzzy snapshot precedes the flush");
    table.storage().heap().flush_all().unwrap();
    assert_eq!(served(&reader), entitled, "reader unperturbed by the flush");

    // Crash: the transaction's undo map, the reader's lease, the buffer
    // pool, the version state — all of it gone. Only the disk remains.
    std::mem::forget(txn);
    drop(reader);
    drop(table);

    // No log file to replay — the page store and checkpoint meta are the
    // *only* artifacts on disk.
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(
        files,
        vec![
            wh_storage::META_FILE.to_string(),
            wh_storage::PAGES_FILE.to_string()
        ],
        "durable tier must consist of pages + checkpoint meta, nothing else"
    );

    let (reopened, report) = recover_from_disk("T", schema(), 3, &dir, 2).unwrap();
    assert_eq!(report.checkpoint_vn, 2);
    assert!(report.maintenance_was_active);
    assert!(
        report.recovery.pending_found > 0,
        "the steal flush must have put rollback work on disk"
    );
    assert_eq!(report.recovery.log_writes, 0, "recovery is log-free");
    assert!(!reopened.version().snapshot().maintenance_active);

    // Zero wrong answers: a reconnecting reader is served exactly what the
    // pre-crash reader was entitled to — scan and key probes agree.
    let reader = reopened.begin_leased_session(Duration::from_secs(60));
    assert_eq!(reader.session_vn(), 2);
    assert_eq!(served(&reader), entitled);
    for &(k, v) in &entitled {
        let got = reader.read_by_key(&row(k, 0)).unwrap().unwrap();
        assert_eq!(got[1], Value::from(v), "key {k}");
    }
    // The crashed transaction's work is invisible in every form.
    assert!(reader.read_by_key(&row(101, 0)).unwrap().is_none());
    assert!(reader.read_by_key(&row(4, 0)).unwrap().is_some());

    // And the recovered table immediately supports a full new cycle:
    // maintenance, checkpoint, restart — the recovered state is a real
    // warehouse, not a read-only reconstruction.
    drop(reader);
    let txn = reopened.begin_maintenance().unwrap();
    txn.update_row(&row(2, 3333)).unwrap();
    txn.commit().unwrap();
    checkpoint(&reopened).unwrap();
    drop(reopened);
    let (again, report) = recover_from_disk("T", schema(), 3, &dir, 2).unwrap();
    assert_eq!(report.checkpoint_vn, 3);
    let reader = again.begin_session();
    assert_eq!(
        reader.read_by_key(&row(2, 0)).unwrap().unwrap()[1],
        Value::from(3333)
    );
    drop(reader);
    drop(again);
    std::fs::remove_dir_all(&dir).ok();
}

/// The recovery fence crosses the restart boundary. In 2VNL a mid-flight
/// update destroys the tuple's only saved slot; restart recovery
/// reconstructs it as `(V, update, PV ← CV)` — exact only at `currentVN` —
/// and must raise the fence so no session below it can be served the
/// reconstructed guess. The fence also round-trips through a subsequent
/// checkpoint: a second restart still refuses what the first could not
/// serve exactly.
#[test]
fn recovery_fence_survives_restart_and_recheckpoint() {
    let dir = temp_dir("fence");
    let table = create_durable("T", schema(), 2, &dir, 2).unwrap();
    table.load_initial(&[row(0, 10), row(1, 11)]).unwrap();
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(0, 100)).unwrap();
    txn.commit().unwrap(); // VN 2: slot 0 holds (2, update, 10)
    checkpoint(&table).unwrap();

    // Crash a VN 3 update after it overwrote the only slot: the true
    // content (2, update, 10) is destroyed on disk too once stolen.
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(0, 200)).unwrap();
    table.storage().heap().flush_all().unwrap();
    std::mem::forget(txn);
    drop(table);

    let (reopened, report) = recover_from_disk("T", schema(), 2, &dir, 2).unwrap();
    assert_eq!(report.recovery.reconstructed_slots, 1);
    assert_eq!(
        report.recovery.exact_horizon, 2,
        "the reconstructed slot serves only sessions at currentVN"
    );
    assert_eq!(
        reopened.version().recovery_floor(),
        2,
        "the fence must rise before the reconstructed tuple is served"
    );
    // A session at the fence reads the rolled-back committed state.
    let session = reopened.begin_session();
    assert_eq!(
        session.read_by_key(&row(0, 0)).unwrap().unwrap()[1],
        Value::from(100)
    );
    drop(session);

    // The fence round-trips: checkpoint the recovered table, restart
    // again, and the floor is still up even though this recovery pass
    // itself found nothing to reconstruct.
    checkpoint(&reopened).unwrap();
    drop(reopened);
    let (again, report) = recover_from_disk("T", schema(), 2, &dir, 2).unwrap();
    assert_eq!(report.recovery.pending_found, 0);
    assert_eq!(
        again.version().recovery_floor(),
        2,
        "a persisted fence survives a clean restart"
    );
    drop(again);
    std::fs::remove_dir_all(&dir).ok();
}

/// Commits after the last checkpoint are lost on restart — a bounded
/// durability lag, never corruption: the recovered state is exactly the
/// checkpointed version, and the lost transaction leaves no trace a reader
/// could observe.
#[test]
fn uncheckpointed_commits_are_lost_cleanly() {
    let dir = temp_dir("lag");
    let table = create_durable("T", schema(), 2, &dir, 4).unwrap();
    table.load_initial(&[row(0, 10), row(1, 11)]).unwrap();
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(0, 100)).unwrap();
    txn.commit().unwrap(); // VN 2
    checkpoint(&table).unwrap();

    // VN 3 commits in memory and its pages even reach disk — but no
    // checkpoint records it, so the commit point was never durable.
    let txn = table.begin_maintenance().unwrap();
    txn.update_row(&row(0, 1000)).unwrap();
    txn.insert(row(2, 22)).unwrap();
    txn.commit().unwrap();
    table.storage().heap().flush_all().unwrap();
    drop(table);

    let (reopened, report) = recover_from_disk("T", schema(), 2, &dir, 4).unwrap();
    assert_eq!(report.checkpoint_vn, 2);
    assert_eq!(reopened.version().snapshot().current_vn, 2);
    assert_eq!(reopened.gc_reclaim_ceiling(), 2);
    let session = reopened.begin_session();
    assert_eq!(
        session.read_by_key(&row(0, 0)).unwrap().unwrap()[1],
        Value::from(100),
        "the VN 3 update is rolled back, not half-applied"
    );
    assert!(
        session.read_by_key(&row(2, 0)).unwrap().is_none(),
        "the VN 3 insert is gone without residue"
    );
    drop(session);
    // A second recovery pass agrees: nothing left pending.
    let second = recover(&reopened).unwrap();
    assert_eq!(second.pending_found, 0);
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
}
