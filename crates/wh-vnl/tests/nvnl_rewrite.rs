//! §5 × §4: the generalized nVNL query rewrite must agree with programmatic
//! slot extraction for sessions overlapping up to n − 1 maintenance
//! transactions, on arbitrary histories.

use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, SplitMix64, Value};
use wh_vnl::VnlTable;

fn row(city: &str, v: i64) -> Row {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from("golf equip"),
        Value::from(Date::ymd(1996, 10, 14)),
        Value::from(v),
    ]
}

const CITIES: [&str; 5] = ["A", "B", "C", "D", "E"];

/// Apply one batch of (city, op, value) tuples, ignoring invalid
/// transitions (proptest generates arbitrary op sequences).
fn apply_batch(table: &VnlTable, batch: &[(usize, usize, i64)]) {
    let txn = table.begin_maintenance().unwrap();
    for &(c, op, v) in batch {
        let r = row(CITIES[c], v);
        match op {
            0 => {
                let _ = txn.insert(r);
            }
            1 => {
                let _ = txn.update_row(&r);
            }
            _ => {
                let _ = txn.delete_row(&r);
            }
        }
    }
    txn.commit().unwrap();
}

fn check_equivalence(n: usize, batches: Vec<Vec<(usize, usize, i64)>>) {
    let table = VnlTable::create_named("DailySales", daily_sales_schema(), n).unwrap();
    table.load_initial(&[row("A", 10), row("B", 20)]).unwrap();
    // First batch commits before the session begins.
    let mut iter = batches.into_iter();
    if let Some(first) = iter.next() {
        apply_batch(&table, &first);
    }
    let session = table.begin_session();
    // Up to n - 1 further batches: the session stays live throughout.
    for batch in iter.take(n - 1) {
        apply_batch(&table, &batch);
        let sql =
            "SELECT city, SUM(total_sales), COUNT(*) FROM DailySales GROUP BY city ORDER BY city";
        let a = session.query(sql).expect("extraction path");
        let b = session.query_via_rewrite(sql).expect("rewrite path");
        assert_eq!(a.rows, b.rows, "paths diverged (n={n})");
    }
    session.finish();
}

fn random_batches(rng: &mut SplitMix64, max_batches: u64) -> Vec<Vec<(usize, usize, i64)>> {
    (0..rng.range_inclusive_u64(1, max_batches))
        .map(|_| {
            (0..rng.range_inclusive_u64(1, 11))
                .map(|_| (rng.index(5), rng.index(3), rng.range_i64(0, 1000)))
                .collect()
        })
        .collect()
}

#[test]
fn rewrite_matches_extraction_3vnl() {
    let mut rng = SplitMix64::seed_from_u64(0x3711_0001);
    for _ in 0..48 {
        check_equivalence(3, random_batches(&mut rng, 2));
    }
}

#[test]
fn rewrite_matches_extraction_4vnl() {
    let mut rng = SplitMix64::seed_from_u64(0x3711_0002);
    for _ in 0..48 {
        check_equivalence(4, random_batches(&mut rng, 3));
    }
}

#[test]
fn deterministic_4vnl_multi_overlap() {
    // A hand-built worst case: one tuple touched by every overlapping
    // transaction, exercising every CASE branch of the 4VNL rewrite.
    let table = VnlTable::create_named("DailySales", daily_sales_schema(), 4).unwrap();
    table.load_initial(&[row("A", 100), row("B", 7)]).unwrap();
    let session = table.begin_session(); // VN 1
    for v in [200, 300, 400] {
        let txn = table.begin_maintenance().unwrap();
        txn.update_row(&row("A", v)).unwrap();
        txn.commit().unwrap();
        let sql = "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY city";
        let a = session.query(sql).unwrap();
        let b = session.query_via_rewrite(sql).unwrap();
        assert_eq!(a.rows, b.rows);
        // The pinned session always answers with the VN-1 value.
        assert_eq!(a.rows[0][1], Value::from(100));
    }
    session.finish();
    // Freshest state visible to a new session.
    let s2 = table.begin_session();
    let r = s2
        .query_via_rewrite("SELECT SUM(total_sales) FROM DailySales WHERE city = 'A'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from(400));
    s2.finish();
}

#[test]
fn rewrite_detects_expiration_via_global_check() {
    // 3VNL session overlapping 3 maintenance txns: the rewrite path must
    // refuse to hand back (possibly wrong) results.
    let table = VnlTable::create_named("DailySales", daily_sales_schema(), 3).unwrap();
    table.load_initial(&[row("A", 1)]).unwrap();
    let session = table.begin_session();
    for v in [2, 3, 4] {
        let txn = table.begin_maintenance().unwrap();
        txn.update_row(&row("A", v)).unwrap();
        txn.commit().unwrap();
    }
    assert!(matches!(
        session.query_via_rewrite("SELECT SUM(total_sales) FROM DailySales"),
        Err(wh_vnl::VnlError::SessionExpired { .. })
    ));
    session.finish();
}
