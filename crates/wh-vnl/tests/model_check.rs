//! Model check: nVNL against a reference MVCC model.
//!
//! A simple in-memory multi-version model (per key, the full list of
//! `(commitVN, state)` changes) is the ground truth. Random batches of
//! valid operations are applied to both the model and a [`VnlTable`]
//! (n ∈ {2, 3, 4}); afterwards, **every session version within the nVNL
//! guarantee window** must see exactly the model's state at that version.
//! This exercises visibility (Table 1/§5), the maintenance decision tables
//! (Tables 2–4), net effects, and slot push-back together.

use std::collections::HashMap;
use wh_types::{Column, DataType, Row, Schema, SplitMix64, Value};
use wh_vnl::VnlTable;

fn schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("k", DataType::Int64),
            Column::updatable("v", DataType::Int64),
        ],
        &["k"],
    )
    .unwrap()
}

/// Reference model: per key, the committed history of values.
#[derive(Default)]
struct Model {
    /// key -> [(commit_vn, Some(value) | None-for-deleted)]
    history: HashMap<i64, Vec<(u64, Option<i64>)>>,
}

impl Model {
    fn state_at(&self, key: i64, vn: u64) -> Option<i64> {
        let h = self.history.get(&key)?;
        h.iter()
            .rev()
            .find(|&&(cvn, _)| cvn <= vn)
            .and_then(|&(_, v)| v)
    }

    fn live_at(&self, vn: u64) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = self
            .history
            .keys()
            .filter_map(|&k| self.state_at(k, vn).map(|v| (k, v)))
            .collect();
        out.sort_unstable();
        out
    }

    fn record(&mut self, key: i64, vn: u64, state: Option<i64>) {
        let h = self.history.entry(key).or_default();
        // Within one transaction (same vn), later ops replace the entry —
        // the model sees net effects by construction.
        if let Some(last) = h.last_mut() {
            if last.0 == vn {
                last.1 = state;
                return;
            }
        }
        h.push((vn, state));
    }
}

/// One raw op: (key, op-kind, value).
type RawOp = (i64, u8, i64);

fn run_history(n: usize, batches: Vec<Vec<RawOp>>) {
    let table = VnlTable::create_named("T", schema(), n).unwrap();
    let mut model = Model::default();
    // Initial load at VN 1.
    for k in 0..3i64 {
        table
            .load_initial(&[vec![Value::from(k), Value::from(k * 100)]])
            .unwrap();
        model.record(k, 1, Some(k * 100));
    }
    let mut current_vn = 1u64;
    for batch in batches {
        let txn = table.begin_maintenance().unwrap();
        let vn = txn.maintenance_vn();
        // Track this txn's uncommitted view to pre-validate operations
        // (the model plus this transaction's own net effects).
        let mut pending: HashMap<i64, Option<i64>> = HashMap::new();
        let visible = |model: &Model, pending: &HashMap<i64, Option<i64>>, k: i64| {
            pending
                .get(&k)
                .copied()
                .unwrap_or_else(|| model.state_at(k, current_vn))
        };
        for (k, op, v) in batch {
            let row: Row = vec![Value::from(k), Value::from(v)];
            match op % 3 {
                0 => {
                    // insert: valid iff currently absent.
                    if visible(&model, &pending, k).is_none() {
                        txn.insert(row).unwrap();
                        pending.insert(k, Some(v));
                    } else {
                        assert!(txn.insert(row).is_err(), "insert over live key {k}");
                    }
                }
                1 => {
                    // update: valid iff currently present.
                    if visible(&model, &pending, k).is_some() {
                        txn.update_row(&row).unwrap();
                        pending.insert(k, Some(v));
                    } else {
                        assert!(txn.update_row(&row).is_err(), "update of absent key {k}");
                    }
                }
                _ => {
                    // delete: valid iff currently present.
                    if visible(&model, &pending, k).is_some() {
                        txn.delete_row(&row).unwrap();
                        pending.insert(k, None);
                    } else {
                        assert!(txn.delete_row(&row).is_err(), "delete of absent key {k}");
                    }
                }
            }
        }
        txn.commit().unwrap();
        current_vn = vn;
        for (k, state) in pending {
            model.record(k, vn, state);
        }

        // Verify every session version inside the guarantee window.
        let oldest = current_vn.saturating_sub(n as u64 - 1).max(1);
        for svn in oldest..=current_vn {
            let expected = model.live_at(svn);
            let got: Vec<(i64, i64)> = {
                let mut rows: Vec<(i64, i64)> = table
                    .scan_raw()
                    .unwrap()
                    .iter()
                    .filter_map(|(_, ext)| {
                        match wh_vnl::visibility::extract(table.layout(), ext, svn) {
                            wh_vnl::Visible::Row(r) => {
                                Some((r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                            }
                            wh_vnl::Visible::Ignore => None,
                            wh_vnl::Visible::Expired => {
                                panic!("session {svn} inside the window must not expire (currentVN {current_vn}, n {n})")
                            }
                        }
                    })
                    .collect();
                rows.sort_unstable();
                rows
            };
            assert_eq!(
                got, expected,
                "divergence at sessionVN {svn} (currentVN {current_vn}, n {n})"
            );
        }
    }
}

fn random_batches(rng: &mut SplitMix64) -> Vec<Vec<RawOp>> {
    (0..rng.range_inclusive_u64(1, 5))
        .map(|_| {
            (0..rng.range_inclusive_u64(1, 9))
                .map(|_| {
                    (
                        rng.range_i64(0, 6),
                        rng.next_u64() as u8,
                        rng.range_i64(0, 10_000),
                    )
                })
                .collect()
        })
        .collect()
}

#[test]
fn vnl2_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x0DE1_0002);
    for _ in 0..48 {
        run_history(2, random_batches(&mut rng));
    }
}

#[test]
fn vnl3_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x0DE1_0003);
    for _ in 0..48 {
        run_history(3, random_batches(&mut rng));
    }
}

#[test]
fn vnl4_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x0DE1_0004);
    for _ in 0..48 {
        run_history(4, random_batches(&mut rng));
    }
}

#[test]
fn model_check_regression_delete_insert_chains() {
    // Deterministic seed of the trickiest shapes: delete→insert (same and
    // different txns), insert→delete, double update.
    run_history(
        2,
        vec![
            vec![(0, 2, 0), (0, 0, 7), (1, 1, 5), (1, 1, 6)],
            vec![(0, 1, 8), (2, 2, 0)],
            vec![(2, 0, 9), (2, 2, 0), (3, 0, 1)],
            vec![(3, 2, 0), (3, 0, 2)],
        ],
    );
    run_history(
        4,
        vec![
            vec![(0, 2, 0)],
            vec![(0, 0, 7)],
            vec![(0, 1, 8)],
            vec![(0, 2, 0)],
            vec![(0, 0, 9)],
        ],
    );
}
