//! Edge cases around the 2VNL lifecycle: empty relations, empty
//! transactions, keyless relations, and boundary schemas.

use wh_sql::Params;
use wh_types::{Column, DataType, Schema, Value};
use wh_vnl::{gc, ReadOutcome, VnlError, VnlTable};

fn keyless_schema() -> Schema {
    Schema::new(vec![
        Column::new("tag", DataType::Char(4)),
        Column::updatable("v", DataType::Int64),
    ])
    .unwrap()
}

#[test]
fn empty_table_supports_everything() {
    let t = VnlTable::create_named("T", keyless_schema(), 2).unwrap();
    let s = t.begin_session();
    assert!(s.scan().unwrap().is_empty());
    assert_eq!(
        s.query("SELECT COUNT(*) FROM T").unwrap().rows[0][0],
        Value::from(0)
    );
    assert_eq!(
        s.query_via_rewrite("SELECT SUM(v) FROM T").unwrap().rows[0][0],
        Value::Null
    );
    s.finish();
    assert_eq!(gc::collect(&t).unwrap().scanned, 0);
}

#[test]
fn empty_maintenance_transaction_still_advances_the_version() {
    let t = VnlTable::create_named("T", keyless_schema(), 2).unwrap();
    let old = t.begin_session();
    let txn = t.begin_maintenance().unwrap();
    txn.commit().unwrap();
    assert_eq!(t.version().snapshot().current_vn, 2);
    // The old session is still live (one overlap) and sees nothing change.
    assert_eq!(old.status(), ReadOutcome::Live);
    old.finish();
}

#[test]
fn load_initial_with_no_rows_is_fine() {
    let t = VnlTable::create_named("T", keyless_schema(), 2).unwrap();
    t.load_initial(&[]).unwrap();
    assert_eq!(t.storage().len(), 0);
}

#[test]
fn keyless_relation_full_dml_cycle() {
    let t = VnlTable::create_named("T", keyless_schema(), 2).unwrap();
    let txn = t.begin_maintenance().unwrap();
    for i in 0..4i64 {
        txn.insert(vec![Value::from("a"), Value::from(i)]).unwrap();
    }
    txn.commit().unwrap();
    // Set-oriented update and delete work without a key.
    let txn = t.begin_maintenance().unwrap();
    let updated = txn
        .execute_sql("UPDATE T SET v = v * 10 WHERE v >= 2", &Params::new())
        .unwrap();
    assert_eq!(updated, 2);
    let deleted = txn
        .execute_sql("DELETE FROM T WHERE v = 0", &Params::new())
        .unwrap();
    assert_eq!(deleted, 1);
    txn.commit().unwrap();
    let s = t.begin_session();
    let mut vs: Vec<i64> = s
        .scan()
        .unwrap()
        .iter()
        .map(|r| r[1].as_int().unwrap())
        .collect();
    vs.sort_unstable();
    assert_eq!(vs, vec![1, 20, 30]);
    s.finish();
    // Key-based ops are rejected on keyless relations.
    let txn = t.begin_maintenance().unwrap();
    assert!(matches!(
        txn.read_current(&[Value::from("a"), Value::Null]),
        Ok(None)
    ));
    txn.abort().unwrap();
    let s = t.begin_session();
    assert!(matches!(
        s.read_by_key(&[Value::from("a"), Value::Null]),
        Err(VnlError::KeyRequired(_))
    ));
    s.finish();
}

#[test]
fn session_vn_accessor_and_multiple_sessions() {
    let t = VnlTable::create_named("T", keyless_schema(), 2).unwrap();
    let s1 = t.begin_session();
    assert_eq!(s1.session_vn(), 1);
    let txn = t.begin_maintenance().unwrap();
    txn.commit().unwrap();
    let s2 = t.begin_session();
    assert_eq!(s2.session_vn(), 2);
    assert_eq!(t.active_session_count(), 2);
    assert_eq!(t.min_active_session_vn(), Some(1));
    s1.finish();
    s2.finish();
}

#[test]
fn single_column_all_updatable_schema() {
    // Degenerate: every attribute updatable, no key.
    let schema = Schema::new(vec![Column::updatable("x", DataType::Int64)]).unwrap();
    let t = VnlTable::create_named("T", schema, 2).unwrap();
    let o = t.layout().overhead();
    assert_eq!(o.base_tuple_bytes, 8);
    assert_eq!(o.ext_tuple_bytes, 8 + 8 + 4 + 1); // + pre_x + tupleVN + op
    let txn = t.begin_maintenance().unwrap();
    txn.insert(vec![Value::from(1)]).unwrap();
    txn.commit().unwrap();
    let old = t.begin_session();
    let txn = t.begin_maintenance().unwrap();
    txn.execute_sql("UPDATE T SET x = 2", &Params::new())
        .unwrap();
    txn.commit().unwrap();
    assert_eq!(old.scan().unwrap()[0][0], Value::from(1));
    old.finish();
}

#[test]
fn wide_char_columns_round_trip_through_versions() {
    let schema = Schema::with_key_names(
        vec![
            Column::new("k", DataType::Int64),
            Column::updatable("name", DataType::Char(64)),
        ],
        &["k"],
    )
    .unwrap();
    let t = VnlTable::create_named("T", schema, 2).unwrap();
    let long = "x".repeat(64);
    t.load_initial(&[vec![Value::from(0), Value::from(long.clone())]])
        .unwrap();
    let old = t.begin_session();
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&vec![Value::from(0), Value::from("short")])
        .unwrap();
    txn.commit().unwrap();
    // Pre-update version preserves the full 64-byte string.
    assert_eq!(old.scan().unwrap()[0][1], Value::from(long));
    old.finish();
    // Oversized values are rejected cleanly.
    let txn = t.begin_maintenance().unwrap();
    let err = txn
        .update_row(&vec![Value::from(0), Value::from("y".repeat(65))])
        .unwrap_err();
    assert!(matches!(err, VnlError::Storage(_) | VnlError::Type(_)));
    txn.abort().unwrap();
}

#[test]
fn rewriter_rejects_unknown_updatable_column_gracefully() {
    let t = VnlTable::create_named("T", keyless_schema(), 2).unwrap();
    let s = t.begin_session();
    // Unknown column flows through as a SQL error, not a panic.
    assert!(matches!(
        s.query("SELECT nope FROM T"),
        Ok(_) | Err(VnlError::Sql(_))
    ));
    assert!(s.query("SELECT nope FROM T WHERE v = 1").is_err() || t.storage().is_empty());
    s.finish();
}

#[test]
fn many_small_maintenance_rounds_only_two_versions_survive() {
    // Storage stays bounded: versions are recycled in place, never chained.
    let t = VnlTable::create_named("T", keyless_schema(), 2).unwrap();
    let txn = t.begin_maintenance().unwrap();
    txn.insert(vec![Value::from("a"), Value::from(0)]).unwrap();
    txn.commit().unwrap();
    let width = t.storage().codec().encoded_len() as u64;
    for i in 1..=50i64 {
        let txn = t.begin_maintenance().unwrap();
        txn.execute_sql(&format!("UPDATE T SET v = {i}"), &Params::new())
            .unwrap();
        txn.commit().unwrap();
    }
    // One physical tuple, constant footprint, despite 50 generations.
    assert_eq!(t.storage().len(), 1);
    assert_eq!(t.storage().len() * width, width);
    let s = t.begin_session();
    assert_eq!(s.scan().unwrap()[0][1], Value::from(50));
    s.finish();
}
