//! Exhaustive reproduction of the paper's decision tables (Tables 2–4) and
//! the Example 3.3 golden sequence (Figures 4 → 5 → 6).

use wh_sql::Params;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, Value};
use wh_vnl::{MaintenanceTxn, Operation, PhysicalAction, VnlError, VnlTable};

fn row(city: &str, pl: &str, day: u8, sales: i64) -> Row {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from(pl),
        Value::from(Date::ymd(1996, 10, day)),
        Value::from(sales),
    ]
}

/// Drive the table to the exact Figure 4 state:
/// (3,i San Jose golf 10/14 10000 -), (4,i San Jose golf 10/15 1500 -),
/// (4,u Berkeley racq 10/14 12000 10000), (4,d Novato roller 10/13 8000 8000)
fn figure_4_table() -> VnlTable {
    let t = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    // VN 2: seed Berkeley and Novato.
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("Berkeley", "racquetball", 14, 10_000))
        .unwrap();
    txn.insert(row("Novato", "rollerblades", 13, 8_000))
        .unwrap();
    txn.commit().unwrap();
    // VN 3: San Jose 10/14.
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("San Jose", "golf equip", 14, 10_000))
        .unwrap();
    txn.commit().unwrap();
    // VN 4: San Jose 10/15 insert, Berkeley update, Novato delete.
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("San Jose", "golf equip", 15, 1_500))
        .unwrap();
    txn.update_row(&row("Berkeley", "racquetball", 14, 12_000))
        .unwrap();
    txn.delete_row(&row("Novato", "rollerblades", 13, 0))
        .unwrap();
    txn.commit().unwrap();
    assert_eq!(t.version().snapshot().current_vn, 4);
    t
}

/// Extract (tupleVN, op, city, day, total_sales, pre_total_sales) rows,
/// sorted, for golden comparison.
fn physical_state(t: &VnlTable) -> Vec<(i64, String, String, u8, Value, Value)> {
    let l = t.layout();
    let mut out: Vec<_> = t
        .scan_raw()
        .unwrap()
        .into_iter()
        .map(|(_, ext)| {
            let (vn, op) = l.slot(&ext, 0).unwrap();
            let city = ext[l.base_col(0)].as_str().unwrap().to_string();
            let day = ext[l.base_col(3)].as_date().unwrap().day();
            (
                vn as i64,
                op.to_string(),
                city,
                day,
                ext[l.base_col(4)].clone(),
                ext[l.pre_set(0)[0]].clone(),
            )
        })
        .collect();
    out.sort_by(|a, b| (&a.2, a.3, a.0).cmp(&(&b.2, b.3, b.0)));
    out
}

#[test]
fn figure_4_state_is_reached() {
    let t = figure_4_table();
    assert_eq!(
        physical_state(&t),
        vec![
            (
                4,
                "update".into(),
                "Berkeley".into(),
                14,
                Value::from(12_000),
                Value::from(10_000)
            ),
            (
                4,
                "delete".into(),
                "Novato".into(),
                13,
                Value::from(8_000),
                Value::from(8_000)
            ),
            (
                3,
                "insert".into(),
                "San Jose".into(),
                14,
                Value::from(10_000),
                Value::Null
            ),
            (
                4,
                "insert".into(),
                "San Jose".into(),
                15,
                Value::from(1_500),
                Value::Null
            ),
        ]
    );
}

#[test]
fn example_3_3_figure_5_to_figure_6() {
    // Apply the Figure 5 maintenance transaction (VN 5) and check the
    // resulting relation matches Figure 6 exactly.
    let t = figure_4_table();
    let txn = t.begin_maintenance().unwrap();
    assert_eq!(txn.maintenance_vn(), 5);
    txn.insert(row("San Jose", "golf equip", 16, 11_000))
        .unwrap();
    txn.insert(row("Novato", "rollerblades", 13, 6_000))
        .unwrap(); // resurrection
    txn.update_row(&row("San Jose", "golf equip", 14, 10_200))
        .unwrap();
    txn.delete_row(&row("Berkeley", "racquetball", 14, 0))
        .unwrap();
    txn.commit().unwrap();

    assert_eq!(
        physical_state(&t),
        vec![
            // Figure 6 rows, sorted by (city, day):
            (
                5,
                "delete".into(),
                "Berkeley".into(),
                14,
                Value::from(12_000),
                Value::from(12_000)
            ),
            (
                5,
                "insert".into(),
                "Novato".into(),
                13,
                Value::from(6_000),
                Value::Null
            ),
            (
                5,
                "update".into(),
                "San Jose".into(),
                14,
                Value::from(10_200),
                Value::from(10_000)
            ),
            (
                4,
                "insert".into(),
                "San Jose".into(),
                15,
                Value::from(1_500),
                Value::Null
            ),
            (
                5,
                "insert".into(),
                "San Jose".into(),
                16,
                Value::from(11_000),
                Value::Null
            ),
        ]
    );
}

#[test]
fn readers_across_the_example_3_3_boundary() {
    let t = figure_4_table();
    let session4 = t.begin_session(); // sees the Figure 4 current state
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("San Jose", "golf equip", 16, 11_000))
        .unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 10_200))
        .unwrap();
    txn.delete_row(&row("Berkeley", "racquetball", 14, 0))
        .unwrap();
    // Mid-transaction: session 4 sees the old state.
    let rows = session4.scan().unwrap();
    let total: i64 = rows.iter().map(|r| r[4].as_int().unwrap()).sum();
    assert_eq!(total, 10_000 + 1_500 + 12_000); // Novato already deleted at VN4
    txn.commit().unwrap();
    // Post-commit: session 4 STILL sees the same state.
    let rows = session4.scan().unwrap();
    let total2: i64 = rows.iter().map(|r| r[4].as_int().unwrap()).sum();
    assert_eq!(total, total2);
    session4.finish();
    // A new session sees the Figure 6 current state.
    let session5 = t.begin_session();
    let rows = session5.scan().unwrap();
    let total5: i64 = rows.iter().map(|r| r[4].as_int().unwrap()).sum();
    assert_eq!(total5, 10_200 + 1_500 + 11_000);
    session5.finish();
}

// ---------------------------------------------------------------------
// Table 2 (insert): every cell.
// ---------------------------------------------------------------------

fn fresh_keyed(n: usize) -> VnlTable {
    let t = VnlTable::create_named("DailySales", daily_sales_schema(), n).unwrap();
    t.load_initial(&[row("Seed", "seed", 1, 100)]).unwrap();
    t
}

#[test]
fn table_2_insert_over_live_tuple_is_impossible() {
    // Row 1, previous insert/update: impossible.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    let err = txn.insert(row("Seed", "seed", 1, 5)).unwrap_err();
    assert_eq!(
        err,
        VnlError::InvalidTransition {
            attempted: Operation::Insert,
            previous: Operation::Insert,
            same_txn: false,
        }
    );
    // ... and over a previously *updated* tuple.
    txn.update_row(&row("Seed", "seed", 1, 200)).unwrap();
    txn.commit().unwrap();
    let txn = t.begin_maintenance().unwrap();
    let err = txn.insert(row("Seed", "seed", 1, 5)).unwrap_err();
    assert_eq!(
        err,
        VnlError::InvalidTransition {
            attempted: Operation::Insert,
            previous: Operation::Update,
            same_txn: false,
        }
    );
    txn.abort().unwrap();
}

#[test]
fn table_2_insert_resurrects_deleted_tuple() {
    // Row 1, previous delete: update in place, op <- insert, PV <- nulls.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    txn.commit().unwrap(); // deleted at VN 2
    let txn = t.begin_maintenance().unwrap(); // VN 3
    txn.set_tracing(true);
    txn.insert(row("Seed", "seed", 1, 777)).unwrap();
    assert_eq!(txn.take_trace()[0].0, PhysicalAction::ResurrectTuple);
    txn.commit().unwrap();
    // Still one physical tuple; current value 777; pre nulls.
    let state = physical_state(&t);
    assert_eq!(state.len(), 1);
    assert_eq!(state[0].0, 3);
    assert_eq!(state[0].1, "insert");
    assert_eq!(state[0].4, Value::from(777));
    assert_eq!(state[0].5, Value::Null);
}

#[test]
fn table_2_insert_after_own_delete_nets_to_update() {
    // Row 2, previous delete (same txn): CV <- MV, op <- update.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    txn.insert(row("Seed", "seed", 1, 900)).unwrap();
    let trace = txn.take_trace();
    assert_eq!(trace[1].0, PhysicalAction::UpdateAfterOwnDelete);
    txn.commit().unwrap();
    let state = physical_state(&t);
    assert_eq!(state[0].1, "update"); // net effect
    assert_eq!(state[0].4, Value::from(900));
    assert_eq!(state[0].5, Value::from(100)); // pre-txn value preserved
                                              // A reader at the previous version sees the pre-update value.
                                              // (currentVN is now 2; the change was at VN 2; session at 1 reads pre.)
                                              // Simulate by a new maintenance txn + old-session check:
    let s = t.begin_session(); // VN 2
    assert_eq!(s.scan().unwrap()[0][4], Value::from(900));
    s.finish();
}

#[test]
fn table_2_insert_after_own_insert_or_update_is_impossible() {
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("New", "p", 2, 1)).unwrap();
    let err = txn.insert(row("New", "p", 2, 2)).unwrap_err();
    assert_eq!(
        err,
        VnlError::InvalidTransition {
            attempted: Operation::Insert,
            previous: Operation::Insert,
            same_txn: true,
        }
    );
    txn.update_row(&row("Seed", "seed", 1, 5)).unwrap();
    let err = txn.insert(row("Seed", "seed", 1, 2)).unwrap_err();
    assert_eq!(
        err,
        VnlError::InvalidTransition {
            attempted: Operation::Insert,
            previous: Operation::Update,
            same_txn: true,
        }
    );
    txn.abort().unwrap();
}

#[test]
fn table_2_keyless_relations_always_physically_insert() {
    // Row 3 for relations without a unique key.
    let schema = wh_types::Schema::new(vec![
        wh_types::Column::new("tag", wh_types::DataType::Char(8)),
        wh_types::Column::updatable("v", wh_types::DataType::Int64),
    ])
    .unwrap();
    let t = VnlTable::create_named("T", schema, 2).unwrap();
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.insert(vec![Value::from("a"), Value::from(1)]).unwrap();
    txn.insert(vec![Value::from("a"), Value::from(1)]).unwrap(); // duplicate fine
    let trace = txn.take_trace();
    assert!(trace.iter().all(|(a, _)| *a == PhysicalAction::InsertTuple));
    txn.commit().unwrap();
    assert_eq!(t.storage().len(), 2);
}

// ---------------------------------------------------------------------
// Table 3 (update): every cell.
// ---------------------------------------------------------------------

#[test]
fn table_3_first_update_saves_pre_values() {
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.update_row(&row("Seed", "seed", 1, 150)).unwrap();
    assert_eq!(txn.take_trace()[0].0, PhysicalAction::UpdateSavingPre);
    txn.commit().unwrap();
    let state = physical_state(&t);
    assert_eq!(state[0].4, Value::from(150));
    assert_eq!(state[0].5, Value::from(100));
}

#[test]
fn table_3_second_update_in_same_txn_keeps_pre_values() {
    // Row 2: CV <- MV only; PV keeps the pre-transaction value.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.update_row(&row("Seed", "seed", 1, 150)).unwrap();
    txn.update_row(&row("Seed", "seed", 1, 175)).unwrap();
    let trace = txn.take_trace();
    assert_eq!(trace[1].0, PhysicalAction::UpdateInPlace);
    txn.commit().unwrap();
    let state = physical_state(&t);
    assert_eq!(state[0].4, Value::from(175));
    assert_eq!(state[0].5, Value::from(100)); // NOT 150
}

#[test]
fn table_3_update_after_own_insert_keeps_insert_as_net_effect() {
    // Row 2, previous insert: CV <- MV, operation stays insert.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("New", "p", 2, 10)).unwrap();
    txn.update_row(&row("New", "p", 2, 20)).unwrap();
    txn.commit().unwrap();
    let state = physical_state(&t);
    let new_row = state.iter().find(|s| s.2 == "New").unwrap();
    assert_eq!(new_row.1, "insert"); // net effect: still an insert
    assert_eq!(new_row.4, Value::from(20));
    assert_eq!(new_row.5, Value::Null); // pre stays null -> old readers ignore
}

#[test]
fn table_3_update_of_deleted_tuple_is_impossible() {
    let t = fresh_keyed(2);
    // Earlier-txn delete.
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    txn.commit().unwrap();
    let txn = t.begin_maintenance().unwrap();
    let err = txn.update_row(&row("Seed", "seed", 1, 5)).unwrap_err();
    assert_eq!(
        err,
        VnlError::InvalidTransition {
            attempted: Operation::Update,
            previous: Operation::Delete,
            same_txn: false,
        }
    );
    txn.abort().unwrap();
    // Same-txn delete.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    let err = txn.update_row(&row("Seed", "seed", 1, 5)).unwrap_err();
    assert_eq!(
        err,
        VnlError::InvalidTransition {
            attempted: Operation::Update,
            previous: Operation::Delete,
            same_txn: true,
        }
    );
    txn.abort().unwrap();
}

#[test]
fn sql_update_cursor_skips_deleted_tuples() {
    // The §4.2.2 cursor only visits visible tuples, so a set-oriented UPDATE
    // never hits the impossible cell.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    let affected = txn
        .execute_sql(
            "UPDATE DailySales SET total_sales = total_sales + 1",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(affected, 0);
    txn.abort().unwrap();
}

// ---------------------------------------------------------------------
// Table 4 (delete): every cell.
// ---------------------------------------------------------------------

#[test]
fn table_4_logical_delete_preserves_both_versions() {
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    assert_eq!(txn.take_trace()[0].0, PhysicalAction::MarkDeleted);
    txn.commit().unwrap();
    let state = physical_state(&t);
    assert_eq!(state[0].1, "delete");
    assert_eq!(state[0].4, Value::from(100)); // CV untouched
    assert_eq!(state[0].5, Value::from(100)); // PV <- CV
    assert_eq!(t.storage().len(), 1); // physically retained
}

#[test]
fn table_4_delete_after_own_update_nets_to_delete() {
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.update_row(&row("Seed", "seed", 1, 150)).unwrap();
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    let trace = txn.take_trace();
    assert_eq!(trace[1].0, PhysicalAction::MarkOwnUpdateDeleted);
    txn.commit().unwrap();
    let state = physical_state(&t);
    assert_eq!(state[0].1, "delete");
    assert_eq!(state[0].5, Value::from(100)); // pre-txn value, not 150
}

#[test]
fn table_4_delete_of_own_insert_physically_deletes() {
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.insert(row("New", "p", 2, 1)).unwrap();
    txn.delete_row(&row("New", "p", 2, 0)).unwrap();
    let trace = txn.take_trace();
    assert_eq!(trace[1].0, PhysicalAction::RemoveOwnInsert);
    txn.commit().unwrap();
    assert_eq!(t.storage().len(), 1); // only the seed remains
                                      // The key is free again.
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("New", "p", 2, 2)).unwrap();
    txn.commit().unwrap();
}

#[test]
fn table_4_delete_of_resurrection_restores_old_tuple() {
    // delete -> commit -> (insert, delete) in one txn: the resurrected
    // tuple's pre-delete version must survive for old readers.
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    txn.commit().unwrap(); // deleted at VN 2
    let before = physical_state(&t);
    let txn = t.begin_maintenance().unwrap(); // VN 3
    txn.set_tracing(true);
    txn.insert(row("Seed", "seed", 1, 999)).unwrap(); // resurrect
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap(); // change of heart
    let trace = txn.take_trace();
    assert_eq!(trace[1].0, PhysicalAction::RestoreResurrected);
    txn.commit().unwrap();
    // Net effect of resurrect+delete = nothing: physical state unchanged.
    assert_eq!(physical_state(&t), before);
}

#[test]
fn table_4_double_delete_is_impossible() {
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap();
    // Same txn: impossible transition.
    let err = txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap_err();
    assert_eq!(
        err,
        VnlError::InvalidTransition {
            attempted: Operation::Delete,
            previous: Operation::Delete,
            same_txn: true,
        }
    );
    txn.commit().unwrap();
    // Later txn: the tuple is logically absent.
    let txn = t.begin_maintenance().unwrap();
    let err = txn.delete_row(&row("Seed", "seed", 1, 0)).unwrap_err();
    assert!(matches!(err, VnlError::NoSuchTuple(_)));
    txn.abort().unwrap();
}

// ---------------------------------------------------------------------
// §4.2 SQL-level maintenance (Examples 4.2–4.4) traces.
// ---------------------------------------------------------------------

fn paper_update_sql_table() -> (VnlTable, u64) {
    let t = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    t.load_initial(&[
        row("San Jose", "golf equip", 13, 10_000),
        row("San Jose", "racquetball", 13, 2_000),
        row("Berkeley", "golf equip", 13, 5_000),
    ])
    .unwrap();
    (t, 2)
}

#[test]
fn example_4_3_update_statement() {
    // UPDATE DailySales SET total_sales = total_sales + 1000
    // WHERE city = 'San Jose' AND date = '10/13/96'
    let (t, _) = paper_update_sql_table();
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    let affected = txn
        .execute_sql(
            "UPDATE DailySales SET total_sales = total_sales + 1000 \
             WHERE city = 'San Jose' AND date = DATE '1996-10-13'",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(affected, 2);
    let trace = txn.take_trace();
    assert!(trace
        .iter()
        .all(|(a, _)| *a == PhysicalAction::UpdateSavingPre));
    txn.commit().unwrap();
    let s = t.begin_session();
    let r = s
        .query("SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from(14_000));
    s.finish();
}

#[test]
fn example_4_3_update_twice_takes_second_branch() {
    // Running the same UPDATE twice in one txn exercises the tupleVN =
    // maintenanceVN branch (the "Else" of the paper's pseudocode).
    let (t, _) = paper_update_sql_table();
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    for _ in 0..2 {
        txn.execute_sql(
            "UPDATE DailySales SET total_sales = total_sales + 1000 \
             WHERE city = 'San Jose' AND date = DATE '1996-10-13'",
            &Params::new(),
        )
        .unwrap();
    }
    let trace = txn.take_trace();
    let first: Vec<_> = trace.iter().take(2).map(|(a, _)| a.clone()).collect();
    let second: Vec<_> = trace.iter().skip(2).map(|(a, _)| a.clone()).collect();
    assert!(first.iter().all(|a| *a == PhysicalAction::UpdateSavingPre));
    assert!(second.iter().all(|a| *a == PhysicalAction::UpdateInPlace));
    txn.commit().unwrap();
    // Pre-update values reflect the transaction start, not the first UPDATE.
    let l = t.layout();
    for (_, ext) in t.scan_raw().unwrap() {
        if ext[l.base_col(0)] == Value::from("San Jose") {
            let pre = &ext[l.pre_set(0)[0]];
            let cur = &ext[l.base_col(4)];
            assert_eq!(
                cur.as_int().unwrap() - pre.as_int().unwrap(),
                2000,
                "PV must hold the pre-transaction value"
            );
        }
    }
}

#[test]
fn example_4_4_delete_statement() {
    let (t, _) = paper_update_sql_table();
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    let affected = txn
        .execute_sql(
            "DELETE FROM DailySales WHERE city = 'San Jose' AND date = DATE '1996-10-13'",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(affected, 2);
    assert!(txn
        .take_trace()
        .iter()
        .all(|(a, _)| *a == PhysicalAction::MarkDeleted));
    txn.commit().unwrap();
    // Logically gone for new sessions, physically retained for old ones.
    let s = t.begin_session();
    let r = s
        .query("SELECT COUNT(*) FROM DailySales WHERE city = 'San Jose'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from(0));
    s.finish();
    assert_eq!(t.storage().len(), 3);
}

#[test]
fn example_4_2_insert_statement_with_conflicts() {
    let (t, _) = paper_update_sql_table();
    // Delete one key so the insert can resurrect it.
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("San Jose", "golf equip", 13, 0))
        .unwrap();
    txn.commit().unwrap();
    let txn = t.begin_maintenance().unwrap();
    txn.set_tracing(true);
    txn.execute_sql(
        "INSERT INTO DailySales VALUES \
         ('San Jose', 'CA', 'golf equip', DATE '1996-10-13', 123), \
         ('Novato', 'CA', 'swimming', DATE '1996-10-13', 456)",
        &Params::new(),
    )
    .unwrap();
    let trace = txn.take_trace();
    assert_eq!(trace[0].0, PhysicalAction::ResurrectTuple);
    assert_eq!(trace[1].0, PhysicalAction::InsertTuple);
    txn.commit().unwrap();
}

#[test]
fn maintenance_reads_see_own_changes() {
    // §3.3: "a maintenance transaction always reads the current version".
    let (t, _) = paper_update_sql_table();
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("Berkeley", "golf equip", 13, 9_999))
        .unwrap();
    txn.delete_row(&row("San Jose", "racquetball", 13, 0))
        .unwrap();
    txn.insert(row("Oakland", "golf equip", 13, 1)).unwrap();
    let rows = txn.scan_current().unwrap();
    let mut cities: Vec<String> = rows
        .iter()
        .map(|r| format!("{}:{}", r[0].as_str().unwrap(), r[4]))
        .collect();
    cities.sort();
    assert_eq!(cities, vec!["Berkeley:9999", "Oakland:1", "San Jose:10000"]);
    txn.abort().unwrap();
}

#[test]
fn finished_txn_rejects_operations() {
    let t = fresh_keyed(2);
    let txn = t.begin_maintenance().unwrap();
    let txn2: &MaintenanceTxn = &txn;
    let _ = txn2;
    txn.commit().unwrap();
    // A new txn works fine afterwards — covered elsewhere. Here: using the
    // moved-out txn is prevented by ownership; instead check double-commit
    // via a fresh txn aborted then reused is impossible by construction.
    let txn = t.begin_maintenance().unwrap();
    txn.abort().unwrap();
}
