//! Property test for the session-repair tentpole: over randomized
//! maintenance histories, **repair-then-read ≡ restart-then-rescan**.
//!
//! Each case builds a keyed table, commits a random prefix, records a
//! session VN, then commits a random suffix of inserts / updates / deletes /
//! resurrections. A [`RepairEngine`] then answers *for the recorded
//! (expired-by-now) session VN* three ways — full scan, per-key lookup, and
//! SQL queries including streaming GROUP BY aggregates — and every answer
//! must equal what a fresh session (the restart path) computes from
//! scratch. Aggregates stay on integers so patched arithmetic is exact;
//! MIN/MAX retractions of the extremum force the per-group rescan fallback
//! and must still agree.
//!
//! The histories deliberately run on small `n`, so many tuples are
//! physically past the session's version (`Visible::Expired`) and repair
//! must reconstruct them from the delta window's first pre-images — the
//! test asserts that path actually fired across the sweep.

use std::collections::BTreeMap;

use wh_sql::{parse_statement, Params, SelectStmt, Statement};
use wh_types::{Column, DataType, Row, Schema, SplitMix64, Value};
use wh_vnl::{RepairEngine, VnlTable};

fn schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("k", DataType::Int64),
            Column::updatable("v", DataType::Int64),
            Column::updatable("g", DataType::Int64),
        ],
        &["k"],
    )
    .unwrap()
}

fn row(k: i64, v: i64, g: i64) -> Row {
    vec![Value::from(k), Value::from(v), Value::from(g)]
}

/// The in-test model of the live table: key → (v, g).
type Model = BTreeMap<i64, (i64, i64)>;

/// One random maintenance transaction: 1–3 inserts / updates / deletes /
/// resurrections, applied to both the table and the model.
fn random_txn(table: &VnlTable, rng: &mut SplitMix64, live: &mut Model, dead: &mut Vec<i64>) {
    let txn = table.begin_maintenance().unwrap();
    for _ in 0..=rng.index(3) {
        match rng.index(4) {
            // Fresh insert (keys grow monotonically past everything seen).
            0 => {
                let k = live.keys().max().copied().unwrap_or(0) + 1 + rng.range_i64(0, 3);
                if live.contains_key(&k) {
                    continue;
                }
                let (v, g) = (rng.range_i64(-50, 50), rng.range_i64(0, 3));
                txn.insert(row(k, v, g)).unwrap();
                live.insert(k, (v, g));
            }
            // Update a live key (same-transaction repeats included).
            1 => {
                let Some(&k) = live.keys().nth(rng.index(live.len().max(1))) else {
                    continue;
                };
                let (v, g) = (rng.range_i64(-50, 50), rng.range_i64(0, 3));
                txn.update_row(&row(k, v, g)).unwrap();
                live.insert(k, (v, g));
            }
            // Delete a live key.
            2 => {
                let Some(&k) = live.keys().nth(rng.index(live.len().max(1))) else {
                    continue;
                };
                let (v, g) = live.remove(&k).unwrap();
                txn.delete_row(&row(k, v, g)).unwrap();
                dead.push(k);
            }
            // Resurrect a previously deleted key.
            _ => {
                if dead.is_empty() {
                    continue;
                }
                let k = dead.swap_remove(rng.index(dead.len()));
                if live.contains_key(&k) {
                    continue;
                }
                let (v, g) = (rng.range_i64(-50, 50), rng.range_i64(0, 3));
                txn.insert(row(k, v, g)).unwrap();
                live.insert(k, (v, g));
            }
        }
    }
    txn.commit().unwrap();
}

fn select(sql: &str) -> SelectStmt {
    match parse_statement(sql).unwrap() {
        Statement::Select(s) => s,
        other => panic!("expected SELECT, parsed {other:?}"),
    }
}

/// Sorted `(k, v, g)` triples from a set of full rows.
fn triples(rows: &[Row]) -> Vec<(i64, i64, i64)> {
    let mut out: Vec<(i64, i64, i64)> = rows
        .iter()
        .map(|r| {
            (
                r[0].as_int().unwrap(),
                r[1].as_int().unwrap(),
                r[2].as_int().unwrap(),
            )
        })
        .collect();
    out.sort_unstable();
    out
}

/// Queries covering every aggregate kind the patcher handles, the MIN/MAX
/// rescan fallback, grouped and ungrouped shapes, WHERE/HAVING/ORDER BY,
/// and a non-aggregate projection (the row-set patch path).
const QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM t",
    "SELECT SUM(v), COUNT(v), AVG(v), MIN(v), MAX(v) FROM t",
    "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g ORDER BY g",
    "SELECT g, MIN(v), MAX(v), AVG(v) FROM t GROUP BY g ORDER BY g",
    "SELECT g, SUM(v) FROM t WHERE v >= 0 GROUP BY g HAVING COUNT(*) >= 1 ORDER BY g",
    "SELECT k, v FROM t WHERE g = 1 ORDER BY k",
];

/// One randomized history; returns how many expired tuples the repaired
/// scan had to reconstruct from delta pre-images.
fn run_case(seed: u64) -> u64 {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = 2 + rng.index(3); // 2..=4
    let table = VnlTable::create_named("t", schema(), n).unwrap();

    let mut live = Model::new();
    let mut dead = Vec::new();
    let base: Vec<Row> = (0..4 + rng.range_i64(0, 8))
        .map(|k| {
            let (v, g) = (rng.range_i64(-50, 50), rng.range_i64(0, 3));
            live.insert(k, (v, g));
            row(k, v, g)
        })
        .collect();
    table.load_initial(&base).unwrap();

    // Random prefix, then record the session the repair must answer for.
    for _ in 0..rng.index(5) {
        random_txn(&table, &mut rng, &mut live, &mut dead);
    }
    let session = table.begin_session();
    let svn = session.session_vn();
    session.finish();

    // Random suffix: the history the repair replays (delta capacity is 64;
    // stay well under it so the window is always complete).
    for _ in 0..5 + rng.index(30) {
        random_txn(&table, &mut rng, &mut live, &mut dead);
    }

    let engine = RepairEngine::new(&table);
    let rescan = table.begin_session();
    let current = rescan.session_vn();

    // --- Scan: repaired row set ≡ restarted rescan (as multisets). -------
    let repaired = engine
        .scan_at_current(svn)
        .unwrap()
        .unwrap_or_else(|| panic!("seed {seed}: complete window must repair"));
    assert_eq!(repaired.vn, current, "seed {seed}");
    assert_eq!(
        triples(&repaired.rows),
        triples(&rescan.scan().unwrap()),
        "seed {seed}: repaired scan diverged from rescan"
    );
    // The model agrees with both (belt and braces on the harness itself).
    let model: Vec<(i64, i64, i64)> = live.iter().map(|(&k, &(v, g))| (k, v, g)).collect();
    assert_eq!(triples(&repaired.rows), model, "seed {seed}: model drift");

    // --- Lookups: every key ever seen, present or deleted. ---------------
    let universe = live.keys().max().copied().unwrap_or(0) + 4;
    for k in 0..universe {
        let key = vec![Value::from(k)];
        let (got, vn) = engine
            .read_key_at_current(svn, &key)
            .unwrap()
            .unwrap_or_else(|| panic!("seed {seed}: lookup repair declined for k={k}"));
        assert_eq!(vn, current, "seed {seed}");
        assert_eq!(
            got,
            rescan.read_by_key(&key).unwrap(),
            "seed {seed}: repaired lookup diverged for k={k}"
        );
    }

    // --- Queries: aggregate patching (and its fallbacks) ≡ re-execution. -
    let params = Params::new();
    for sql in QUERIES {
        let stmt = select(sql);
        let (got, vn) = engine
            .query_at_current(svn, &stmt, &params)
            .unwrap()
            .unwrap_or_else(|| panic!("seed {seed}: query repair declined: {sql}"));
        assert_eq!(vn, current, "seed {seed}");
        let want = rescan.query_stmt(&stmt).unwrap();
        if stmt.order_by.is_empty() {
            assert_eq!(got.columns, want.columns, "seed {seed}: {sql}");
            let mut g = got.rows.clone();
            let mut w = want.rows.clone();
            g.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            w.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            assert_eq!(g, w, "seed {seed}: {sql}");
        } else {
            assert_eq!(got, want, "seed {seed}: repaired query diverged: {sql}");
        }
    }
    rescan.finish();
    repaired.reconstructed
}

#[test]
fn repair_equals_restart_over_random_histories() {
    let mut reconstructed = 0;
    for seed in 0..24 {
        reconstructed += run_case(seed);
    }
    // The sweep must have exercised the hard path: sessions whose tuples
    // were physically overwritten (expired) and had to be rebuilt from the
    // delta window's first pre-images.
    assert!(
        reconstructed > 0,
        "no case ever reconstructed an expired tuple — histories too tame"
    );
}
