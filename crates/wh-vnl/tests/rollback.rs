//! §7's log-free rollback: aborting a maintenance transaction restores the
//! exact pre-transaction state by reverting tuples from their own version
//! slots (plus the transaction-private dropped-slot map).

use wh_sql::Params;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, Value};
use wh_vnl::{VnlError, VnlTable};

fn row(city: &str, pl: &str, day: u8, sales: i64) -> Row {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from(pl),
        Value::from(Date::ymd(1996, 10, day)),
        Value::from(sales),
    ]
}

/// Canonicalized physical state for equality checks.
fn state(t: &VnlTable) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = t
        .scan_raw()
        .unwrap()
        .into_iter()
        .map(|(_, ext)| ext.iter().map(std::string::ToString::to_string).collect())
        .collect();
    rows.sort();
    rows
}

fn seeded(n: usize) -> VnlTable {
    let t = VnlTable::create_named("DailySales", daily_sales_schema(), n).unwrap();
    t.load_initial(&[
        row("San Jose", "golf equip", 14, 10_000),
        row("Berkeley", "racquetball", 14, 12_000),
        row("Novato", "rollerblades", 13, 8_000),
    ])
    .unwrap();
    t
}

#[test]
fn abort_restores_exact_state_after_mixed_batch() {
    let t = seeded(2);
    let before = state(&t);
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("Oakland", "swimming", 15, 3_000)).unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 11_111))
        .unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 22_222))
        .unwrap();
    txn.delete_row(&row("Berkeley", "racquetball", 14, 0))
        .unwrap();
    txn.execute_sql(
        "UPDATE DailySales SET total_sales = total_sales + 5 WHERE city = 'Novato'",
        &Params::new(),
    )
    .unwrap();
    txn.abort().unwrap();
    assert_eq!(state(&t), before);
    // The system is fully usable: next maintenance gets the same VN.
    let txn = t.begin_maintenance().unwrap();
    assert_eq!(txn.maintenance_vn(), 2);
    txn.commit().unwrap();
}

#[test]
fn abort_of_insert_then_delete_leaves_nothing() {
    let t = seeded(2);
    let before = state(&t);
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("Oakland", "swimming", 15, 1)).unwrap();
    txn.delete_row(&row("Oakland", "swimming", 15, 0)).unwrap();
    txn.abort().unwrap();
    assert_eq!(state(&t), before);
}

#[test]
fn abort_restores_resurrected_tuple() {
    // The hardest 2VNL case: the resurrection overwrote the deleted tuple's
    // slot; abort must bring the logically-deleted tuple back, pre-delete
    // version intact.
    let t = seeded(2);
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Novato", "rollerblades", 13, 0))
        .unwrap();
    txn.commit().unwrap(); // Novato deleted at VN 2
    let before = state(&t);
    let old_session = t.begin_session(); // VN 2: Novato absent for it
    let txn = t.begin_maintenance().unwrap(); // VN 3
    txn.insert(row("Novato", "rollerblades", 13, 4_242))
        .unwrap(); // resurrect
    txn.update_row(&row("San Jose", "golf equip", 14, 1))
        .unwrap();
    txn.abort().unwrap();
    assert_eq!(state(&t), before);
    // The old session's view is unperturbed.
    let rows = old_session.scan().unwrap();
    assert_eq!(rows.len(), 2); // San Jose + Berkeley; Novato deleted
    old_session.finish();
}

#[test]
fn abort_preserves_concurrent_reader_view_throughout() {
    let t = seeded(2);
    let session = t.begin_session();
    let baseline = session.scan().unwrap();
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 999))
        .unwrap();
    txn.delete_row(&row("Novato", "rollerblades", 13, 0))
        .unwrap();
    // Mid-transaction the reader's view is unchanged.
    assert_eq!(session.scan().unwrap(), baseline);
    txn.abort().unwrap();
    // After abort, still unchanged.
    assert_eq!(session.scan().unwrap(), baseline);
    session.finish();
    // And a brand-new session agrees.
    let s2 = t.begin_session();
    assert_eq!(s2.scan().unwrap(), baseline);
    s2.finish();
}

#[test]
fn nvnl_abort_restores_pushed_back_slots() {
    let t = seeded(3);
    // Build two generations of history on San Jose.
    for sales in [11_000, 12_000] {
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&row("San Jose", "golf equip", 14, sales))
            .unwrap();
        txn.commit().unwrap();
    }
    let before = state(&t);
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 99_999))
        .unwrap();
    txn.delete_row(&row("Berkeley", "racquetball", 14, 0))
        .unwrap();
    txn.abort().unwrap();
    assert_eq!(state(&t), before);
    // Historical sessions still resolve correctly after the abort:
    // VN 3 reader sees 12,000; VN 2 reader would see 11,000.
    let s = t.begin_session(); // VN 3
    let r = s
        .query("SELECT total_sales FROM DailySales WHERE city = 'San Jose'")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from(12_000));
    s.finish();
}

#[test]
fn dropped_maintenance_txn_auto_aborts() {
    let t = seeded(2);
    let before = state(&t);
    {
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&row("San Jose", "golf equip", 14, 1))
            .unwrap();
        // Dropped without commit/abort.
    }
    assert_eq!(state(&t), before);
    assert!(!t.version().snapshot().maintenance_active);
    // A new maintenance transaction can begin.
    let txn = t.begin_maintenance().unwrap();
    txn.commit().unwrap();
}

#[test]
fn operations_after_commit_or_abort_fail() {
    let t = seeded(2);
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 1))
        .unwrap();
    // We cannot call methods on a moved txn after commit(), but execute_sql
    // on a *reference* after internal finish is exercised via
    // commit_when_quiescent's self-consumption. Here, verify abort() on an
    // already-dropped state cannot be reached and that a fresh txn works.
    txn.abort().unwrap();
    let txn = t.begin_maintenance().unwrap();
    assert!(matches!(
        txn.execute_sql("SELECT * FROM DailySales", &Params::new()),
        Err(VnlError::Sql(_))
    ));
    txn.commit().unwrap();
}
