//! §4.3: secondary indexes under 2VNL. Indexes on non-updatable attributes
//! (the common warehouse case: group-by/dimension columns) must keep
//! working unchanged through maintenance, GC, resurrection, and rollback —
//! and must reject updatable attributes.

use wh_sql::Params;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, Value};
use wh_vnl::{gc, VnlError, VnlTable};

fn row(city: &str, pl: &str, day: u8, sales: i64) -> Row {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from(pl),
        Value::from(Date::ymd(1996, 10, day)),
        Value::from(sales),
    ]
}

fn seeded() -> VnlTable {
    let t = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    t.load_initial(&[
        row("San Jose", "golf equip", 14, 10_000),
        row("San Jose", "racquetball", 14, 2_000),
        row("Berkeley", "racquetball", 14, 12_000),
        row("Novato", "rollerblades", 13, 8_000),
    ])
    .unwrap();
    t
}

#[test]
fn index_on_updatable_attribute_rejected() {
    let t = seeded();
    assert_eq!(
        t.create_index("bad", &["total_sales"]).unwrap_err(),
        VnlError::IndexOnUpdatable("total_sales".into())
    );
    // Mixed lists are rejected too.
    assert!(matches!(
        t.create_index("bad", &["city", "total_sales"]),
        Err(VnlError::IndexOnUpdatable(_))
    ));
}

#[test]
fn duplicate_and_missing_index_names() {
    let t = seeded();
    t.create_index("by_city", &["city"]).unwrap();
    assert_eq!(
        t.create_index("by_city", &["state"]).unwrap_err(),
        VnlError::DuplicateIndex("by_city".into())
    );
    let s = t.begin_session();
    assert!(matches!(
        s.lookup_eq("nope", &[Value::from("x")]),
        Err(VnlError::NoSuchIndex(_))
    ));
    s.finish();
}

#[test]
fn backfilled_index_agrees_with_scan() {
    let t = seeded();
    t.create_index("by_city", &["city"]).unwrap();
    let s = t.begin_session();
    let via_index = s.lookup_eq("by_city", &[Value::from("San Jose")]).unwrap();
    assert_eq!(via_index.len(), 2);
    let via_scan: Vec<Row> = s
        .scan()
        .unwrap()
        .into_iter()
        .filter(|r| r[0] == Value::from("San Jose"))
        .collect();
    let norm = |mut v: Vec<Row>| {
        v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        v
    };
    assert_eq!(norm(via_index), norm(via_scan));
    s.finish();
}

#[test]
fn range_lookup_on_date() {
    let t = seeded();
    t.create_index("by_date", &["date"]).unwrap();
    let s = t.begin_session();
    let day13 = s
        .lookup_range(
            "by_date",
            None,
            Some(&[Value::from(Date::ymd(1996, 10, 13))]),
        )
        .unwrap();
    assert_eq!(day13.len(), 1);
    assert_eq!(day13[0][0], Value::from("Novato"));
    let all = s.lookup_range("by_date", None, None).unwrap();
    assert_eq!(all.len(), 4);
    s.finish();
}

#[test]
fn index_respects_session_versions() {
    let t = seeded();
    t.create_index("by_city", &["city"]).unwrap();
    let old = t.begin_session(); // VN 1
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("San Jose", "swimming", 15, 500)).unwrap();
    txn.delete_row(&row("San Jose", "racquetball", 14, 0))
        .unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 99_999))
        .unwrap();
    txn.commit().unwrap();
    // Old session: still the two original San Jose rows, old values.
    let rows = old
        .lookup_eq("by_city", &[Value::from("San Jose")])
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().any(|r| r[4] == Value::from(10_000)));
    assert!(rows.iter().any(|r| r[4] == Value::from(2_000)));
    old.finish();
    // New session: swimming appeared, racquetball gone, golf updated.
    let new = t.begin_session();
    let rows = new
        .lookup_eq("by_city", &[Value::from("San Jose")])
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().any(|r| r[4] == Value::from(99_999)));
    assert!(rows.iter().any(|r| r[2] == Value::from("swimming")));
    new.finish();
}

#[test]
fn index_tracks_physical_insert_delete_and_gc() {
    let t = seeded();
    t.create_index("by_city", &["city"]).unwrap();
    // Physical insert shows up immediately for the maintenance txn's future
    // readers; logical delete keeps the entry (the tuple is physically
    // there) until GC removes both.
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("Fresno", "camping", 15, 42)).unwrap();
    txn.delete_row(&row("Novato", "rollerblades", 13, 0))
        .unwrap();
    txn.commit().unwrap();
    let s = t.begin_session();
    assert_eq!(
        s.lookup_eq("by_city", &[Value::from("Fresno")])
            .unwrap()
            .len(),
        1
    );
    // Deleted tuple: index still holds the RID, but visibility filters it.
    assert_eq!(
        s.lookup_eq("by_city", &[Value::from("Novato")])
            .unwrap()
            .len(),
        0
    );
    s.finish();
    gc::collect(&t).unwrap();
    let s = t.begin_session();
    assert_eq!(
        s.lookup_eq("by_city", &[Value::from("Novato")])
            .unwrap()
            .len(),
        0
    );
    s.finish();
}

#[test]
fn index_survives_insert_then_delete_same_txn() {
    let t = seeded();
    t.create_index("by_city", &["city"]).unwrap();
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("Fresno", "camping", 15, 42)).unwrap();
    txn.delete_row(&row("Fresno", "camping", 15, 0)).unwrap(); // physical delete
    txn.commit().unwrap();
    let s = t.begin_session();
    assert_eq!(
        s.lookup_eq("by_city", &[Value::from("Fresno")])
            .unwrap()
            .len(),
        0
    );
    s.finish();
}

#[test]
fn index_survives_rollback() {
    let t = seeded();
    t.create_index("by_city", &["city"]).unwrap();
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("Fresno", "camping", 15, 42)).unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 1))
        .unwrap();
    txn.abort().unwrap();
    let s = t.begin_session();
    assert_eq!(
        s.lookup_eq("by_city", &[Value::from("Fresno")])
            .unwrap()
            .len(),
        0
    );
    let sj = s.lookup_eq("by_city", &[Value::from("San Jose")]).unwrap();
    assert!(sj.iter().any(|r| r[4] == Value::from(10_000)));
    s.finish();
}

#[test]
fn index_consistent_with_scan_through_busy_history() {
    // Churn the table through several maintenance rounds, checking index
    // results equal scan-filter results for every city each round.
    let t = seeded();
    t.create_index("by_city", &["city"]).unwrap();
    let cities = ["San Jose", "Berkeley", "Novato", "Fresno"];
    for round in 0..5i64 {
        let txn = t.begin_maintenance().unwrap();
        txn.execute_sql(
            &format!("UPDATE DailySales SET total_sales = total_sales + {round}"),
            &Params::new(),
        )
        .unwrap();
        if round % 2 == 0 {
            let _ = txn.insert(row("Fresno", "camping", (10 + round) as u8, round));
        }
        txn.commit().unwrap();
        gc::collect(&t).unwrap();
        let s = t.begin_session();
        for city in cities {
            let via_index = s.lookup_eq("by_city", &[Value::from(city)]).unwrap().len();
            let via_scan = s
                .scan()
                .unwrap()
                .iter()
                .filter(|r| r[0] == Value::from(city))
                .count();
            assert_eq!(via_index, via_scan, "round {round}, city {city}");
        }
        s.finish();
    }
}

#[test]
fn composite_index() {
    let t = seeded();
    t.create_index("by_city_pl", &["city", "product_line"])
        .unwrap();
    let s = t.begin_session();
    let hit = s
        .lookup_eq(
            "by_city_pl",
            &[Value::from("San Jose"), Value::from("racquetball")],
        )
        .unwrap();
    assert_eq!(hit.len(), 1);
    assert_eq!(hit[0][4], Value::from(2_000));
    s.finish();
}
