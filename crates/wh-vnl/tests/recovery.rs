//! Tier-1 recovery tests — no `failpoints` feature required. Crashes are
//! simulated by forgetting a live `MaintenanceTxn` at an operation boundary:
//! exactly what a real crash leaves behind (pending tuple slots, a stuck
//! `maintenanceActive` flag, and no undo map). The failpoint-driven crash
//! matrix in `crash_recovery.rs` covers mid-operation crashes.

use std::collections::HashMap;

use wh_types::{Column, DataType, Schema, Value};
use wh_vnl::visibility;
use wh_vnl::{recover, Visible, VnlTable, WarehouseBuilder};

fn schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("k", DataType::Int64),
            Column::updatable("v", DataType::Int64),
        ],
        &["k"],
    )
    .unwrap()
}

fn row(k: i64, v: i64) -> Vec<Value> {
    vec![Value::from(k), Value::from(v)]
}

/// Reader-visible `(k, v)` set at `svn`, via the real visibility function.
fn visible_state(table: &VnlTable, svn: u64) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = table
        .scan_raw()
        .unwrap()
        .iter()
        .filter_map(
            |(_, ext)| match visibility::extract(table.layout(), ext, svn) {
                Visible::Row(r) => Some((r[0].as_int().unwrap(), r[1].as_int().unwrap())),
                Visible::Ignore => None,
                Visible::Expired => panic!("unexpected expiry at sessionVN {svn}"),
            },
        )
        .collect();
    rows.sort_unstable();
    rows
}

fn fingerprint(table: &VnlTable) -> String {
    let mut rows: Vec<String> = table
        .scan_raw()
        .unwrap()
        .iter()
        .map(|(rid, ext)| format!("{rid}:{ext:?}"))
        .collect();
    rows.sort_unstable();
    rows.join("\n")
}

fn build(n: usize) -> VnlTable {
    let table = VnlTable::create_named("T", schema(), n).unwrap();
    table
        .load_initial(&[row(0, 10), row(1, 11), row(2, 12)])
        .unwrap();
    table
}

#[test]
fn recovery_is_a_noop_on_a_cleanly_committed_table() {
    for n in [2, 3, 4] {
        let table = build(n);
        let txn = table.begin_maintenance().unwrap();
        txn.update_row(&row(0, 100)).unwrap();
        txn.delete_row(&row(1, 0)).unwrap();
        txn.insert(row(3, 13)).unwrap();
        txn.commit().unwrap();

        let before = fingerprint(&table);
        let report = recover(&table).unwrap();
        assert_eq!(report.pending_found, 0);
        assert_eq!(report.exact_horizon, 1, "a no-op recovery is fully exact");
        assert!(!report.cleared_maintenance_flag);
        assert_eq!(report.log_writes, 0);
        assert_eq!(fingerprint(&table), before, "clean table must not change");
    }
}

#[test]
fn recovery_is_a_noop_after_a_clean_abort() {
    for n in [2, 3] {
        let table = build(n);
        let txn = table.begin_maintenance().unwrap();
        txn.update_row(&row(0, 100)).unwrap();
        txn.delete_row(&row(1, 0)).unwrap();
        txn.insert(row(3, 13)).unwrap();
        txn.abort().unwrap();

        let before = fingerprint(&table);
        let report = recover(&table).unwrap();
        assert_eq!(report.pending_found, 0);
        assert!(!report.cleared_maintenance_flag);
        assert_eq!(fingerprint(&table), before);
        assert_eq!(visible_state(&table, 1), vec![(0, 10), (1, 11), (2, 12)]);
    }
}

/// Crash (forget) after a complete batch: recovery must roll every pending
/// tuple back and clear the stuck flag, twice-recovering identically.
#[test]
fn recovery_rolls_back_a_forgotten_transaction() {
    for n in [2, 3, 4] {
        let table = build(n);
        let txn = table.begin_maintenance().unwrap();
        txn.update_row(&row(0, 100)).unwrap();
        txn.delete_row(&row(1, 0)).unwrap();
        txn.insert(row(3, 13)).unwrap();
        std::mem::forget(txn); // crash: undo map lost, flag stuck

        assert!(table.version().snapshot().maintenance_active);
        let report = recover(&table).unwrap();
        assert!(report.cleared_maintenance_flag);
        assert_eq!(report.pending_found, 3);
        assert_eq!(report.orphans_removed, 1);
        assert_eq!(report.slots_restored, 2);
        assert_eq!(report.log_writes, 0);

        let snap = table.version().snapshot();
        assert!(!snap.maintenance_active);
        assert_eq!(snap.current_vn, 1);
        for svn in report.exact_horizon..=snap.current_vn {
            assert_eq!(visible_state(&table, svn), vec![(0, 10), (1, 11), (2, 12)]);
        }
        // nVNL restores from surviving slots exactly; no tuple ever carried
        // more than one version here, so even 2VNL is exact.
        assert_eq!(report.exact_horizon, 1, "n={n}");

        let before = fingerprint(&table);
        let again = recover(&table).unwrap();
        assert_eq!(again.pending_found, 0);
        assert_eq!(fingerprint(&table), before, "recover twice ≡ recover once");
    }
}

/// The recovery fence: 2VNL reconstruction destroys the pre-transaction
/// slot, so a live session at `currentVN − 1` — perfectly legal in 2VNL —
/// would read the *current* values where the true slot held distinct
/// pre-values. `recover` must raise the fence to its exactness horizon and
/// the session must expire on its next read instead of being lied to.
#[test]
fn two_vnl_recovery_fences_sessions_it_cannot_serve_exactly() {
    let table = build(2);
    let t = table.begin_maintenance().unwrap();
    t.update_row(&row(0, 100)).unwrap();
    t.commit().unwrap(); // VN 2

    let session = table.begin_session(); // pinned to VN 2
    let t = table.begin_maintenance().unwrap();
    t.update_row(&row(0, 200)).unwrap();
    t.commit().unwrap(); // VN 3; the session legally spans this commit
    assert_eq!(
        session.read_by_key(&row(0, 0)).unwrap().unwrap()[1],
        Value::from(100),
        "2VNL serves the spanned session from the saved pre-image"
    );

    // Crash a third transaction after it overwrote the only version slot:
    // the slot's true content `(3, update, 100)` is destroyed.
    let t = table.begin_maintenance().unwrap();
    t.update_row(&row(0, 300)).unwrap();
    std::mem::forget(t);
    let report = recover(&table).unwrap();
    assert_eq!(report.reconstructed_slots, 1);
    assert_eq!(
        report.exact_horizon, 3,
        "the reconstructed slot serves only sessions at currentVN"
    );
    assert_eq!(table.version().recovery_floor(), 3);

    // Without the fence the session would now read the reconstructed
    // pre-values — 200 where its consistent view says 100.
    assert!(matches!(
        session.read_by_key(&row(0, 0)),
        Err(wh_vnl::VnlError::SessionExpired { session_vn: 2, .. })
    ));
    assert!(matches!(
        session.scan(),
        Err(wh_vnl::VnlError::SessionExpired { .. })
    ));

    // A fresh session sees exactly the rolled-back committed state.
    let fresh = table.begin_session();
    assert_eq!(
        fresh.read_by_key(&row(0, 0)).unwrap().unwrap()[1],
        Value::from(200)
    );
    assert_eq!(fresh.scan().unwrap().len(), 3);
}

/// A deterministic PRNG so the property test is reproducible.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Reference model: per-key version history, mirroring the table's
/// committed state only (crashed work must vanish).
#[derive(Default)]
struct Model {
    history: HashMap<i64, Vec<(u64, Option<i64>)>>,
}

impl Model {
    fn record(&mut self, vn: u64, k: i64, v: Option<i64>) {
        self.history.entry(k).or_default().push((vn, v));
    }

    fn live_at(&self, svn: u64) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = self
            .history
            .iter()
            .filter_map(|(&k, h)| {
                h.iter()
                    .rev()
                    .find(|(vn, _)| *vn <= svn)
                    .and_then(|(_, v)| v.map(|v| (k, v)))
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn live_keys(&self, svn: u64) -> Vec<i64> {
        self.live_at(svn).into_iter().map(|(k, _)| k).collect()
    }
}

/// Property: across random committed histories followed by a crashed batch
/// forgotten at a random operation boundary, recovery restores exactly the
/// last committed state over its exactness window, is idempotent, and never
/// writes a log record.
#[test]
fn recovery_property_random_histories() {
    for seed in 0..8u64 {
        for n in [2usize, 3, 5] {
            let mut rng = SplitMix64(0xc0ffee ^ seed.wrapping_mul(0x1234_5678_9abc_def1));
            let table = VnlTable::create_named("T", schema(), n).unwrap();
            let mut model = Model::default();

            let init: Vec<Vec<Value>> = (0..6i64).map(|k| row(k, k)).collect();
            table.load_initial(&init).unwrap();
            for k in 0..6i64 {
                model.record(1, k, Some(k));
            }
            let mut vn = 1u64;

            // Random committed batches.
            for _ in 0..rng.below(4) {
                vn += 1;
                let txn = table.begin_maintenance().unwrap();
                for _ in 0..1 + rng.below(5) {
                    let k = rng.below(8) as i64;
                    let live = model.live_keys(vn - 1);
                    let pending = model.live_keys(vn);
                    if pending.contains(&k) {
                        let v = rng.below(1000) as i64;
                        txn.update_row(&row(k, v)).unwrap();
                        model.record(vn, k, Some(v));
                    } else if rng.below(2) == 0 || live.contains(&k) {
                        // Absent key: insert (possibly a resurrection).
                        let v = rng.below(1000) as i64;
                        txn.insert(row(k, v)).unwrap();
                        model.record(vn, k, Some(v));
                    }
                }
                // Delete one pending-live key half the time.
                let pending = model.live_keys(vn);
                if !pending.is_empty() && rng.below(2) == 0 {
                    let k = pending[rng.below(pending.len() as u64) as usize];
                    txn.delete_row(&row(k, 0)).unwrap();
                    model.record(vn, k, None);
                }
                txn.commit().unwrap();
            }

            // One crashed batch, forgotten at a random op boundary. The
            // model records nothing: recovery must erase all of it.
            let crash_vn = vn + 1;
            let txn = table.begin_maintenance().unwrap();
            let ops = rng.below(5);
            for _ in 0..ops {
                let k = rng.below(8) as i64;
                let pending: Vec<i64> = visible_state(&table, crash_vn)
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                if pending.contains(&k) {
                    if rng.below(3) == 0 {
                        txn.delete_row(&row(k, 0)).unwrap();
                    } else {
                        txn.update_row(&row(k, rng.below(1000) as i64)).unwrap();
                    }
                } else {
                    txn.insert(row(k, rng.below(1000) as i64)).unwrap();
                }
            }
            std::mem::forget(txn);

            let report = recover(&table).unwrap();
            assert_eq!(report.log_writes, 0);
            let snap = table.version().snapshot();
            assert!(!snap.maintenance_active);
            assert_eq!(snap.current_vn, vn);

            let window_start = snap.current_vn.saturating_sub(n as u64 - 1).max(1);
            for svn in window_start.max(report.exact_horizon)..=snap.current_vn {
                assert_eq!(
                    visible_state(&table, svn),
                    model.live_at(svn),
                    "seed={seed} n={n} svn={svn}"
                );
            }

            let before = fingerprint(&table);
            let again = recover(&table).unwrap();
            assert_eq!(again.pending_found, 0, "seed={seed} n={n}");
            assert_eq!(fingerprint(&table), before, "seed={seed} n={n}");
        }
    }
}

/// `WarehouseTxn::abort` must finish every table's `abort_local` rollback
/// *before* `publish_abort` flips `maintenanceActive` off — so a reader that
/// observes the flag down and reads at the snapshot's `currentVN` always
/// sees the committed state, never a half-rolled-back one.
#[test]
fn warehouse_abort_never_exposes_half_published_state() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let wh = WarehouseBuilder::new()
        .unwrap()
        .table("A", schema(), 3)
        .unwrap()
        .table("B", schema(), 3)
        .unwrap()
        .build();
    for name in ["A", "B"] {
        wh.table(name)
            .unwrap()
            .load_initial(&[row(0, 10), row(1, 11)])
            .unwrap();
    }
    let committed = vec![(0i64, 10i64), (1, 11)];

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 0..200i64 {
                let txn = wh.begin_maintenance().unwrap();
                txn.on("A").unwrap().update_row(&row(0, 1000 + i)).unwrap();
                txn.on("B").unwrap().delete_row(&row(1, 0)).unwrap();
                txn.on("B").unwrap().insert(row(2, i)).unwrap();
                txn.abort().unwrap();
            }
            stop.store(true, Ordering::Release);
        });

        // Reader: whenever the flag reads down, the snapshot's currentVN
        // must serve exactly the committed state on every table.
        while !stop.load(Ordering::Acquire) {
            let snap = wh.version().snapshot();
            if snap.maintenance_active {
                continue;
            }
            assert_eq!(snap.current_vn, 1, "aborts must never advance currentVN");
            for name in ["A", "B"] {
                let table = wh.table(name).unwrap();
                assert_eq!(
                    visible_state(table, snap.current_vn),
                    committed,
                    "reader saw a half-published abort on {name}"
                );
            }
        }
        writer.join().unwrap();
    });

    // Post-abort steady state: flag down, no tuple carries a pending VN.
    let snap = wh.version().snapshot();
    assert!(!snap.maintenance_active);
    for name in ["A", "B"] {
        let table = wh.table(name).unwrap();
        for (_, ext) in table.scan_raw().unwrap() {
            if let Some((vn0, _)) = table.layout().slot(&ext, 0) {
                assert!(
                    vn0 <= snap.current_vn,
                    "tuple left carrying a half-published VN {vn0}"
                );
            }
        }
        assert_eq!(visible_state(table, snap.current_vn), committed);
    }
}
