//! Reader-session semantics end to end: the Example 2.1 analyst scenario,
//! Example 3.2 extraction, rewrite-vs-extraction equivalence (property
//! tested), expiration (both detectors), and a multithreaded
//! serializability stress test.

use std::sync::Arc;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, SplitMix64, Value};
use wh_vnl::{ReadOutcome, VnlError, VnlTable};

fn row(city: &str, pl: &str, day: u8, sales: i64) -> Row {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from(pl),
        Value::from(Date::ymd(1996, 10, day)),
        Value::from(sales),
    ]
}

fn seeded() -> VnlTable {
    let t = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    t.load_initial(&[
        row("San Jose", "golf equip", 14, 10_000),
        row("San Jose", "racquetball", 14, 2_000),
        row("Berkeley", "racquetball", 14, 12_000),
        row("Novato", "rollerblades", 13, 8_000),
    ])
    .unwrap();
    t
}

#[test]
fn example_2_1_analyst_drilldown_is_consistent() {
    // The motivating scenario: roll-up, then drill-down, with a maintenance
    // transaction committing in between. The drill-down must add up to the
    // roll-up.
    let t = seeded();
    let session = t.begin_session();
    let rollup = session
        .query("SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state ORDER BY city")
        .unwrap();
    let san_jose_total = rollup
        .rows
        .iter()
        .find(|r| r[0] == Value::from("San Jose"))
        .unwrap()[2]
        .clone();

    // Maintenance lands between the analyst's two queries.
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 99_999))
        .unwrap();
    txn.insert(row("San Jose", "swimming", 14, 5)).unwrap();
    txn.commit().unwrap();

    let drilldown = session
        .query(
            "SELECT product_line, SUM(total_sales) FROM DailySales \
             WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line",
        )
        .unwrap();
    let drilldown_total: i64 = drilldown.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(Value::from(drilldown_total), san_jose_total);
    session.finish();

    // A fresh session sees the new state, where the sums also agree.
    let s2 = t.begin_session();
    let drill2 = s2
        .query("SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose'")
        .unwrap();
    assert_eq!(drill2.rows[0][0], Value::from(99_999 + 2_000 + 5));
    s2.finish();
}

#[test]
fn example_4_1_rewritten_query_end_to_end() {
    // Run the paper's Example 4.1 query through the actual rewrite path
    // against the extended physical table.
    let t = seeded();
    let session = t.begin_session();
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("Berkeley", "racquetball", 14, 50_000))
        .unwrap();
    txn.commit().unwrap();
    let via_rewrite = session
        .query_via_rewrite(
            "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state ORDER BY city",
        )
        .unwrap();
    let via_extraction = session
        .query(
            "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state ORDER BY city",
        )
        .unwrap();
    assert_eq!(via_rewrite.rows, via_extraction.rows);
    // And the session still sees the OLD Berkeley value.
    let berkeley = via_rewrite
        .rows
        .iter()
        .find(|r| r[0] == Value::from("Berkeley"))
        .unwrap();
    assert_eq!(berkeley[2], Value::from(12_000));
    session.finish();
}

#[test]
fn global_expiration_check_detects_second_overlap() {
    let t = seeded();
    let session = t.begin_session(); // VN 1
    assert_eq!(session.status(), ReadOutcome::Live);
    // First overlapping maintenance txn: still live.
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("Novato", "rollerblades", 13, 1))
        .unwrap();
    assert_eq!(session.status(), ReadOutcome::Live);
    txn.commit().unwrap();
    assert_eq!(session.status(), ReadOutcome::Live);
    // Second maintenance txn begins: the pessimistic check expires the
    // session even before any tuple is touched twice.
    let txn = t.begin_maintenance().unwrap();
    assert_eq!(session.status(), ReadOutcome::Expired);
    assert!(matches!(
        session.assert_live(),
        Err(VnlError::SessionExpired { session_vn: 1, .. })
    ));
    txn.abort().unwrap();
    session.finish();
}

#[test]
fn per_tuple_expiration_detector_fires_on_double_touch() {
    let t = seeded();
    let session = t.begin_session(); // VN 1
    for sales in [1, 2] {
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&row("Novato", "rollerblades", 13, sales))
            .unwrap();
        txn.commit().unwrap();
    }
    // Novato has now been modified by two maintenance txns since VN 1:
    // scanning hits the per-tuple detector (Table 1 case 3).
    assert!(matches!(
        session.scan(),
        Err(VnlError::SessionExpired { .. })
    ));
    assert!(t.expired_session_count() > 0);
    session.finish();
}

#[test]
fn untouched_tuples_remain_readable_even_when_technically_expired() {
    // The per-tuple detector is optimistic: if the session's tuples were
    // never touched twice, reads still succeed (the global check would be
    // pessimistic about this).
    let t = seeded();
    let session = t.begin_session(); // VN 1
    for sales in [1, 2] {
        let txn = t.begin_maintenance().unwrap();
        txn.update_row(&row("Novato", "rollerblades", 13, sales))
            .unwrap();
        txn.commit().unwrap();
    }
    // Point lookups of untouched keys still work...
    let r = session
        .read_by_key(&row("San Jose", "golf equip", 14, 0))
        .unwrap();
    assert_eq!(r.unwrap()[4], Value::from(10_000));
    // ...but the global check says expired (pessimism).
    assert_eq!(session.status(), ReadOutcome::Expired);
    session.finish();
}

#[test]
fn rewrite_equals_extraction_on_random_histories() {
    // Property: for any batch history and any live session, the §4 SQL
    // rewrite path and the programmatic Table-1 extraction agree.
    let cities = ["San Jose", "Berkeley", "Novato", "Oakland"];
    let mut rng = SplitMix64::seed_from_u64(0x5E55_0001);
    for _ in 0..64 {
        let ops: Vec<(usize, usize, i64)> = (0..rng.range_inclusive_u64(1, 39))
            .map(|_| (rng.index(4), rng.index(3), rng.range_i64(0, 10_000)))
            .collect();
        let batches = rng.range_inclusive_u64(1, 3) as usize;
        let t = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
        t.load_initial(&[
            row("San Jose", "golf equip", 14, 100),
            row("Berkeley", "golf equip", 14, 200),
        ])
        .unwrap();
        let per_batch = ops.len().div_ceil(batches);
        for chunk in ops.chunks(per_batch.max(1)) {
            let txn = t.begin_maintenance().unwrap();
            for &(c, op, v) in chunk {
                let r = row(cities[c], "golf equip", 14, v);
                match op {
                    0 => {
                        let _ = txn.insert(r);
                    }
                    1 => {
                        let _ = txn.update_row(&r);
                    }
                    _ => {
                        let _ = txn.delete_row(&r);
                    }
                }
            }
            txn.commit().unwrap();
        }
        let session = t.begin_session();
        let sql = "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY city";
        let a = session.query(sql).unwrap();
        let b = session.query_via_rewrite(sql).unwrap();
        assert_eq!(a.rows, b.rows);
        session.finish();
    }
}

#[test]
fn concurrent_readers_see_consistent_generations() {
    // Serializability stress (E11): a maintenance thread bumps every city's
    // sales to a new generation while reader threads continuously check the
    // roll-up / drill-down invariant. Readers renew their session when told
    // they expired.
    let t = Arc::new({
        let t = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
        let rows: Vec<Row> = (0..8)
            .flat_map(|c| {
                (0..4).map(move |p| {
                    vec![
                        Value::from(format!("city{c}")),
                        Value::from("CA"),
                        Value::from(format!("pl{p}")),
                        Value::from(Date::ymd(1996, 10, 14)),
                        Value::from(0),
                    ]
                })
            })
            .collect();
        t.load_initial(&rows).unwrap();
        t
    });

    std::thread::scope(|s| {
        // Maintenance thread: 6 generations; generation g sets every tuple
        // to exactly g (so any consistent snapshot is uniform).
        {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for g in 1..=6i64 {
                    let txn = t.begin_maintenance().unwrap();
                    txn.execute_sql(
                        &format!("UPDATE DailySales SET total_sales = {g}"),
                        &wh_sql::Params::new(),
                    )
                    .unwrap();
                    txn.commit().unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            });
        }
        // Reader threads: the retry policy owns the renew-on-expiration
        // loop (each attempt is a fresh session at the then-current VN).
        for seed in 0..4u64 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let retry = wh_vnl::RetryPolicy::default()
                    .with_max_attempts(64)
                    .with_seed(seed);
                for _ in 0..30 {
                    let rows = retry.scan(&t).expect("retry budget covers this workload");
                    // Consistency: all 32 tuples carry one value.
                    let first = rows[0][4].as_int().unwrap();
                    for r in &rows {
                        assert_eq!(r[4].as_int().unwrap(), first, "torn snapshot across tuples");
                    }
                }
            });
        }
    });
    // Final state: generation 6 everywhere.
    let s = t.begin_session();
    let rows = s.scan().unwrap();
    assert!(rows.iter().all(|r| r[4] == Value::from(6)));
    s.finish();
}

#[test]
fn between_and_in_work_through_the_rewrite() {
    // Typical warehouse filters: date ranges and dimension lists. The
    // rewrite must transform updatable references inside them and leave the
    // rest alone.
    let t = seeded();
    let txn = t.begin_maintenance().unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 50_000))
        .unwrap();
    txn.commit().unwrap();
    let session = t.begin_session();
    for sql in [
        "SELECT city, SUM(total_sales) FROM DailySales \
         WHERE date BETWEEN DATE '1996-10-13' AND DATE '1996-10-14' \
         GROUP BY city ORDER BY city",
        "SELECT SUM(total_sales) FROM DailySales WHERE city IN ('San Jose', 'Novato')",
        "SELECT COUNT(*) FROM DailySales WHERE total_sales BETWEEN 1000 AND 20000",
        "SELECT city FROM DailySales WHERE total_sales IN (12000, 8000) ORDER BY city",
    ] {
        let a = session.query(sql).unwrap();
        let b = session.query_via_rewrite(sql).unwrap();
        assert_eq!(a.rows, b.rows, "diverged for {sql}");
    }
    session.finish();
}

#[test]
fn point_lookup_respects_session_version() {
    let t = seeded();
    let s1 = t.begin_session();
    let txn = t.begin_maintenance().unwrap();
    txn.delete_row(&row("Novato", "rollerblades", 13, 0))
        .unwrap();
    txn.insert(row("Fresno", "golf equip", 14, 7)).unwrap();
    txn.commit().unwrap();
    // Old session: Novato exists, Fresno does not.
    assert!(s1
        .read_by_key(&row("Novato", "rollerblades", 13, 0))
        .unwrap()
        .is_some());
    assert!(s1
        .read_by_key(&row("Fresno", "golf equip", 14, 0))
        .unwrap()
        .is_none());
    // New session: the reverse.
    let s2 = t.begin_session();
    assert!(s2
        .read_by_key(&row("Novato", "rollerblades", 13, 0))
        .unwrap()
        .is_none());
    assert!(s2
        .read_by_key(&row("Fresno", "golf equip", 14, 0))
        .unwrap()
        .is_some());
    s1.finish();
    s2.finish();
}

#[test]
fn reader_sessions_are_read_only() {
    let t = seeded();
    let s = t.begin_session();
    assert!(matches!(
        s.query("DELETE FROM DailySales"),
        Err(VnlError::Sql(_))
    ));
    assert!(matches!(
        s.query("SELECT * FROM OtherTable"),
        Err(VnlError::Sql(wh_sql::SqlError::NoSuchTable(_)))
    ));
    s.finish();
}

#[test]
fn commit_when_quiescent_waits_for_readers() {
    let t = Arc::new(seeded());
    let session = t.begin_session();
    let t2 = Arc::clone(&t);
    let handle = std::thread::spawn(move || {
        let txn = t2.begin_maintenance().unwrap();
        txn.update_row(&row("San Jose", "golf equip", 14, 1))
            .unwrap();
        txn.commit_when_quiescent(std::time::Duration::from_millis(5))
            .unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    // Still uncommitted: the session is holding it back.
    assert!(t.version().snapshot().maintenance_active);
    session.finish();
    let polls = handle.join().unwrap();
    assert!(polls > 0, "the writer should have waited");
    assert_eq!(t.version().snapshot().current_vn, 2);
}
