//! The crash matrix: every registered failpoint × every maintenance
//! operation type, for 2VNL and 3VNL, crash-then-recover with model
//! checking. Compiled only under `--features failpoints`; the driver lives
//! in `wh_vnl::crashmatrix` so the `report_fault` binary shares it.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use wh_vnl::crashmatrix::{self, DurableOpKind, OpKind};

/// The fault registry is process-global; tests in this binary serialize.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The full sweep. Each cell asserts internally (state equals the reference
/// model over the exactness window, recovery idempotent, zero log writes);
/// here we additionally pin the sweep's shape and coverage.
#[test]
fn crash_matrix_covers_every_failpoint_and_op() {
    let _g = gate();
    let report = crashmatrix::run_matrix(&[2, 3]);

    let points = crashmatrix::catalog();
    assert!(
        points.len() >= 20,
        "expected at least 20 registered failpoints, found {}",
        points.len()
    );
    assert_eq!(report.cells.len(), points.len() * OpKind::ALL.len() * 2);

    // run_matrix already asserts fired > 0 per point; double-check through
    // the returned coverage snapshot.
    for p in &points {
        let stats = report
            .coverage
            .iter()
            .find(|s| s.point == *p)
            .unwrap_or_else(|| panic!("no counters recorded for {p}"));
        assert!(stats.fired > 0, "{p} registered but never fired");
    }

    // Every op kind must have produced at least one cell where the armed
    // fault actually fired mid-operation (a crash *inside* the op, not just
    // at its end).
    for op in OpKind::ALL {
        assert!(
            report.cells.iter().any(|c| c.op == op && c.injected),
            "no failpoint fired inside any {op:?} cell"
        );
    }

    // The interesting recovery paths must all have been exercised somewhere
    // in the sweep.
    assert!(report.cells.iter().any(|c| c.recovery.orphans_removed > 0));
    assert!(report
        .cells
        .iter()
        .any(|c| c.recovery.resurrections_reversed > 0));
    assert!(report.cells.iter().any(|c| c.recovery.slots_restored > 0));
    assert!(report
        .cells
        .iter()
        .any(|c| c.n == 2 && c.recovery.reconstructed_slots > 0));
    assert!(report
        .cells
        .iter()
        .any(|c| c.n == 3 && c.recovery.duplicated_oldest_slots > 0));
    assert!(report.cells.iter().any(|c| c.committed));
    assert!(report.cells.iter().all(|c| c.recovery.log_writes == 0));

    // The durability sweep: every durable-tier failpoint × every durable
    // op × each n, each cell restarting from disk artifacts alone.
    assert_eq!(
        report.durability_cells.len(),
        crashmatrix::DURABILITY_POINTS.len() * DurableOpKind::ALL.len() * 2
    );
    for op in DurableOpKind::ALL {
        assert!(
            report
                .durability_cells
                .iter()
                .any(|c| c.op == op && c.injected),
            "no failpoint fired inside any durable {op:?} cell"
        );
    }
    // Restart recovery is log-free in every cell — the paper's §7 claim
    // carried all the way to the disk tier.
    assert!(report
        .durability_cells
        .iter()
        .all(|c| c.recovery.recovery.log_writes == 0));
    // At least one crashed checkpoint lost a commit (durability lag back to
    // VN 2) and at least one completed under an armed-but-unreached fault
    // (VN 3 survived) — both halves of the lag contract.
    assert!(report
        .durability_cells
        .iter()
        .any(|c| c.op == DurableOpKind::Checkpoint && !c.checkpointed && c.recovered_vn == 2));
    assert!(report
        .durability_cells
        .iter()
        .any(|c| c.op == DurableOpKind::Checkpoint && c.checkpointed && c.recovered_vn == 3));
    // Steal-policy cells (mid-transaction flush/evict) always roll back to
    // the checkpoint: partial work on disk never surfaces.
    assert!(report
        .durability_cells
        .iter()
        .filter(|c| matches!(c.op, DurableOpKind::Flush | DurableOpKind::Evict))
        .all(|c| c.recovered_vn == 2));
    // Some steal cell actually put partial work on disk for recovery to
    // roll back (otherwise the matrix never proves the §7 disk rollback).
    assert!(report.durability_cells.iter().any(|c| matches!(
        c.op,
        DurableOpKind::Flush | DurableOpKind::Evict
    ) && c.recovery.recovery.pending_found > 0));
}

/// Targeted durability cells: each durable-tier point must fire inside the
/// op that owns its code path.
#[test]
fn targeted_durability_cells_inject_on_their_own_path() {
    let _g = gate();
    for (point, op) in [
        ("storage.pool.flush", DurableOpKind::Flush),
        ("storage.disk.write", DurableOpKind::Flush),
        ("storage.pool.evict", DurableOpKind::Evict),
        ("storage.ckpt.begin", DurableOpKind::Checkpoint),
        ("storage.ckpt.meta", DurableOpKind::Checkpoint),
        ("storage.disk.read", DurableOpKind::Restart),
    ] {
        wh_types::fault::clear_all();
        let cell = crashmatrix::run_durability_cell(3, point, op);
        assert!(cell.injected, "{point} did not fire during {op:?}");
    }
    wh_types::fault::clear_all();
}

/// Deeper nVNL sweep: n = 4 gives the recovery shift two surviving slots to
/// work with.
#[test]
fn crash_matrix_4vnl() {
    let _g = gate();
    let report = crashmatrix::run_matrix(&[4]);
    assert!(report.cells.iter().all(|c| c.recovery.log_writes == 0));
}

/// The session-repair cells standalone: injected faults on the capture /
/// evict / repair-admission paths force the restart fallback (never a wrong
/// answer) and no retained delta window survives a recovery pass.
#[test]
fn repair_cells_fail_closed() {
    let _g = gate();
    wh_types::fault::clear_all();
    crashmatrix::run_repair_cells(&[2, 3]);
    for point in crashmatrix::REPAIR_POINTS {
        assert!(
            wh_types::fault::fired(point) > 0,
            "{point} never fired during the repair cells"
        );
    }
    wh_types::fault::clear_all();
}

/// Targeted cells: the armed point must actually fire for the op that owns
/// its code path (guards against a failpoint silently moving off the path
/// it is named for).
#[test]
fn targeted_cells_inject_on_their_own_path() {
    let _g = gate();
    for (point, op) in [
        ("vnl.txn.insert.fresh", OpKind::Insert),
        ("vnl.txn.insert.register", OpKind::Insert),
        ("vnl.txn.insert.resurrect", OpKind::Insert),
        ("vnl.txn.update.save_pre", OpKind::Update),
        ("vnl.txn.update.in_place", OpKind::Update),
        ("vnl.txn.delete.mark", OpKind::Delete),
        ("vnl.txn.delete.remove_own", OpKind::Delete),
        ("vnl.txn.delete.mark_own_update", OpKind::Delete),
        ("vnl.txn.rollback.step", OpKind::Abort),
        ("vnl.version.begin", OpKind::Update),
        ("vnl.version.publish_commit", OpKind::Commit),
        ("vnl.version.publish_abort", OpKind::Abort),
        ("vnl.gc.reclaim", OpKind::Expire),
        ("vnl.gc.unregister", OpKind::Expire),
        ("vnl.delta.capture", OpKind::Commit),
        ("vnl.delta.evict", OpKind::Expire),
        ("storage.heap.latch", OpKind::Update),
        ("storage.heap.insert", OpKind::Insert),
        ("storage.heap.modify", OpKind::Update),
        ("storage.heap.delete", OpKind::Expire),
        ("storage.heap.free_space", OpKind::Expire),
    ] {
        wh_types::fault::clear_all();
        let cell = crashmatrix::run_cell(3, point, op);
        assert!(cell.injected, "{point} did not fire during {op:?}");
    }
    wh_types::fault::clear_all();
}
