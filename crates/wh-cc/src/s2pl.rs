//! Strict two-phase locking — the blocking baseline of §1.
//!
//! Readers take S locks held to end-of-transaction; the maintenance writer
//! takes X locks. Under the strict compatibility matrix the two sides block
//! each other, which is exactly why commercial warehouses of the paper's era
//! pushed maintenance to nighttime windows (Figure 1).

use crate::lock::{LockManager, LockMode, LockRequestOutcome};
use crate::scheme::{kv_schema, CcError, CcResult, ConcurrencyScheme, ReaderTxn, WriterTxn};
use crate::stats::{CcStats, CcStatsSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;
use wh_storage::iostats::IoSnapshot;
use wh_storage::{IoStats, Rid, Table};
use wh_types::Value;

/// A `(key, value)` store protected by strict 2PL.
pub struct S2plStore {
    table: Table,
    key_map: HashMap<u64, Rid>,
    locks: LockManager,
    stats: CcStats,
    io: Arc<IoStats>,
    next_txn: AtomicU64,
    /// Undo images for the active writer (strict 2PL writes in place).
    undo: Mutex<Vec<(Rid, i64)>>,
}

impl S2plStore {
    /// Create a store with keys `0..n`, all values zero. `timeout` bounds
    /// lock waits; timing out aborts the requesting transaction.
    pub fn populate(n: u64, timeout: Duration) -> CcResult<Self> {
        let io = Arc::new(IoStats::new());
        let table = Table::create("s2pl", kv_schema(), Arc::clone(&io))?;
        let mut key_map = HashMap::with_capacity(n as usize);
        for k in 0..n {
            let rid = table.insert(&[Value::from(k as i64), Value::from(0)])?;
            key_map.insert(k, rid);
        }
        Ok(S2plStore {
            table,
            key_map,
            locks: LockManager::strict(timeout),
            stats: CcStats::for_scheme("s2pl"),
            io,
            next_txn: AtomicU64::new(1),
            undo: Mutex::new(Vec::new()),
        })
    }

    fn rid(&self, key: u64) -> CcResult<Rid> {
        self.key_map
            .get(&key)
            .copied()
            .ok_or(CcError::NoSuchKey(key))
    }

    fn read_value(&self, rid: Rid) -> CcResult<i64> {
        let row = self.table.read(rid)?;
        Ok(row[1].as_int().expect("value column is BIGINT")) // lint: allow(no-panic) — invariant documented in the expect message
    }
}

struct S2plReader<'s> {
    store: &'s S2plStore,
    txn: u64,
}

impl ReaderTxn for S2plReader<'_> {
    fn read(&mut self, key: u64) -> CcResult<i64> {
        let outcome = self.store.locks.acquire(self.txn, key, LockMode::Shared);
        match outcome {
            LockRequestOutcome::TimedOut => {
                self.store.stats.aborted();
                self.store.locks.release_all(self.txn);
                return Err(CcError::Aborted);
            }
            LockRequestOutcome::GrantedAfterWait(d) => self.store.stats.reader_blocked(d),
            LockRequestOutcome::Granted => {}
        }
        self.store.read_value(self.store.rid(key)?)
    }

    fn finish(self: Box<Self>) {
        self.store.locks.release_all(self.txn);
    }
}

struct S2plWriter<'s> {
    store: &'s S2plStore,
    txn: u64,
}

impl WriterTxn for S2plWriter<'_> {
    fn update(&mut self, key: u64, value: i64) -> CcResult<()> {
        let outcome = self.store.locks.acquire(self.txn, key, LockMode::Exclusive);
        match outcome {
            LockRequestOutcome::TimedOut => {
                self.store.stats.aborted();
                return Err(CcError::Aborted);
            }
            LockRequestOutcome::GrantedAfterWait(d) => self.store.stats.writer_blocked(d),
            LockRequestOutcome::Granted => {}
        }
        let rid = self.store.rid(key)?;
        let old = self.store.read_value(rid)?;
        self.store
            .undo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((rid, old));
        self.store
            .table
            .update(rid, &[Value::from(key as i64), Value::from(value)])?;
        Ok(())
    }

    fn commit(self: Box<Self>) -> CcResult<()> {
        self.store
            .undo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.store.locks.release_all(self.txn);
        Ok(())
    }

    fn abort(self: Box<Self>) -> CcResult<()> {
        let undo: Vec<_> = std::mem::take(
            &mut *self
                .store
                .undo
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for (rid, old) in undo.into_iter().rev() {
            let key = self.store.table.read(rid)?[0].clone();
            self.store.table.update(rid, &[key, Value::from(old)])?;
        }
        self.store.locks.release_all(self.txn);
        Ok(())
    }
}

impl ConcurrencyScheme for S2plStore {
    fn name(&self) -> &'static str {
        "S2PL"
    }

    fn begin_reader(&self) -> Box<dyn ReaderTxn + '_> {
        Box::new(S2plReader {
            store: self,
            txn: self.next_txn.fetch_add(1, Ordering::Relaxed), // ordering: id-alloc Relaxed — unique-ID allocation; only atomicity of the increment matters
        })
    }

    fn begin_writer(&self) -> Box<dyn WriterTxn + '_> {
        Box::new(S2plWriter {
            store: self,
            txn: self.next_txn.fetch_add(1, Ordering::Relaxed), // ordering: id-alloc Relaxed — unique-ID allocation; only atomicity of the increment matters
        })
    }

    fn cc_stats(&self) -> CcStatsSnapshot {
        self.stats.snapshot()
    }

    fn io_stats(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
        self.io.reset();
    }

    fn storage_bytes(&self) -> u64 {
        self.table.len() * self.table.codec().encoded_len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes_after_commit() {
        let store = S2plStore::populate(10, Duration::from_millis(200)).unwrap();
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        w.commit().unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 42);
        r.finish();
    }

    #[test]
    fn reader_blocks_on_active_writer() {
        let store = Arc::new(S2plStore::populate(10, Duration::from_millis(40)).unwrap());
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        // Reader times out while writer holds X.
        let mut r = store.begin_reader();
        assert_eq!(r.read(3), Err(CcError::Aborted));
        r.finish();
        assert_eq!(store.cc_stats().aborts, 1);
        w.commit().unwrap();
        // After commit the key is readable again.
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 42);
        r.finish();
    }

    #[test]
    fn writer_blocks_on_active_reader() {
        let store = S2plStore::populate(10, Duration::from_millis(40)).unwrap();
        let mut r = store.begin_reader();
        r.read(5).unwrap();
        let mut w = store.begin_writer();
        assert_eq!(w.update(5, 1), Err(CcError::Aborted));
        r.finish();
    }

    #[test]
    fn concurrent_readers_share() {
        let store = S2plStore::populate(10, Duration::from_millis(200)).unwrap();
        let mut r1 = store.begin_reader();
        let mut r2 = store.begin_reader();
        assert_eq!(r1.read(1).unwrap(), 0);
        assert_eq!(r2.read(1).unwrap(), 0);
        r1.finish();
        r2.finish();
        assert_eq!(store.cc_stats().reader_blocks, 0);
    }

    #[test]
    fn abort_restores_old_values() {
        let store = S2plStore::populate(10, Duration::from_millis(200)).unwrap();
        let mut w = store.begin_writer();
        w.update(2, 7).unwrap();
        w.update(4, 9).unwrap();
        w.abort().unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(2).unwrap(), 0);
        assert_eq!(r.read(4).unwrap(), 0);
        r.finish();
    }

    #[test]
    fn unknown_key_errors() {
        let store = S2plStore::populate(3, Duration::from_millis(50)).unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(99), Err(CcError::NoSuchKey(99)));
        r.finish();
    }
}
