//! Baseline concurrency-control algorithms for the §6 comparison.
//!
//! The paper positions 2VNL against three families:
//!
//! * **Strict 2PL** (§1): readers block on the writer's X locks and vice
//!   versa — the reason warehouses traditionally maintain at night.
//! * **2V2PL** ([BHR80, SR81]): the writer builds a second version, so
//!   readers never block — but the writer's **commit is delayed** until every
//!   reader of a pre-update version finishes (certify locks).
//! * **MV2PL / transient versioning** (\[CFL+82\] and kin): readers and the
//!   writer never block each other, but old versions live in a separate
//!   **version pool**, costing the writer an extra copy-out I/O per first
//!   touch and costing readers extra I/Os to chase version chains.
//!
//! Each scheme here implements the common [`ConcurrencyScheme`] interface
//! over a real `wh-storage` heap (so logical I/O is measured, not modeled),
//! with a shared [`LockManager`] and [`CcStats`] blocking instrumentation.
//! The 2VNL adapter lives in `wh-vnl`; `wh-bench` runs all four side by side
//! (experiment E10).

pub mod lock;
pub mod mv2pl;
pub mod s2pl;
pub mod scheme;
pub mod stats;
pub mod v2v2pl;

pub use lock::{LockManager, LockMode, LockRequestOutcome, FAILPOINTS};
pub use mv2pl::Mv2plStore;
pub use s2pl::S2plStore;
pub use scheme::{CcError, CcResult, ConcurrencyScheme, ReaderTxn, WriterTxn};
pub use stats::{CcStats, CcStatsSnapshot};
pub use v2v2pl::TwoV2plStore;
