//! A shared lock manager with S / X / Certify modes and wait timeouts.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use wh_types::fail_point;

/// Failpoints compiled into this crate under `--features failpoints`
/// (disarmed and zero-cost otherwise). Names are stable: the crash-matrix
/// driver enumerates this catalog.
pub const FAILPOINTS: &[&str] = &["cc.lock.grant", "cc.lock.release"];

/// Lock modes. The compatibility matrix follows \[BHG87\]:
///
/// |        | S   | X        | Certify |
/// |--------|-----|----------|---------|
/// | S      | yes | scheme-dependent | no |
/// | X      |     | no       | no      |
/// | Certify|     |          | no      |
///
/// Under strict 2PL, S and X conflict. Under 2V2PL, X means "writing a *new*
/// version", which is compatible with S on the old version; the conflict is
/// deferred to the Certify upgrade at commit. The manager is configured with
/// [`LockManager::strict`] vs [`LockManager::two_version`] accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
    /// Certify lock (2V2PL commit-time upgrade).
    Certify,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockRequestOutcome {
    /// Granted without waiting.
    Granted,
    /// Granted after waiting for the contained duration.
    GrantedAfterWait(Duration),
    /// Timed out; the caller should abort.
    TimedOut,
}

impl LockRequestOutcome {
    /// Whether the request succeeded.
    pub fn granted(&self) -> bool {
        !matches!(self, LockRequestOutcome::TimedOut)
    }

    /// The wait duration, zero when granted immediately.
    pub fn waited(&self) -> Duration {
        match self {
            LockRequestOutcome::GrantedAfterWait(d) => *d,
            _ => Duration::ZERO,
        }
    }
}

#[derive(Debug, Default)]
struct LockEntry {
    /// `(txn, mode)` pairs currently granted. A txn appears at most once,
    /// holding its strongest mode.
    granted: Vec<(u64, LockMode)>,
    /// Number of Certify requests currently waiting on this key (used by
    /// the writer-priority variant to fence off new readers).
    certify_waiting: usize,
}

/// Table of per-key locks. Keys are logical (`u64`); transactions are
/// identified by caller-assigned ids.
///
/// Internal mutexes recover from poisoning rather than propagating the
/// panic: a benchmark worker that panics mid-request must not take the
/// whole scheme down with it — the lock table's invariants hold at every
/// await point, so the surviving threads can keep going (and the panicking
/// transaction's locks are released by its abort/drop path).
pub struct LockManager {
    /// Whether S conflicts with X (strict 2PL) or not (2V2PL).
    s_conflicts_x: bool,
    /// Writer priority: while a Certify waits on a key, new S requests on
    /// that key queue behind it instead of starving the writer.
    writer_priority: bool,
    table: Mutex<HashMap<u64, LockEntry>>,
    changed: Condvar,
    timeout: Duration,
}

impl LockManager {
    /// Strict-2PL compatibility: S conflicts with X.
    pub fn strict(timeout: Duration) -> Self {
        LockManager {
            s_conflicts_x: true,
            writer_priority: false,
            table: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            timeout,
        }
    }

    /// Two-version compatibility: S is compatible with X; Certify conflicts
    /// with everything.
    pub fn two_version(timeout: Duration) -> Self {
        LockManager {
            s_conflicts_x: false,
            writer_priority: false,
            table: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            timeout,
        }
    }

    /// Two-version compatibility with writer priority: a waiting Certify
    /// fences off newly-arriving readers on its key, bounding the commit
    /// delay (otherwise "readers can starve the maintenance transaction",
    /// §2.1).
    pub fn two_version_writer_priority(timeout: Duration) -> Self {
        LockManager {
            s_conflicts_x: false,
            writer_priority: true,
            table: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            timeout,
        }
    }

    fn compatible(&self, held: LockMode, requested: LockMode) -> bool {
        use LockMode::*;
        match (held, requested) {
            (Shared, Shared) => true,
            (Shared, Exclusive) | (Exclusive, Shared) => !self.s_conflicts_x,
            (Exclusive, Exclusive) => false,
            (Certify, _) | (_, Certify) => false,
        }
    }

    fn can_grant(&self, entry: &LockEntry, txn: u64, mode: LockMode) -> bool {
        entry
            .granted
            .iter()
            .all(|&(t, held)| t == txn || self.compatible(held, mode))
    }

    /// Acquire `mode` on `key` for `txn`, waiting up to the configured
    /// timeout. Re-acquiring a mode already held (or weaker) is a no-op;
    /// requesting a stronger mode upgrades in place.
    pub fn acquire(&self, txn: u64, key: u64, mode: LockMode) -> LockRequestOutcome {
        // Injected fault = the grant is refused, as a timeout (the caller's
        // abort path is the same either way).
        // trace: uncontended grants stay silent; the wait loop below emits.
        fail_point!("cc.lock.grant", LockRequestOutcome::TimedOut);
        let start = Instant::now();
        let deadline = start + self.timeout;
        let mut table = self.table.lock().unwrap_or_else(PoisonError::into_inner);
        let mut registered_certify = false;
        let mut noted_wait = false;
        let outcome = loop {
            let entry = table.entry(key).or_default();
            let already_holds = entry.granted.iter().position(|&(t, _)| t == txn);
            // Writer priority: new S requests queue behind a waiting Certify.
            let fenced = self.writer_priority
                && mode == LockMode::Shared
                && entry.certify_waiting > 0
                && already_holds.is_none();
            if !fenced {
                // Upgrade/no-op path for a lock we already hold.
                if let Some(pos) = already_holds {
                    let held = entry.granted[pos].1;
                    if strength(held) >= strength(mode) {
                        break finish(start);
                    }
                    // Upgrade: our own entry never conflicts with itself.
                    if self.can_grant(entry, txn, mode) {
                        entry.granted[pos].1 = mode;
                        break finish(start);
                    }
                } else if self.can_grant(entry, txn, mode) {
                    entry.granted.push((txn, mode));
                    break finish(start);
                }
            }
            // Wait for a release, flagging waiting Certify requests so the
            // writer-priority fence can see them.
            if mode == LockMode::Certify && !registered_certify {
                entry.certify_waiting += 1;
                registered_certify = true;
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                break LockRequestOutcome::TimedOut;
            };
            if !noted_wait {
                noted_wait = true;
                // Slow path only: blocked requests are rare enough to
                // afford one causal event each (keyed by the lock).
                wh_obs::trace_event!("cc.lock.wait", key);
            }
            let (guard, timed_out) = self
                .changed
                .wait_timeout(table, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            table = guard;
            if timed_out.timed_out() && Instant::now() >= deadline {
                break LockRequestOutcome::TimedOut;
            }
        };
        if registered_certify {
            if let Some(entry) = table.get_mut(&key) {
                entry.certify_waiting = entry.certify_waiting.saturating_sub(1);
            }
            // Unblock any readers queued behind the fence.
            self.changed.notify_all();
        }
        outcome
    }

    /// Release every lock held by `txn`.
    pub fn release_all(&self, txn: u64) {
        // Injected fault = the client crashed before releasing: its locks
        // stay granted and waiters run into the timeout path.
        // trace: releases are silent; the waiters' wait events carry the story.
        fail_point!("cc.lock.release", ());
        let mut table = self.table.lock().unwrap_or_else(PoisonError::into_inner);
        table.retain(|_, entry| {
            entry.granted.retain(|&(t, _)| t != txn);
            // Entries with waiting Certify requests must survive even when
            // empty — they carry the writer-priority fence.
            !entry.granted.is_empty() || entry.certify_waiting > 0
        });
        self.changed.notify_all();
    }

    /// Number of keys with at least one granted lock (diagnostics).
    pub fn locked_keys(&self) -> usize {
        self.table
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

fn strength(mode: LockMode) -> u8 {
    match mode {
        LockMode::Shared => 0,
        LockMode::Exclusive => 1,
        LockMode::Certify => 2,
    }
}

fn finish(start: Instant) -> LockRequestOutcome {
    let waited = start.elapsed();
    if waited < Duration::from_micros(50) {
        LockRequestOutcome::Granted
    } else {
        LockRequestOutcome::GrantedAfterWait(waited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T: Duration = Duration::from_millis(100);

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::strict(T);
        assert!(lm.acquire(1, 10, LockMode::Shared).granted());
        assert!(lm.acquire(2, 10, LockMode::Shared).granted());
        assert_eq!(lm.locked_keys(), 1);
    }

    #[test]
    fn strict_s_blocks_x() {
        let lm = LockManager::strict(Duration::from_millis(20));
        assert!(lm.acquire(1, 10, LockMode::Shared).granted());
        assert_eq!(
            lm.acquire(2, 10, LockMode::Exclusive),
            LockRequestOutcome::TimedOut
        );
    }

    #[test]
    fn two_version_s_compatible_with_x() {
        let lm = LockManager::two_version(T);
        assert!(lm.acquire(1, 10, LockMode::Shared).granted());
        assert!(lm.acquire(2, 10, LockMode::Exclusive).granted());
        // But certify conflicts with the reader's S.
        assert_eq!(
            LockManager::two_version(Duration::from_millis(20)).timeout,
            Duration::from_millis(20)
        );
        let outcome = {
            let lm2 = LockManager::two_version(Duration::from_millis(20));
            lm2.acquire(1, 10, LockMode::Shared);
            lm2.acquire(2, 10, LockMode::Exclusive);
            lm2.acquire(2, 10, LockMode::Certify)
        };
        assert_eq!(outcome, LockRequestOutcome::TimedOut);
    }

    #[test]
    fn reacquire_is_noop_and_upgrade_works() {
        let lm = LockManager::two_version(T);
        assert!(lm.acquire(1, 10, LockMode::Exclusive).granted());
        assert!(lm.acquire(1, 10, LockMode::Shared).granted()); // weaker: no-op
        assert!(lm.acquire(1, 10, LockMode::Certify).granted()); // sole holder: upgrade
    }

    #[test]
    fn release_unblocks_waiters() {
        let lm = Arc::new(LockManager::strict(Duration::from_secs(5)));
        lm.acquire(1, 10, LockMode::Shared);
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || lm2.acquire(2, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(1);
        let outcome = waiter.join().unwrap();
        assert!(outcome.granted());
        assert!(outcome.waited() >= Duration::from_millis(10));
    }

    #[test]
    fn release_all_clears_only_own_locks() {
        let lm = LockManager::strict(T);
        lm.acquire(1, 10, LockMode::Shared);
        lm.acquire(2, 11, LockMode::Shared);
        lm.release_all(1);
        assert_eq!(lm.locked_keys(), 1);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn failpoints_refuse_grants_and_swallow_releases() {
        use wh_types::fault::{self, FaultAction};
        // Serialize with other failpoint users (registry is process-global).
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        fault::clear_all();

        let lm = LockManager::strict(T);
        fault::configure("cc.lock.grant", FaultAction::Error);
        assert_eq!(
            lm.acquire(1, 10, LockMode::Shared),
            LockRequestOutcome::TimedOut
        );
        fault::clear_all();

        // A swallowed release leaves the lock granted: a conflicting request
        // times out as if the holder had crashed.
        assert!(lm.acquire(1, 10, LockMode::Shared).granted());
        fault::configure("cc.lock.release", FaultAction::Error);
        lm.release_all(1);
        fault::clear_all();
        assert_eq!(lm.locked_keys(), 1);
        let short = LockManager::strict(Duration::from_millis(20));
        drop(short);
        lm.release_all(1);
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn certify_waits_for_reader_release() {
        let lm = Arc::new(LockManager::two_version(Duration::from_secs(5)));
        lm.acquire(1, 10, LockMode::Shared); // reader
        lm.acquire(2, 10, LockMode::Exclusive); // writer, compatible
        let lm2 = Arc::clone(&lm);
        let committer = std::thread::spawn(move || lm2.acquire(2, 10, LockMode::Certify));
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(1); // reader finishes
        assert!(committer.join().unwrap().granted());
    }
}
