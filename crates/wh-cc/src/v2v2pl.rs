//! Two-version two-phase locking (2V2PL, [BHR80, SR81]).
//!
//! The writer builds *new* versions off to the side, so readers keep reading
//! committed data and never block. The price — the one §6 highlights — is at
//! commit: the writer must certify each written key, and certify conflicts
//! with readers' S locks. **Readers delay the writer's commit.** The paper's
//! 2VNL avoids exactly this because expired readers are told to restart
//! rather than being waited for.

use crate::lock::{LockManager, LockMode, LockRequestOutcome};
use crate::scheme::{kv_schema, CcError, CcResult, ConcurrencyScheme, ReaderTxn, WriterTxn};
use crate::stats::{CcStats, CcStatsSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};
use wh_storage::iostats::IoSnapshot;
use wh_storage::{IoStats, Rid, Table};
use wh_types::Value;

/// A `(key, value)` store under 2V2PL.
pub struct TwoV2plStore {
    main: Table,
    /// Side heap holding the writer's uncommitted new versions. A separate
    /// physical area, as in the classical algorithms — writing it costs real
    /// I/O, which the E10 report surfaces.
    pending: Table,
    key_map: HashMap<u64, Rid>,
    /// Uncommitted versions of the active writer: key → pending-heap RID.
    pending_map: Mutex<HashMap<u64, Rid>>,
    locks: LockManager,
    stats: CcStats,
    io: Arc<IoStats>,
    next_txn: AtomicU64,
    writer_priority: bool,
}

impl TwoV2plStore {
    /// Create a store with keys `0..n`, all values zero.
    pub fn populate(n: u64, timeout: Duration) -> CcResult<Self> {
        Self::build(n, timeout, false)
    }

    /// Like [`TwoV2plStore::populate`], but a waiting certify fences off
    /// newly-arriving readers (bounded commit delay; readers cannot starve
    /// the maintenance transaction).
    pub fn populate_writer_priority(n: u64, timeout: Duration) -> CcResult<Self> {
        Self::build(n, timeout, true)
    }

    fn build(n: u64, timeout: Duration, writer_priority: bool) -> CcResult<Self> {
        let io = Arc::new(IoStats::new());
        let main = Table::create("2v2pl_main", kv_schema(), Arc::clone(&io))?;
        let pending = Table::create("2v2pl_pending", kv_schema(), Arc::clone(&io))?;
        let mut key_map = HashMap::with_capacity(n as usize);
        for k in 0..n {
            let rid = main.insert(&[Value::from(k as i64), Value::from(0)])?;
            key_map.insert(k, rid);
        }
        Ok(TwoV2plStore {
            main,
            pending,
            key_map,
            pending_map: Mutex::new(HashMap::new()),
            locks: if writer_priority {
                LockManager::two_version_writer_priority(timeout)
            } else {
                LockManager::two_version(timeout)
            },
            stats: CcStats::for_scheme(if writer_priority { "2v2pl_wp" } else { "2v2pl" }),
            io,
            next_txn: AtomicU64::new(1),
            writer_priority,
        })
    }

    fn rid(&self, key: u64) -> CcResult<Rid> {
        self.key_map
            .get(&key)
            .copied()
            .ok_or(CcError::NoSuchKey(key))
    }
}

struct Reader<'s> {
    store: &'s TwoV2plStore,
    txn: u64,
}

impl ReaderTxn for Reader<'_> {
    fn read(&mut self, key: u64) -> CcResult<i64> {
        // S is compatible with the writer's X, so this never waits for the
        // writer — only a pathological certify overlap could delay it.
        let outcome = self.store.locks.acquire(self.txn, key, LockMode::Shared);
        match outcome {
            LockRequestOutcome::TimedOut => {
                self.store.stats.aborted();
                self.store.locks.release_all(self.txn);
                return Err(CcError::Aborted);
            }
            LockRequestOutcome::GrantedAfterWait(d) => self.store.stats.reader_blocked(d),
            LockRequestOutcome::Granted => {}
        }
        let row = self.store.main.read(self.store.rid(key)?)?;
        Ok(row[1].as_int().expect("value column is BIGINT")) // lint: allow(no-panic) — invariant documented in the expect message
    }

    fn finish(self: Box<Self>) {
        self.store.locks.release_all(self.txn);
    }
}

struct Writer<'s> {
    store: &'s TwoV2plStore,
    txn: u64,
    written: Vec<u64>,
}

impl WriterTxn for Writer<'_> {
    fn update(&mut self, key: u64, value: i64) -> CcResult<()> {
        let outcome = self.store.locks.acquire(self.txn, key, LockMode::Exclusive);
        match outcome {
            LockRequestOutcome::TimedOut => {
                self.store.stats.aborted();
                return Err(CcError::Aborted);
            }
            LockRequestOutcome::GrantedAfterWait(d) => self.store.stats.writer_blocked(d),
            LockRequestOutcome::Granted => {}
        }
        self.store.rid(key)?; // validate the key exists
        let mut pending = self
            .store
            .pending_map
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match pending.get(&key) {
            Some(&prid) => {
                // Second write to the same key: overwrite the pending version.
                self.store
                    .pending
                    .update(prid, &[Value::from(key as i64), Value::from(value)])?;
            }
            None => {
                let prid = self
                    .store
                    .pending
                    .insert(&[Value::from(key as i64), Value::from(value)])?;
                pending.insert(key, prid);
                self.written.push(key);
            }
        }
        Ok(())
    }

    fn commit(self: Box<Self>) -> CcResult<()> {
        // Certify phase: upgrade every written key. This is where readers
        // delay the writer.
        let certify_start = Instant::now();
        let mut waited = false;
        for &key in &self.written {
            let outcome = self.store.locks.acquire(self.txn, key, LockMode::Certify);
            match outcome {
                LockRequestOutcome::TimedOut => {
                    self.store.stats.aborted();
                    // Leave pending versions; abort path discards them.
                    let me: Box<dyn WriterTxn + '_> = self;
                    return me.abort().and(Err(CcError::Aborted));
                }
                LockRequestOutcome::GrantedAfterWait(_) => waited = true,
                LockRequestOutcome::Granted => {}
            }
        }
        if waited {
            self.store.stats.commit_delayed(certify_start.elapsed());
        }
        // Apply pending versions to the main table in place.
        let mut pending = self
            .store
            .pending_map
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (&key, &prid) in pending.iter() {
            let new_row = self.store.pending.read(prid)?;
            self.store.main.update(self.store.rid(key)?, &new_row)?;
            self.store.pending.delete(prid)?;
        }
        pending.clear();
        drop(pending);
        self.store.locks.release_all(self.txn);
        Ok(())
    }

    fn abort(self: Box<Self>) -> CcResult<()> {
        // Discard pending versions; main was never touched.
        let mut pending = self
            .store
            .pending_map
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (_, prid) in pending.drain() {
            self.store.pending.delete(prid)?;
        }
        drop(pending);
        self.store.locks.release_all(self.txn);
        Ok(())
    }
}

impl ConcurrencyScheme for TwoV2plStore {
    fn name(&self) -> &'static str {
        if self.writer_priority {
            "2V2PL-wp"
        } else {
            "2V2PL"
        }
    }

    fn begin_reader(&self) -> Box<dyn ReaderTxn + '_> {
        Box::new(Reader {
            store: self,
            txn: self.next_txn.fetch_add(1, Ordering::Relaxed), // ordering: id-alloc Relaxed — unique-ID allocation; only atomicity of the increment matters
        })
    }

    fn begin_writer(&self) -> Box<dyn WriterTxn + '_> {
        Box::new(Writer {
            store: self,
            txn: self.next_txn.fetch_add(1, Ordering::Relaxed), // ordering: id-alloc Relaxed — unique-ID allocation; only atomicity of the increment matters
            written: Vec::new(),
        })
    }

    fn cc_stats(&self) -> CcStatsSnapshot {
        self.stats.snapshot()
    }

    fn io_stats(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
        self.io.reset();
    }

    fn storage_bytes(&self) -> u64 {
        (self.main.len() + self.pending.len()) * self.main.codec().encoded_len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_do_not_block_on_writer() {
        let store = TwoV2plStore::populate(10, Duration::from_millis(50)).unwrap();
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        // Concurrent reader sees the old value immediately.
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 0);
        r.finish();
        assert_eq!(store.cc_stats().reader_blocks, 0);
        w.commit().unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 42);
        r.finish();
    }

    #[test]
    fn readers_delay_writer_commit() {
        let store = Arc::new(TwoV2plStore::populate(10, Duration::from_secs(5)).unwrap());
        let mut r = store.begin_reader();
        r.read(3).unwrap(); // reader holds S on key 3
        let store2 = Arc::clone(&store);
        let committer = std::thread::spawn(move || {
            let mut w = store2.begin_writer();
            w.update(3, 42).unwrap();
            w.commit().unwrap(); // must wait for the reader
            store2.cc_stats()
        });
        std::thread::sleep(Duration::from_millis(60));
        // Writer is still stuck in certify; the value is still old.
        let mut r2 = store.begin_reader();
        assert_eq!(r2.read(3).unwrap(), 0);
        r2.finish();
        r.finish(); // release the reader -> commit proceeds
        let stats = committer.join().unwrap();
        assert_eq!(stats.commit_delays, 1);
        assert!(stats.commit_delay_ns > 0);
    }

    #[test]
    fn certify_timeout_aborts_writer() {
        let store = TwoV2plStore::populate(10, Duration::from_millis(40)).unwrap();
        let mut r = store.begin_reader();
        r.read(3).unwrap();
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        assert_eq!(w.commit(), Err(CcError::Aborted));
        r.finish();
        // Main value untouched; pending discarded.
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 0);
        r.finish();
        assert_eq!(store.pending.len(), 0);
    }

    #[test]
    fn double_update_overwrites_pending() {
        let store = TwoV2plStore::populate(10, Duration::from_millis(100)).unwrap();
        let mut w = store.begin_writer();
        w.update(3, 1).unwrap();
        w.update(3, 2).unwrap();
        assert_eq!(store.pending.len(), 1);
        w.commit().unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 2);
        r.finish();
    }

    #[test]
    fn abort_discards_pending() {
        let store = TwoV2plStore::populate(10, Duration::from_millis(100)).unwrap();
        let mut w = store.begin_writer();
        w.update(1, 9).unwrap();
        w.abort().unwrap();
        assert_eq!(store.pending.len(), 0);
        let mut r = store.begin_reader();
        assert_eq!(r.read(1).unwrap(), 0);
        r.finish();
    }

    #[test]
    fn writer_priority_prevents_starvation() {
        // Without writer priority, a stream of readers can hold S on a key
        // forever; with it, the waiting certify fences new readers out and
        // the commit completes.
        let store =
            Arc::new(TwoV2plStore::populate_writer_priority(8, Duration::from_secs(5)).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let committed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            // Endless stream of short readers on key 3.
            {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                        let mut r = store.begin_reader();
                        // Readers may block behind the fence; both outcomes ok.
                        let _ = r.read(3);
                        r.finish();
                    }
                });
            }
            // The writer updates key 3 and commits.
            {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let committed = Arc::clone(&committed);
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    let mut w = store.begin_writer();
                    w.update(3, 42).unwrap();
                    w.commit().unwrap();
                    committed.store(true, std::sync::atomic::Ordering::SeqCst);
                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert!(committed.load(std::sync::atomic::Ordering::SeqCst));
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 42);
        r.finish();
        assert_eq!(store.name(), "2V2PL-wp");
    }

    #[test]
    fn pending_storage_counts_toward_footprint() {
        let store = TwoV2plStore::populate(10, Duration::from_millis(100)).unwrap();
        let before = store.storage_bytes();
        let mut w = store.begin_writer();
        w.update(1, 9).unwrap();
        assert!(store.storage_bytes() > before);
        w.commit().unwrap();
        assert_eq!(store.storage_bytes(), before);
    }
}
